"""End-to-end fleet runs: identity at N=1, fleet metrics at N>1."""

import math

import pytest

from repro.experiments.runner import build_env, run_workloads
from repro.fleet.experiment import (
    format_fleet_table,
    summarize_fleet,
    tenant_specs,
)
from repro.fleet.registry import build_fleet_env, run_fleet
from repro.fleet.tenants import FleetTenant


def make_tenants():
    return [
        FleetTenant("p0.t000", request_size_us=800.0),
        FleetTenant("p0.t001", request_size_us=400.0, sleep_ratio=0.25),
        FleetTenant("p1.t002", request_size_us=1200.0, jitter_sigma=0.2),
    ]


def test_fleet_of_one_matches_the_plain_runner_exactly():
    # The acceptance bar for the whole subsystem: with one device, the
    # fleet path must reproduce repro.experiments.runner field for field
    # (same sim event order, same RNG draws, same metrics snapshots).
    plain_env = build_env("dfq", seed=3)
    plain = run_workloads(plain_env, make_tenants(), 80_000.0, 20_000.0)

    fleet_env = build_fleet_env(devices=1, scheduler="dfq", seed=3)
    fleet = run_fleet(fleet_env, make_tenants(), 80_000.0, 20_000.0)

    assert sorted(plain) == sorted(fleet)
    for name in plain:
        assert plain[name] == fleet[name], name
    # In particular: no fleet_* keys leak into single-device metrics.
    assert not any(
        key.startswith("fleet_")
        for result in fleet.values()
        for key in result.metrics
    )


def test_multi_device_run_isolates_and_annotates():
    env = build_fleet_env(devices=2, scheduler="dfq", seed=1)
    tenants = [
        FleetTenant(f"p{i % 2}.t{i:03d}", request_size_us=800.0)
        for i in range(4)
    ]
    results = run_fleet(env, tenants, 60_000.0, 10_000.0)
    assert len(results) == 4
    devices_seen = set()
    for result in results.values():
        assert not result.killed
        assert result.rounds.count > 0
        assert result.metrics["fleet_devices"] == 2.0
        assert result.metrics["fleet_moves"] == 0.0
        devices_seen.add(result.metrics["fleet_device"])
    assert devices_seen == {0.0, 1.0}  # least-loaded actually spread


def test_least_loaded_default_placement_balances_counts():
    env = build_fleet_env(devices=3, scheduler="dfq", seed=0)
    tenants = [FleetTenant(f"t{i:03d}") for i in range(9)]
    results = run_fleet(env, tenants, 30_000.0, 5_000.0)
    population = {}
    for result in results.values():
        device = result.metrics["fleet_device"]
        population[device] = population.get(device, 0) + 1
    assert population == {0.0: 3, 1.0: 3, 2.0: 3}


def test_summary_and_table_roundtrip():
    env = build_fleet_env(devices=2, scheduler="dfq", seed=0)
    tenants = [FleetTenant(f"t{i:03d}", request_size_us=600.0)
               for i in range(4)]
    results = run_fleet(env, tenants, 60_000.0, 10_000.0)
    summary = summarize_fleet(results)
    assert summary.devices == 2
    assert summary.tenants == 4
    assert summary.moves == 0
    assert summary.devices_lost == 0
    assert summary.killed == 0
    assert not math.isnan(summary.jain)
    assert summary.jain > 0.8  # uniform tenants on a fair scheduler

    table = format_fleet_table(results)
    assert "fleet Jain index" in table
    assert "devices lost: 0" in table
    for line in ("device", "tenants", "usage_ms"):
        assert line in table


def test_build_fleet_env_validation():
    with pytest.raises(ValueError, match="at least one device"):
        build_fleet_env(devices=0)
    with pytest.raises(KeyError, match="unknown placement"):
        build_fleet_env(devices=2, placement="nope")
    with pytest.raises(KeyError, match="unknown global policy"):
        build_fleet_env(devices=2, policy="nope")
    with pytest.raises(KeyError, match="unknown scheduler"):
        build_fleet_env(devices=2, scheduler="nope")


def test_tenant_specs_shapes_and_validation():
    specs = tenant_specs(5, partitions=2)
    assert [spec.args[0] for spec in specs] == [
        "p0.t000", "p1.t001", "p0.t002", "p1.t003", "p0.t004"
    ]
    built = specs[0].build()
    assert isinstance(built, FleetTenant)
    with pytest.raises(ValueError):
        tenant_specs(0)
    with pytest.raises(ValueError):
        tenant_specs(2, partitions=0)
