"""Planned migration: the boundary-only guarantee, end to end."""

import pytest

from repro.fleet.registry import build_fleet_env, run_fleet
from repro.fleet.tenants import FleetTenant
from repro.sim.trace import TraceRecorder


def traced_fleet(devices=2, tenants=4, seed=0, moves=(), duration_us=120_000.0):
    trace = TraceRecorder()
    env = build_fleet_env(
        devices=devices, scheduler="dfq", seed=seed, trace=trace
    )
    workloads = [
        FleetTenant(f"t{i:03d}", request_size_us=800.0)
        for i in range(tenants)
    ]
    results = run_fleet(env, workloads, duration_us, 10_000.0, moves=moves)
    return env, trace, results


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_migrations_commit_only_at_engagement_boundaries(seed):
    # The property the protocol promises: every planned migration commits
    # inside an engagement episode of the *source* device — after its
    # barrier went up, before its next free-run period starts.  We replay
    # the trace, tracking episode state per device, and require every
    # fleet.migrate_begin to land while its source is mid-episode.
    moves = ((25_000.0, "t000", 1), (55_000.0, "t002", 0))
    env, trace, results = traced_fleet(seed=seed, moves=moves)
    in_episode = {}
    commits = 0
    for record in trace.records():
        device = record.payload.get("device")
        if record.kind == "barrier_begin":
            in_episode[device] = True
        elif record.kind == "freerun_start":
            in_episode[device] = False
        elif record.kind == "fleet.migrate_begin":
            assert record.payload["reason"] == "rebalance"
            src = record.payload["src"]
            assert in_episode.get(src), (
                f"migration of {record.payload['task']} committed outside "
                f"an engagement episode of device {src} at {record.time}"
            )
            commits += 1
    assert commits == len(env.migrations.records) > 0


def test_migration_records_and_tenant_rebinding():
    moves = ((30_000.0, "t000", 1),)
    env, trace, results = traced_fleet(moves=moves)
    records = env.migrations.records
    assert len(records) == 1
    record = records[0]
    assert record.task == "t000"
    assert (record.src, record.dst) == (0, 1)
    assert record.reason == "rebalance"
    assert record.cost_us == env.costs.migration_cost_us
    assert record.time_us >= 30_000.0  # never before the request

    moved = results["t000"]
    assert moved.metrics["fleet_device_initial"] == 0.0
    assert moved.metrics["fleet_device"] == 1.0
    assert moved.metrics["fleet_moves"] == 1.0
    assert moved.metrics["fleet_loss_moves"] == 0.0
    assert not moved.killed
    # The tenant kept doing useful work on the target device.
    assert moved.rounds.count > 0
    assert env.metrics.counter("fleet_migrations").value("t000") == 1.0


def test_migrated_tenant_usage_spans_both_devices():
    moves = ((30_000.0, "t000", 1),)
    env, trace, results = traced_fleet(moves=moves)
    history = env.tenant_tasks["t000"]
    assert [device for device, _task in history] == [0, 1]
    per_device = [
        env.stacks[device].device.task_usage(task)
        for device, task in history
    ]
    assert all(usage > 0 for usage in per_device)
    assert results["t000"].ground_truth_usage_us == pytest.approx(
        sum(per_device)
    )


def test_request_validation():
    env, trace, results = traced_fleet(duration_us=20_000.0)
    tenant = env.tenants[0]
    here = env.device_of(tenant)
    other = 1 - here
    with pytest.raises(ValueError, match="already on device"):
        env.migrations.request(tenant, here)
    with pytest.raises(ValueError, match="no such device"):
        env.migrations.request(tenant, 7)
    env.migrations.request(tenant, other)
    with pytest.raises(ValueError, match="pending move"):
        env.migrations.request(tenant, other)


def test_move_to_lost_device_is_rejected():
    env, trace, results = traced_fleet(duration_us=20_000.0)
    env.lose_device(1)
    survivor = next(t for t in env.tenants if env.device_of(t) == 0)
    with pytest.raises(ValueError, match="was lost"):
        env.migrations.request(survivor, 1)
