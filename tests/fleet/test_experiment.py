"""FleetCellSpec: content keys, labels, farm compatibility."""

import pytest

from repro.experiments.cells import CellSpec, WorkloadSpec
from repro.experiments.parallel import run_cells
from repro.faults.registry import FLEET_DEVICE_LOSS
from repro.fleet.experiment import (
    FleetCellSpec,
    device_loss_plan,
    summarize_fleet,
    tenant_specs,
)


def spec(**overrides):
    base = dict(
        devices=2,
        scheduler="dfq",
        workloads=tenant_specs(4),
        duration_us=40_000.0,
        warmup_us=5_000.0,
    )
    base.update(overrides)
    return FleetCellSpec(**base)


def test_content_key_is_stable_across_instances():
    assert spec().content_key() == spec().content_key()


@pytest.mark.parametrize("field, value", [
    ("devices", 3),
    ("scheduler", "timeslice"),
    ("placement", "hash-shard"),
    ("policy", "server"),
    ("seed", 1),
    ("duration_us", 50_000.0),
    ("workloads", tenant_specs(5)),
    ("fault_plan", device_loss_plan(0, 20_000.0)),
    ("moves", ((10_000.0, "p0.t000", 1),)),
])
def test_content_key_tracks_every_field(field, value):
    assert spec(**{field: value}).content_key() != spec().content_key()


def test_content_key_never_collides_with_single_device_cells():
    # Same workloads, duration, seed — the "fleet" namespace marker keeps
    # the shared result cache partitioned.
    plain = CellSpec(
        scheduler="dfq", workloads=tenant_specs(4),
        duration_us=40_000.0, warmup_us=5_000.0, seed=0,
    )
    assert spec(devices=1).content_key() != plain.content_key()


def test_uncacheable_workloads_have_no_key():
    from repro.fleet.tenants import FleetTenant

    wild = WorkloadSpec.from_callable(lambda: FleetTenant("w"))
    bad = spec(workloads=(wild,))
    assert not bad.cacheable
    with pytest.raises(ValueError):
        bad.content_key()


def test_label_shape():
    assert spec().label() == "fleet2:dfq:4ten:least-loaded:fleet-fair:s0"
    lossy = spec(fault_plan=device_loss_plan(1, 10_000.0))
    assert lossy.label().endswith("+lose-d1")


def test_device_loss_plan_targets_the_device():
    plan = device_loss_plan(2, 30_000.0)
    assert plan.points() == (FLEET_DEVICE_LOSS,)
    (fault,) = plan.specs
    assert fault.target_task == "device2"
    assert fault.start_us == 30_000.0
    assert fault.count == 1


def test_specs_run_on_the_farm():
    cell = spec()
    (results,) = run_cells([cell], workers=1)
    assert sorted(results) == [w.args[0] for w in cell.workloads]
    summary = summarize_fleet(results)
    assert summary.devices == 2
    assert summary.tenants == 4
