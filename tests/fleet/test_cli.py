"""The ``repro fleet`` CLI: listings, runs, gates, chaos."""

import pytest

from repro.cli import main as repro_main
from repro.fleet.cli import main as fleet_main


def test_policies_listing(capsys):
    assert fleet_main(["policies"]) == 0
    out = capsys.readouterr().out
    for name in ("fleet-fair", "server", "partitioned"):
        assert name in out


def test_placements_listing(capsys):
    assert fleet_main(["placements"]) == 0
    out = capsys.readouterr().out
    for name in ("least-loaded", "hash-shard", "partition-affinity"):
        assert name in out


def test_run_prints_fleet_table(capsys):
    code = fleet_main([
        "run", "--devices", "2", "--tenants", "4",
        "--duration-ms", "40", "--no-cache",
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "fleet Jain index" in out
    assert "devices lost: 0" in out


def test_run_is_dispatched_from_the_top_level_cli(capsys):
    code = repro_main([
        "fleet", "run", "--devices", "2", "--tenants", "4",
        "--duration-ms", "40", "--no-cache",
    ])
    assert code == 0
    assert "fleet Jain index" in capsys.readouterr().out


def test_run_determinism_same_stdout(capsys):
    argv = ["run", "--devices", "2", "--tenants", "6",
            "--duration-ms", "40", "--no-cache"]
    assert fleet_main(argv) == 0
    first = capsys.readouterr().out
    assert fleet_main(argv) == 0
    assert capsys.readouterr().out == first


def test_jain_floor_requires_windows(capsys):
    assert fleet_main([
        "run", "--devices", "2", "--slo-jain-floor", "0.9",
    ]) == 2


def test_monitored_run_with_jain_gate(capsys):
    code = fleet_main([
        "run", "--devices", "2", "--tenants", "8",
        "--duration-ms", "60", "--window-us", "30000",
        "--slo-jain-floor", "0.9", "--fail-on-violation", "--quiet",
        "--no-cache",
    ])
    captured = capsys.readouterr()
    assert code == 0, captured.err
    assert "fleet Jain index" in captured.out


def test_device_loss_run_checks_invariants(capsys):
    code = fleet_main([
        "run", "--devices", "3", "--tenants", "6",
        "--duration-ms", "80", "--lose-device", "0@30",
        "--fail-on-violation", "--no-cache",
    ])
    captured = capsys.readouterr()
    assert code == 0, captured.out
    assert "INVARIANT VIOLATION" not in captured.out


def test_bad_migrate_syntax_exits():
    with pytest.raises(SystemExit):
        fleet_main(["run", "--migrate", "nonsense"])
