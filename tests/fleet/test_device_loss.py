"""Chaos: device loss, migration-based recovery, and escalation."""

from repro.fleet.experiment import (
    check_fleet_invariants,
    device_loss_plan,
    summarize_fleet,
)
from repro.fleet.registry import build_fleet_env, run_fleet
from repro.fleet.tenants import FleetTenant
from repro.sim.trace import TraceRecorder


def lossy_fleet(devices=3, tenants=6, lose=0, at_us=30_000.0,
                duration_us=100_000.0, trace=None):
    env = build_fleet_env(
        devices=devices, scheduler="dfq", seed=0, trace=trace,
        fault_plan=device_loss_plan(lose, at_us),
    )
    workloads = [
        FleetTenant(f"t{i:03d}", request_size_us=800.0)
        for i in range(tenants)
    ]
    results = run_fleet(env, workloads, duration_us, 10_000.0)
    return env, results


def test_lost_device_tenants_reincarnate_on_survivors():
    env, results = lossy_fleet()
    assert env.lost_devices == [0]
    assert env.metrics.counter("fleet_device_losses").total == 1.0
    summary = summarize_fleet(results)
    assert summary.devices_lost == 1
    assert summary.loss_moves == 2  # both device-0 residents moved
    assert summary.killed == 0
    victims = [
        result for result in results.values()
        if result.metrics["fleet_device_initial"] == 0.0
    ]
    assert len(victims) == 2
    for victim in victims:
        assert victim.metrics["fleet_device"] in (1.0, 2.0)
        assert victim.metrics["fleet_loss_moves"] == 1.0
        assert not victim.killed
        assert victim.rounds.count > 0  # kept working after recovery
    for record in env.migrations.records:
        assert record.reason == "device_loss"
        assert record.src == 0
    assert check_fleet_invariants(results) == []


def test_total_fleet_loss_escalates_cleanly():
    # No survivor: the protective kill stands, and the invariant checker
    # recognizes escalation as legal.
    env, results = lossy_fleet(devices=1, tenants=2, lose=0)
    assert env.lost_devices == [0]
    for result in results.values():
        assert result.killed
        assert result.kill_reason == "device lost"
        assert result.metrics["fleet_devices_lost"] == 1.0
    assert env.migrations.records == []
    assert check_fleet_invariants(results) == []


def test_bystanders_are_untouched():
    env, results = lossy_fleet()
    bystanders = [
        result for result in results.values()
        if result.metrics["fleet_device_initial"] != 0.0
    ]
    assert len(bystanders) == 4
    for bystander in bystanders:
        assert not bystander.killed
        assert bystander.metrics["fleet_moves"] == 0.0
        assert bystander.rounds.count > 0


def test_device_lost_event_is_traced():
    trace = TraceRecorder()
    env, results = lossy_fleet(trace=trace)
    lost = [r for r in trace.records() if r.kind == "fleet.device_lost"]
    assert len(lost) == 1
    assert lost[0].payload["device"] == 0
    assert sorted(lost[0].payload["tenants"]) == sorted(
        name for name, result in results.items()
        if result.metrics["fleet_device_initial"] == 0.0
    )
    # Recovery migrations are tagged with the device_loss reason.
    ends = [r for r in trace.records() if r.kind == "fleet.migrate_end"]
    assert ends and all(
        r.payload["reason"] == "device_loss" for r in ends
    )


def test_invariant_checker_flags_jain_floor_breaches():
    env, results = lossy_fleet()
    assert check_fleet_invariants(results, jain_floor=0.0) == []
    violations = check_fleet_invariants(results, jain_floor=1.01)
    assert len(violations) == 1
    assert "below floor" in violations[0]
