"""Global policy math: digests in, normalized share weights out."""

import pytest

from repro.fleet.policies import (
    DeviceDigest,
    FleetFairShare,
    PartitionedShares,
    ServerArbiter,
    TenantDigest,
    global_policy_registry,
    normalized,
)


def digest(device_id, **usage_by_tenant):
    result = DeviceDigest(device_id)
    for name, usage_us in usage_by_tenant.items():
        result.tenant(name).usage_us = usage_us
    return result


def test_registry_names():
    assert set(global_policy_registry) == {
        "fleet-fair", "server", "partitioned"
    }
    for name, cls in global_policy_registry.items():
        assert cls.name == name


def test_normalized_uniform_is_exactly_one():
    # Exactly 1.0 — not merely close — because DFQ lag thresholds are
    # absolute µs, so uniform-but-not-1.0 weights would change denials.
    for value in (0.25, 1.0, 3.0):
        weights = normalized({"a": value, "b": value, "c": value})
        assert weights == {"a": 1.0, "b": 1.0, "c": 1.0}


def test_normalized_preserves_ratios_with_mean_one():
    weights = normalized({"a": 1.0, "b": 3.0})
    assert weights["b"] / weights["a"] == pytest.approx(3.0)
    assert sum(weights.values()) / len(weights) == pytest.approx(1.0)


def test_normalized_degenerate_inputs():
    assert normalized({}) == {}
    assert normalized({"a": 0.0, "b": 0.0}) == {"a": 1.0, "b": 1.0}


def test_fleet_fair_uniform_entitlements_are_identity():
    policy = FleetFairShare()
    local = digest(0, alpha=100.0, beta=900.0)
    assert policy.weights(local, [local]) == {"alpha": 1.0, "beta": 1.0}


def test_fleet_fair_entitlements_scale_proportionally():
    policy = FleetFairShare(entitlements={"gold": 3.0})
    local = digest(0, gold=0.0, bronze=0.0)
    weights = policy.weights(local, [local])
    assert weights["gold"] / weights["bronze"] == pytest.approx(3.0)
    assert sum(weights.values()) / 2 == pytest.approx(1.0)


def test_server_arbiter_steers_toward_parity():
    policy = ServerArbiter(smoothing=1.0)
    local = digest(0, hog=9000.0, meek=1000.0)
    weights = policy.weights(local, [local])
    assert weights["hog"] < 1.0 < weights["meek"]


def test_server_arbiter_aggregates_fleet_wide_usage():
    # The hog looks balanced locally; only the fleet view exposes it.
    policy = ServerArbiter(smoothing=1.0)
    local = digest(0, hog=1000.0, meek=1000.0)
    remote = digest(1, hog=8000.0)
    weights = policy.weights(local, [local, remote])
    assert weights["hog"] < weights["meek"]


def test_server_arbiter_clamps_corrections():
    policy = ServerArbiter(smoothing=1.0, floor=0.5, ceiling=2.0)
    local = digest(0, hog=1_000_000.0, meek=1.0)
    weights = policy.weights(local, [local])
    # Raw targets are astronomically far apart; clamping caps the raw
    # ratio at ceiling/floor before normalization.
    assert weights["meek"] / weights["hog"] == pytest.approx(4.0)


def test_server_arbiter_smoothing_moves_halfway():
    policy = ServerArbiter(smoothing=0.5, floor=0.25, ceiling=4.0)
    local = digest(0, hog=3000.0, meek=1000.0)
    first = policy.weights(local, [local])
    second = policy.weights(local, [local])
    # Same evidence again: weights keep easing toward the same target.
    assert second["hog"] < first["hog"]
    assert second["meek"] > first["meek"]


def test_server_arbiter_validates_parameters():
    with pytest.raises(ValueError):
        ServerArbiter(smoothing=0.0)
    with pytest.raises(ValueError):
        ServerArbiter(floor=0.0)
    with pytest.raises(ValueError):
        ServerArbiter(floor=2.0, ceiling=1.0)


def test_partitioned_equal_quotas_equal_population_is_identity():
    policy = PartitionedShares()
    local = digest(0, **{"p0.t0": 50.0, "p0.t1": 10.0,
                         "p1.t0": 70.0, "p1.t1": 20.0})
    weights = policy.weights(local, [local])
    assert weights == {name: 1.0 for name in local.tenants}


def test_partitioned_quota_splits_among_members():
    policy = PartitionedShares(quotas={"gold": 3.0, "bulk": 1.0})
    local = digest(0, **{"gold.a": 0.0, "bulk.a": 0.0, "bulk.b": 0.0})
    weights = policy.weights(local, [local])
    # gold.a holds 3.0, each bulk tenant 0.5 — a 6x ratio, normalized.
    assert weights["gold.a"] / weights["bulk.a"] == pytest.approx(6.0)
    assert weights["bulk.a"] == weights["bulk.b"]


def test_partitioned_explicit_partition_map():
    policy = PartitionedShares(
        quotas={"gold": 2.0}, partition_of={"stray": "gold"}
    )
    assert policy.partition("stray") == "gold"
    assert policy.partition("p7.t001") == "p7"


def test_tenant_digest_observed_falls_back_to_service():
    tenant = TenantDigest("t", usage_us=0.0, service_us=123.0)
    assert tenant.observed_us == 123.0
    tenant.usage_us = 50.0
    assert tenant.observed_us == 50.0
