"""Placement determinism: pure functions of name and occupancy."""

import random

import pytest

from repro.fleet.placement import (
    HashShard,
    LeastLoaded,
    PartitionAffinity,
    PlacementPolicy,
    partition_of,
    placement_registry,
    stable_hash,
)


def test_stable_hash_is_pinned_across_processes():
    # sha256-based, never Python's salted hash(): these exact values must
    # hold on every machine, interpreter, and PYTHONHASHSEED.
    assert stable_hash("p0.t000") == stable_hash("p0.t000")
    assert stable_hash("a") != stable_hash("b")
    assert stable_hash("a") == 0xCA978112CA1BBDCA
    assert stable_hash("p0") == 0x169B5B823C62B64C


def test_partition_of_prefers_explicit_map_then_name_prefix():
    assert partition_of("p3.t007") == "p3"
    assert partition_of("solo") == "solo"
    assert partition_of("p3.t007", {"p3.t007": "gold"}) == "gold"
    assert partition_of("p3.t007", {"other": "gold"}) == "p3"


def test_registry_names():
    assert set(placement_registry) == {
        "least-loaded", "hash-shard", "partition-affinity"
    }
    for name, cls in placement_registry.items():
        assert cls.name == name
        assert issubclass(cls, PlacementPolicy)


def test_least_loaded_fills_devices_evenly_ties_to_lowest_id():
    policy = LeastLoaded()
    policy.bind([0, 1, 2])
    picks = []
    for index in range(6):
        device = policy.assign(f"t{index}")
        policy.placed(device)
        picks.append(device)
    assert picks == [0, 1, 2, 0, 1, 2]


def test_least_loaded_respects_departures():
    policy = LeastLoaded()
    policy.bind([0, 1])
    for _ in range(2):
        policy.placed(policy.assign("x"))
    policy.departed(0)
    assert policy.assign("y") == 0


def test_hash_shard_same_mapping_across_instances_and_orders():
    names = [f"p{i % 3}.t{i:03d}" for i in range(24)]
    first = HashShard()
    first.bind([0, 1, 2, 3])
    reference = {name: first.assign(name) for name in names}

    shuffled = list(names)
    random.Random(7).shuffle(shuffled)
    second = HashShard()
    second.bind([0, 1, 2, 3])
    for name in shuffled:
        assert second.assign(name) == reference[name]
    assert set(reference.values()) == {0, 1, 2, 3}  # actually shards


def test_hash_shard_exclusion_restricts_to_survivors():
    policy = HashShard()
    policy.bind([0, 1, 2])
    for index in range(12):
        assert policy.assign(f"t{index}", exclude=[1]) in (0, 2)


def test_partition_affinity_keeps_partitions_co_resident():
    policy = PartitionAffinity()
    policy.bind([0, 1, 2])
    homes = {}
    for index in range(12):
        name = f"p{index % 4}.t{index:03d}"
        group = name.partition(".")[0]
        device = policy.assign(name)
        homes.setdefault(group, device)
        assert device == homes[group]


def test_partition_affinity_rehomes_deterministically_on_loss():
    policy = PartitionAffinity()
    policy.bind([0, 1, 2])
    home = policy.assign("p0.t000")
    rehomed = policy.assign("p0.t001", exclude=[home])
    assert rehomed != home
    # Every member of the partition follows to the same refuge.
    assert policy.assign("p0.t002", exclude=[home]) == rehomed


def test_partition_affinity_explicit_map():
    policy = PartitionAffinity(partition_map={"stray": "p1"})
    policy.bind([0, 1, 2, 3])
    assert policy.assign("stray") == policy.assign("p1.t000")


@pytest.mark.parametrize("name", sorted(placement_registry))
def test_no_live_device_raises(name):
    policy = placement_registry[name]()
    policy.bind([0])
    with pytest.raises(ValueError, match="no live device"):
        policy.assign("t0", exclude=[0])
