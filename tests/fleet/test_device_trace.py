"""Per-device trace tagging and device-aware tenant grouping."""

from repro.fleet.registry import build_fleet_env, run_fleet
from repro.fleet.tenants import FleetTenant
from repro.obs.summary import task_key
from repro.obs.windows import tenant_key
from repro.sim.trace import DeviceTraceView, TraceRecord, TraceRecorder


def test_view_tags_every_emitted_record():
    base = TraceRecorder()
    view = DeviceTraceView(base, 3)
    view.emit(1.0, "gpu", "fault", task="t0")
    assert list(base.records())[-1].payload["device"] == 3


def test_view_preserves_an_explicit_device_field():
    base = TraceRecorder()
    view = DeviceTraceView(base, 3)
    view.emit(1.0, "fleet", "fleet.device_lost", device=7, tenants=[])
    assert list(base.records())[-1].payload["device"] == 7
    view.append(TraceRecord(2.0, "fleet", "fleet.place", {"device": 9}))
    assert list(base.records())[-1].payload["device"] == 9
    view.append(TraceRecord(3.0, "fleet", "fleet.place", {"task": "t"}))
    assert list(base.records())[-1].payload["device"] == 3


def test_view_delegates_everything_else():
    base = TraceRecorder()
    view = DeviceTraceView(base, 0)
    assert view.enabled is base.enabled
    assert view.base is base
    view.emit(1.0, "gpu", "fault", task="t0")
    assert len(view) == len(base) == 1
    assert list(view.records()) == list(base.records())


def test_tenant_keys_group_by_device_only_when_tagged():
    # Single-device payloads carry no device field: bare names, so all
    # pre-fleet window/summary output is unchanged.
    assert tenant_key({"task": "glxgears"}) == "glxgears"
    assert task_key({"task": "glxgears"}) == "glxgears"
    assert tenant_key({"task": "t0", "device": 2}) == "t0@d2"
    assert task_key({"task": "t0", "device": 2}) == "t0@d2"
    assert task_key({"device": 2}) is None  # no task, no key


def test_multi_device_trace_separates_tenants_per_device():
    trace = TraceRecorder()
    env = build_fleet_env(devices=2, scheduler="dfq", seed=0, trace=trace)
    tenants = [FleetTenant(f"t{i:03d}", request_size_us=800.0)
               for i in range(4)]
    run_fleet(env, tenants, 40_000.0, 5_000.0)
    keys = set()
    for record in trace.records():
        if "task" not in record.payload:
            continue
        key = tenant_key(record.payload)
        if key.startswith("t"):
            keys.add(key)
    devices = {key.rsplit("@", 1)[1] for key in keys}
    assert devices == {"d0", "d1"}
    assert all("@" in key for key in keys)
