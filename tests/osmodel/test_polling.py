"""Tests for the kernel polling service."""

from repro.gpu.request import Request, RequestKind
from repro.osmodel.costs import CostParams
from repro.osmodel.polling import PollingService
from repro.osmodel.task import Task


def _make_channel(sim):
    from repro.gpu.device import GpuDevice

    device = GpuDevice(sim)
    task = Task("t")
    context = device.create_context(task)
    return device, device.create_channel(context, RequestKind.COMPUTE)


def test_watch_fires_at_polling_granularity(sim):
    device, channel = _make_channel(sim)
    costs = CostParams()
    polling = PollingService(sim, costs)
    request = Request(RequestKind.COMPUTE, 100.0)
    device.submit(channel, request)
    observed = []
    polling.watch(channel, 1, lambda ch: observed.append(sim.now))
    sim.run(until=5_000.0)
    assert len(observed) == 1
    # The request finished at 100 but polling only notices at the next
    # 1 ms pass — the paper's completion-detection granularity.
    assert observed[0] >= 100.0
    assert observed[0] <= 100.0 + costs.poll_interval_us + 1.0


def test_prompt_triggers_immediate_pass(sim):
    device, channel = _make_channel(sim)
    costs = CostParams()
    polling = PollingService(sim, costs)
    request = Request(RequestKind.COMPUTE, 10.0)
    device.submit(channel, request)
    observed = []
    polling.watch(channel, 1, lambda ch: observed.append(sim.now))
    sim.schedule(50.0, polling.prompt)
    sim.run(until=400.0)
    assert observed and observed[0] < 60.0


def test_watch_already_satisfied_fires_next_pass(sim):
    device, channel = _make_channel(sim)
    polling = PollingService(sim, CostParams())
    request = Request(RequestKind.COMPUTE, 5.0)
    device.submit(channel, request)
    sim.run(until=50.0)  # request already done, no watch yet
    observed = []
    polling.watch(channel, 1, lambda ch: observed.append(sim.now))
    sim.run(until=3_000.0)
    assert len(observed) == 1


def test_cancel_prevents_callback(sim):
    device, channel = _make_channel(sim)
    polling = PollingService(sim, CostParams())
    request = Request(RequestKind.COMPUTE, 5.0)
    device.submit(channel, request)
    observed = []
    watch_id = polling.watch(channel, 1, lambda ch: observed.append(1))
    polling.cancel(watch_id)
    sim.run(until=3_000.0)
    assert observed == []


def test_unsatisfied_watch_keeps_waiting(sim):
    device, channel = _make_channel(sim)
    polling = PollingService(sim, CostParams())
    observed = []
    polling.watch(channel, 5, lambda ch: observed.append(1))
    sim.run(until=10_000.0)
    assert observed == []
    assert polling.watch_count == 1


def test_cpu_accounting_grows_with_watches(sim):
    device, channel = _make_channel(sim)
    costs = CostParams()
    polling = PollingService(sim, costs)
    polling.watch(channel, 99, lambda ch: None)
    sim.run(until=10_000.0)
    assert polling.passes >= 9
    assert polling.cpu_us > 0
