"""Tests for the kernel polling service."""

from repro.gpu.request import Request, RequestKind
from repro.osmodel.costs import CostParams
from repro.osmodel.polling import PollingService
from repro.osmodel.task import Task


def _make_channel(sim):
    from repro.gpu.device import GpuDevice

    device = GpuDevice(sim)
    task = Task("t")
    context = device.create_context(task)
    return device, device.create_channel(context, RequestKind.COMPUTE)


def test_watch_fires_at_polling_granularity(sim):
    device, channel = _make_channel(sim)
    costs = CostParams()
    polling = PollingService(sim, costs)
    request = Request(RequestKind.COMPUTE, 100.0)
    device.submit(channel, request)
    observed = []
    polling.watch(channel, 1, lambda ch: observed.append(sim.now))
    sim.run(until=5_000.0)
    assert len(observed) == 1
    # The request finished at 100 but polling only notices at the next
    # 1 ms pass — the paper's completion-detection granularity.
    assert observed[0] >= 100.0
    assert observed[0] <= 100.0 + costs.poll_interval_us + 1.0


def test_prompt_triggers_immediate_pass(sim):
    device, channel = _make_channel(sim)
    costs = CostParams()
    polling = PollingService(sim, costs)
    request = Request(RequestKind.COMPUTE, 10.0)
    device.submit(channel, request)
    observed = []
    polling.watch(channel, 1, lambda ch: observed.append(sim.now))
    sim.schedule(50.0, polling.prompt)
    sim.run(until=400.0)
    assert observed and observed[0] < 60.0


def test_watch_already_satisfied_fires_next_pass(sim):
    device, channel = _make_channel(sim)
    polling = PollingService(sim, CostParams())
    request = Request(RequestKind.COMPUTE, 5.0)
    device.submit(channel, request)
    sim.run(until=50.0)  # request already done, no watch yet
    observed = []
    polling.watch(channel, 1, lambda ch: observed.append(sim.now))
    sim.run(until=3_000.0)
    assert len(observed) == 1


def test_cancel_prevents_callback(sim):
    device, channel = _make_channel(sim)
    polling = PollingService(sim, CostParams())
    request = Request(RequestKind.COMPUTE, 5.0)
    device.submit(channel, request)
    observed = []
    watch_id = polling.watch(channel, 1, lambda ch: observed.append(1))
    polling.cancel(watch_id)
    sim.run(until=3_000.0)
    assert observed == []


def test_unsatisfied_watch_keeps_waiting(sim):
    device, channel = _make_channel(sim)
    polling = PollingService(sim, CostParams())
    observed = []
    polling.watch(channel, 5, lambda ch: observed.append(1))
    sim.run(until=10_000.0)
    assert observed == []
    assert polling.watch_count == 1


def test_cpu_accounting_grows_with_watches(sim):
    device, channel = _make_channel(sim)
    costs = CostParams()
    polling = PollingService(sim, costs)
    polling.watch(channel, 99, lambda ch: None)
    sim.run(until=10_000.0)
    assert polling.passes >= 9
    assert polling.cpu_us > 0


# ----------------------------------------------------------------------
# Watch-id scoping (regression: ids were once a module-level counter)
# ----------------------------------------------------------------------

def test_fresh_services_assign_identical_watch_ids(sim):
    device, channel = _make_channel(sim)
    costs = CostParams()
    first = PollingService(sim, costs)
    second = PollingService(sim, costs)
    ids_first = [first.watch(channel, 10, lambda ch: None) for _ in range(3)]
    ids_second = [second.watch(channel, 10, lambda ch: None) for _ in range(3)]
    # A module-global counter would interleave the two id spaces; each
    # fresh service must start from 1 so trajectories are reproducible.
    assert ids_first == [1, 2, 3]
    assert ids_second == [1, 2, 3]


# ----------------------------------------------------------------------
# Cancel-during-pass (regression: fired watches were popped en masse
# before callbacks, so a callback's cancel() missed them and the stale
# callback still ran)
# ----------------------------------------------------------------------

def test_callback_cancelling_sibling_watch_suppresses_it(sim):
    device, channel = _make_channel(sim)
    polling = PollingService(sim, CostParams())
    request = Request(RequestKind.COMPUTE, 5.0)
    device.submit(channel, request)
    observed = []
    ids = {}

    def callback_a(ch):
        observed.append("a")
        polling.cancel(ids["b"])

    ids["a"] = polling.watch(channel, 1, callback_a)
    ids["b"] = polling.watch(channel, 1, lambda ch: observed.append("b"))
    sim.run(until=3_000.0)
    # Both watches are satisfied by the same pass; A fires first
    # (registration order) and cancels B mid-pass — B must not fire.
    assert observed == ["a"]
    assert polling.watch_count == 0


def test_callback_cancelling_already_fired_watch_is_noop(sim):
    device, channel = _make_channel(sim)
    polling = PollingService(sim, CostParams())
    request = Request(RequestKind.COMPUTE, 5.0)
    device.submit(channel, request)
    observed = []
    ids = {}
    ids["a"] = polling.watch(channel, 1, lambda ch: observed.append("a"))

    def callback_b(ch):
        observed.append("b")
        polling.cancel(ids["a"])  # already fired: harmless

    ids["b"] = polling.watch(channel, 1, callback_b)
    sim.run(until=3_000.0)
    assert observed == ["a", "b"]


# ----------------------------------------------------------------------
# Dirty-set slotting: equivalence with the full scan, and quiescence
# ----------------------------------------------------------------------

class _FakeChannel:
    """Minimal stand-in exposing what a watch reads."""

    def __init__(self, index):
        self.index = index
        self.refcounter = 0
        self._pollers = []

    def bump(self, amount):
        self.refcounter += amount
        for poller in self._pollers:
            poller.mark_dirty(self)


class _FullScanReference:
    """The pre-dirty-set semantics: scan everything, every pass."""

    def __init__(self):
        import itertools

        self._ids = itertools.count(1)
        self._watches = {}

    def watch(self, channel, target_ref, callback):
        watch_id = next(self._ids)
        self._watches[watch_id] = (channel, target_ref, callback, [False])
        return watch_id

    def cancel(self, watch_id):
        entry = self._watches.pop(watch_id, None)
        if entry is not None:
            entry[3][0] = True

    def do_pass(self):
        fired = [
            (watch_id, entry)
            for watch_id, entry in self._watches.items()
            if not entry[3][0] and entry[0].refcounter >= entry[1]
        ]
        for watch_id, _entry in fired:
            self._watches.pop(watch_id, None)
        for _watch_id, (channel, _target, callback, _flag) in fired:
            callback(channel)


def test_dirty_set_matches_full_scan_on_random_traces(sim):
    import numpy as np

    rng = np.random.default_rng(1234)
    for _trial in range(20):
        channels = [_FakeChannel(i) for i in range(5)]
        service = PollingService(sim, CostParams())
        reference = _FullScanReference()
        fired_service, fired_reference = [], []
        live_ids = []
        for _step in range(120):
            op = rng.integers(0, 10)
            if op < 4:  # bump a channel's refcounter
                channels[int(rng.integers(0, 5))].bump(int(rng.integers(1, 3)))
            elif op < 7:  # register a watch
                channel = channels[int(rng.integers(0, 5))]
                target = channel.refcounter + int(rng.integers(-1, 4))
                watch_id = service.watch(
                    channel, target,
                    lambda ch, i=channel.index: fired_service.append(i),
                )
                ref_id = reference.watch(
                    channel, target,
                    lambda ch, i=channel.index: fired_reference.append(i),
                )
                assert watch_id == ref_id
                live_ids.append(watch_id)
            elif op < 8 and live_ids:  # cancel one
                victim = live_ids.pop(int(rng.integers(0, len(live_ids))))
                service.cancel(victim)
                reference.cancel(victim)
            else:  # polling pass
                service._pass()
                reference.do_pass()
                assert fired_service == fired_reference
        service._pass()
        reference.do_pass()
        assert fired_service == fired_reference
        assert service.watch_count == len(reference._watches)


def test_quiescent_channels_cost_no_host_work_but_full_modeled_cost(sim):
    costs = CostParams()
    service = PollingService(sim, CostParams())
    channel = _FakeChannel(0)
    service.watch(channel, 99, lambda ch: None)
    service._pass()  # consumes the registration dirtiness
    assert not service._dirty
    before = service.cpu_us
    service._pass()  # channel quiescent: early return...
    # ...but the *modeled* kernel thread still reads every watched
    # counter — the simulated cost must not shrink with the fast path.
    assert service.cpu_us == before + costs.poll_check_us * 1
