"""Tests for the kernel: submission paths, lifecycle, quota."""

import pytest

from repro.core.base import SchedulerBase
from repro.errors import OutOfResourcesError
from repro.gpu.device import GpuDevice
from repro.gpu.request import Request, RequestKind
from repro.osmodel.costs import CostParams
from repro.osmodel.kernel import ChannelQuotaPolicy, Kernel


class RecordingScheduler(SchedulerBase):
    """Configurable stub: optionally protects channels and blocks faults."""

    name = "recording"

    def __init__(self, protect=False, block_first=0):
        super().__init__()
        self.protect = protect
        self.block_first = block_first
        self.faults = []
        self.submits = []
        self.started = []
        self.exited = []
        self.block_events = []

    def on_channel_tracked(self, channel):
        if self.protect:
            channel.register_page.protect()

    def on_task_start(self, task):
        self.started.append(task.name)

    def on_task_exit(self, task):
        super().on_task_exit(task)
        self.exited.append(task.name)

    def on_fault(self, task, channel, request):
        self.faults.append(request.request_id)
        if len(self.block_events) < self.block_first:
            event = self.sim.event()
            self.block_events.append(event)
            return event
        return None

    def on_submit(self, task, channel, request):
        self.submits.append(request.request_id)


@pytest.fixture
def system(sim):
    device = GpuDevice(sim)
    kernel = Kernel(sim, device, CostParams())
    return device, kernel


def _setup_task(kernel):
    task = kernel.create_task("app")
    context = kernel.open_context(task)
    channel = kernel.open_channel(task, context, RequestKind.COMPUTE)
    return task, channel


def _drive(sim, generator):
    """Run a kernel generator inside a process; return captured result."""
    box = {}

    def body():
        box["result"] = yield from generator
        box["time"] = sim.now

    sim.spawn(body())
    # The polling service runs forever; bound the clock instead of draining.
    sim.run(until=10_000.0)
    return box


def test_direct_submission_costs_one_mmio_write(sim, system):
    device, kernel = system
    scheduler = RecordingScheduler(protect=False)
    kernel.attach_scheduler(scheduler)
    task, channel = _setup_task(kernel)
    request = Request(RequestKind.COMPUTE, 10.0)

    times = {}

    def body():
        yield from kernel.submit(task, channel, request)
        times["submitted"] = sim.now

    sim.spawn(body())
    sim.run(until=1.0)
    assert times["submitted"] == pytest.approx(kernel.costs.direct_submit_us)
    assert kernel.fault_count == 0
    assert scheduler.faults == []


def test_protected_submission_faults_and_costs_more(sim, system):
    device, kernel = system
    scheduler = RecordingScheduler(protect=True)
    kernel.attach_scheduler(scheduler)
    task, channel = _setup_task(kernel)
    request = Request(RequestKind.COMPUTE, 10.0)

    times = {}

    def body():
        yield from kernel.submit(task, channel, request)
        times["submitted"] = sim.now

    sim.spawn(body())
    sim.run(until=100.0)
    expected = kernel.costs.direct_submit_us + kernel.costs.intercept_us
    assert times["submitted"] == pytest.approx(expected)
    assert kernel.fault_count == 1
    assert scheduler.faults == [request.request_id]
    assert scheduler.submits == [request.request_id]
    assert channel.register_page.fault_count == 1


def test_blocked_fault_waits_for_scheduler(sim, system):
    device, kernel = system
    scheduler = RecordingScheduler(protect=True, block_first=1)
    kernel.attach_scheduler(scheduler)
    task, channel = _setup_task(kernel)
    request = Request(RequestKind.COMPUTE, 10.0)

    times = {}

    def body():
        yield from kernel.submit(task, channel, request)
        times["submitted"] = sim.now

    sim.spawn(body())
    sim.run(until=500.0)
    assert "submitted" not in times  # still blocked
    scheduler.block_events[0].trigger()
    sim.run(until=1_000.0)
    assert times["submitted"] >= 500.0
    # One fault trap total: the re-check after waking is handler-internal.
    assert kernel.fault_count == 1


def test_task_lifecycle_notifications(sim, system):
    device, kernel = system
    scheduler = RecordingScheduler()
    kernel.attach_scheduler(scheduler)
    task, channel = _setup_task(kernel)
    assert scheduler.started == ["app"]
    kernel.exit_task(task)
    assert scheduler.exited == ["app"]
    assert not task.alive


def test_exit_task_releases_device_resources(sim, system):
    device, kernel = system
    kernel.attach_scheduler(RecordingScheduler())
    task, channel = _setup_task(kernel)
    assert device.live_channel_count == 1
    kernel.exit_task(task)
    assert device.live_channel_count == 0
    kernel.exit_task(task)  # idempotent


def test_kill_task_records_reason_and_kills_process(sim, system):
    device, kernel = system
    kernel.attach_scheduler(RecordingScheduler())
    task, channel = _setup_task(kernel)

    def body():
        yield 1_000_000.0

    task.process = sim.spawn(body())
    kernel.kill_task(task, "being bad")
    sim.run(until=10.0)
    assert task.kill_reason == "being bad"
    assert not task.alive
    assert task.process.killed


def test_quota_limits_channels_per_task(sim, system):
    device, kernel = system
    kernel.quota = ChannelQuotaPolicy(channels_per_task=2)
    kernel.attach_scheduler(RecordingScheduler())
    task = kernel.create_task("greedy")
    context = kernel.open_context(task)
    kernel.open_channel(task, context, RequestKind.COMPUTE)
    kernel.open_channel(task, context, RequestKind.DMA)
    with pytest.raises(OutOfResourcesError):
        kernel.open_channel(task, context, RequestKind.COMPUTE)


def test_quota_limits_task_count(sim, system):
    device, kernel = system
    quota = ChannelQuotaPolicy(channels_per_task=24)
    kernel.quota = quota
    kernel.attach_scheduler(RecordingScheduler())
    max_tasks = device.params.total_channels // quota.channels_per_task
    for index in range(max_tasks):
        task = kernel.create_task(f"t{index}")
        context = kernel.open_context(task)
        kernel.open_channel(task, context, RequestKind.COMPUTE)
    straggler = kernel.create_task("straggler")
    context = kernel.open_context(straggler)
    with pytest.raises(OutOfResourcesError):
        kernel.open_channel(straggler, context, RequestKind.COMPUTE)


def test_syscall_submission_costs_trap(sim, system):
    device, kernel = system
    kernel.attach_scheduler(RecordingScheduler())
    task, channel = _setup_task(kernel)
    request = Request(RequestKind.COMPUTE, 10.0)
    box = _drive(sim, kernel.submit_via_syscall(task, channel, request, False))
    assert box["time"] == pytest.approx(kernel.costs.syscall_us)


def test_syscall_with_driver_work_costs_more(sim, system):
    device, kernel = system
    kernel.attach_scheduler(RecordingScheduler())
    task, channel = _setup_task(kernel)
    request = Request(RequestKind.COMPUTE, 10.0)
    box = _drive(sim, kernel.submit_via_syscall(task, channel, request, True))
    assert box["time"] == pytest.approx(
        kernel.costs.syscall_us + kernel.costs.driver_work_us
    )


def test_fault_counts_per_task(sim, system):
    device, kernel = system
    scheduler = RecordingScheduler(protect=True)
    kernel.attach_scheduler(scheduler)
    task, channel = _setup_task(kernel)

    def body():
        for _ in range(3):
            request = Request(RequestKind.COMPUTE, 1.0)
            completion = yield from kernel.submit(task, channel, request)
            yield completion

    sim.spawn(body())
    sim.run(until=10_000.0)
    assert kernel.fault_count_by_task[task.task_id] == 3
