"""Tests for the register-page protection model."""

from repro.osmodel.pagetable import RegisterPage


def test_starts_unprotected():
    page = RegisterPage(1)
    assert not page.protected


def test_protect_unprotect_cycle():
    page = RegisterPage(1)
    page.protect()
    assert page.protected
    page.unprotect()
    assert not page.protected


def test_protect_count_counts_transitions_only():
    page = RegisterPage(1)
    page.protect()
    page.protect()  # already protected: not a transition
    assert page.protect_count == 1
    page.unprotect()
    page.protect()
    assert page.protect_count == 2


def test_fault_count():
    page = RegisterPage(1)
    page.record_fault()
    page.record_fault()
    assert page.fault_count == 2
