"""Tests for kernel-level memory allocation and the quota policy."""

import pytest

from repro.errors import OutOfResourcesError
from repro.experiments.runner import build_env
from repro.osmodel.kernel import MemoryQuotaPolicy


def _task_with_context(env, name):
    task = env.kernel.create_task(name)
    context = env.kernel.open_context(task)
    return task, context


def test_allocation_and_usage_tracking():
    env = build_env("direct")
    task, context = _task_with_context(env, "app")
    env.kernel.allocate_memory(task, context, 300.0)
    assert env.kernel.task_memory_usage(task) == 300.0
    env.kernel.free_memory(task, context, 100.0)
    assert env.kernel.task_memory_usage(task) == 200.0


def test_cross_task_context_rejected():
    env = build_env("direct")
    task_a, context_a = _task_with_context(env, "a")
    task_b, _ = _task_with_context(env, "b")
    with pytest.raises(ValueError):
        env.kernel.allocate_memory(task_b, context_a, 10.0)


def test_quota_caps_single_task():
    env = build_env("direct", memory_quota=MemoryQuotaPolicy(max_fraction=0.25))
    task, context = _task_with_context(env, "greedy")
    limit = 0.25 * env.device.params.memory_mib
    env.kernel.allocate_memory(task, context, limit)
    with pytest.raises(OutOfResourcesError):
        env.kernel.allocate_memory(task, context, 1.0)


def test_quota_spans_contexts_of_one_task():
    env = build_env("direct", memory_quota=MemoryQuotaPolicy(max_fraction=0.25))
    task, context_a = _task_with_context(env, "greedy")
    context_b = env.kernel.open_context(task)
    half_limit = 0.125 * env.device.params.memory_mib
    env.kernel.allocate_memory(task, context_a, half_limit)
    env.kernel.allocate_memory(task, context_b, half_limit)
    with pytest.raises(OutOfResourcesError):
        env.kernel.allocate_memory(task, context_b, 1.0)


def test_without_quota_device_limit_applies():
    env = build_env("direct")
    task, context = _task_with_context(env, "greedy")
    env.kernel.allocate_memory(task, context, env.device.params.memory_mib)
    with pytest.raises(OutOfResourcesError):
        env.kernel.allocate_memory(task, context, 1.0)


def test_memory_hog_experiment_shapes():
    from repro.experiments import section6_dos

    outcomes = section6_dos.run_memory()
    unprotected = next(o for o in outcomes if not o.quota_enabled)
    protected = next(o for o in outcomes if o.quota_enabled)
    assert unprotected.victim_denied
    assert unprotected.hog_allocated_mib == 2048.0
    assert not protected.victim_denied
    assert protected.hog_allocated_mib <= 1024.0
