"""Tests for the finite host-CPU pool."""

import pytest

from repro.osmodel.cpu import CpuPool
from repro.sim.process import ProcessCrashed, ProcessKilled


def test_invalid_core_count():
    import repro.sim.engine as engine

    with pytest.raises(ValueError):
        CpuPool(engine.Simulator(), 0)


def test_uncontended_execution_takes_exact_time(sim):
    pool = CpuPool(sim, 2)
    done = []

    def worker():
        yield from pool.execute(50.0, "w")
        done.append(sim.now)

    sim.spawn(worker())
    sim.run()
    assert done == [50.0]
    assert pool.owner_usage("w") == 50.0


def test_contention_serializes_on_one_core(sim):
    pool = CpuPool(sim, 1)
    finish = {}

    def worker(name):
        yield from pool.execute(100.0, name)
        finish[name] = sim.now

    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.run()
    assert sorted(finish.values()) == [100.0, 200.0]
    assert pool.contention_wait_us == pytest.approx(100.0)


def test_two_cores_run_two_workers_in_parallel(sim):
    pool = CpuPool(sim, 2)
    finish = []

    def worker():
        yield from pool.execute(100.0, "w")
        finish.append(sim.now)

    for _ in range(2):
        sim.spawn(worker())
    sim.run()
    assert finish == [100.0, 100.0]


def test_queue_drains_in_fifo_order(sim):
    pool = CpuPool(sim, 1)
    order = []

    def worker(name):
        yield from pool.execute(10.0, name)
        order.append(name)

    for name in ("a", "b", "c"):
        sim.spawn(worker(name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_killed_holder_releases_core(sim):
    pool = CpuPool(sim, 1)
    finished = []

    def hog():
        yield from pool.execute(10_000.0, "hog")

    def patient():
        yield from pool.execute(10.0, "patient")
        finished.append(sim.now)

    hog_proc = sim.spawn(hog())
    sim.spawn(patient())
    sim.schedule(100.0, hog_proc.kill)
    sim.run()
    assert finished and finished[0] < 200.0
    # The hog was charged only what it executed before dying.
    assert pool.owner_usage("hog") == pytest.approx(100.0)


def test_zero_duration_is_fine(sim):
    pool = CpuPool(sim, 1)

    def worker():
        yield from pool.execute(0.0, "w")
        yield 1.0

    sim.spawn(worker())
    sim.run()
    assert pool.idle_cores == 1


def test_negative_duration_rejected(sim):
    pool = CpuPool(sim, 1)

    def worker():
        yield from pool.execute(-1.0, "w")

    sim.spawn(worker())
    with pytest.raises(ProcessCrashed) as excinfo:
        sim.run()
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_paper_claim_polling_load_negligible():
    """§5.2: polling is not a noticeable load even on a single CPU."""
    from repro.experiments.cpu_contention import run

    rows = run(duration_us=120_000.0, warmup_us=20_000.0, schedulers=("dfq",))
    row = rows[0]
    assert abs(row.single_core_penalty) < 0.06
    assert row.polling_cpu_us < 0.01 * 120_000.0
