"""Tests for cost parameters."""

import pytest

from repro.osmodel.costs import CPU_GHZ, CostParams


def test_defaults_validate():
    CostParams().validate()


def test_direct_submit_matches_paper_cycles():
    """305 cycles at 2.27 GHz (paper, Section 3)."""
    costs = CostParams()
    assert costs.direct_submit_us == pytest.approx(305 / (CPU_GHZ * 1000))
    assert costs.direct_submit_us < 0.2


def test_intercept_cost_is_sum_of_parts():
    costs = CostParams()
    expected = costs.trap_us + costs.fault_handle_us + costs.singlestep_us
    assert costs.intercept_us == expected


def test_interception_orders_of_magnitude():
    """Interception is tens of times pricier than a direct store, but far
    below typical request sizes at the large end."""
    costs = CostParams()
    assert costs.intercept_us > 10 * costs.direct_submit_us
    assert costs.intercept_us < 100.0


@pytest.mark.parametrize(
    "field,value",
    [
        ("trap_us", -1.0),
        ("poll_interval_us", 0.0),
        ("timeslice_us", 0.0),
        ("sample_max_requests", 0),
        ("freerun_multiplier", 0.0),
        ("max_request_us", -1.0),
    ],
)
def test_invalid_values_rejected(field, value):
    costs = CostParams()
    setattr(costs, field, value)
    with pytest.raises(ValueError):
        costs.validate()


def test_paper_configuration_defaults():
    """Section 5.2's chosen parameters."""
    costs = CostParams()
    assert costs.timeslice_us == 30_000.0
    assert costs.poll_interval_us == 1_000.0
    assert costs.sample_max_us == 5_000.0
    assert costs.sample_max_requests == 32
    assert costs.freerun_multiplier == 5.0
