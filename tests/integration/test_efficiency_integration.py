"""End-to-end efficiency: disengagement pays, work conservation pays more."""

from repro.experiments.runner import build_env, run_workloads, solo_baseline
from repro.metrics.efficiency import concurrency_efficiency
from repro.workloads.throttle import Throttle

DURATION = 250_000.0
WARMUP = 50_000.0


def _pair_efficiency(scheduler, sleep_ratio=0.0):
    base_a = solo_baseline(lambda: Throttle(80.0, name="a"), DURATION, WARMUP)
    base_b = solo_baseline(
        lambda: Throttle(80.0, sleep_ratio=sleep_ratio, name="b"), DURATION, WARMUP
    )
    env = build_env(scheduler)
    a = Throttle(80.0, name="a")
    b = Throttle(80.0, sleep_ratio=sleep_ratio, name="b")
    run_workloads(env, [a, b], DURATION, WARMUP)
    return concurrency_efficiency(
        [
            (base_a.rounds.mean_us, a.round_stats(WARMUP).mean_us),
            (base_b.rounds.mean_us, b.round_stats(WARMUP).mean_us),
        ]
    )


def test_disengaged_timeslice_beats_engaged_on_small_requests():
    assert _pair_efficiency("disengaged-timeslice") > _pair_efficiency("timeslice")


def test_dfq_work_conservation_on_nonsaturating_mix():
    """At 80% co-runner sleep, DFQ keeps the device busy while timeslice
    schedulers idle through the sleeper's slices (Figure 10)."""
    dfq = _pair_efficiency("dfq", sleep_ratio=0.8)
    timeslice = _pair_efficiency("timeslice", sleep_ratio=0.8)
    assert dfq > timeslice * 1.2


def test_all_managed_schedulers_reasonably_efficient():
    for scheduler in ("timeslice", "disengaged-timeslice", "dfq"):
        efficiency = _pair_efficiency(scheduler)
        assert efficiency > 0.65, f"{scheduler}: efficiency {efficiency:.2f}"
