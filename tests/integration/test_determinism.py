"""Whole-system determinism: identical seeds give identical histories."""

import pytest

from repro.experiments.runner import measure
from repro.workloads.apps import make_app
from repro.workloads.throttle import Throttle


def _signature(seed):
    results = measure(
        "dfq",
        [lambda: make_app("DCT"), lambda: Throttle(250.0, name="thr")],
        duration_us=120_000.0,
        warmup_us=20_000.0,
        seed=seed,
    )
    return {
        name: (result.rounds.count, result.rounds.mean_us, result.requests_submitted)
        for name, result in results.items()
    }


def test_same_seed_identical_results():
    assert _signature(42) == _signature(42)


def test_different_seed_differs():
    # Workload jitter derives from the seed, so histories diverge.
    assert _signature(1) != _signature(2)


@pytest.mark.parametrize("scheduler", ["direct", "disengaged-timeslice"])
def test_determinism_across_schedulers(scheduler):
    def run():
        results = measure(
            scheduler,
            [lambda: Throttle(100.0, name="a"), lambda: Throttle(400.0, name="b")],
            duration_us=100_000.0,
            warmup_us=10_000.0,
            seed=7,
        )
        return {name: result.rounds.count for name, result in results.items()}

    assert run() == run()
