"""Robustness: tasks exiting at awkward moments must not wedge anything."""

import pytest

from repro.experiments.runner import build_env, run_workloads
from repro.gpu.request import RequestKind
from repro.workloads.base import Workload
from repro.workloads.throttle import Throttle


class ShortLived(Workload):
    """Runs a few requests, then exits normally."""

    def __init__(self, name="short", requests=5, size=100.0):
        super().__init__(name)
        self.count = requests
        self.size = size

    def body(self):
        channel = self.open_channel(RequestKind.COMPUTE)
        for _ in range(self.count):
            start = self.sim.now
            yield from self.submit(channel, self.size)
            self.rounds.record(start, self.sim.now)


@pytest.mark.parametrize(
    "scheduler",
    ["timeslice", "disengaged-timeslice", "dfq", "engaged-fq", "drr",
     "credit", "timegraph"],
)
def test_exit_mid_run_does_not_wedge_survivor(scheduler, quick_costs):
    env = build_env(scheduler, costs=quick_costs)
    fleeting = ShortLived(requests=10)
    survivor = Throttle(100.0, name="survivor")
    run_workloads(env, [fleeting, survivor], 150_000.0, 0.0)
    assert not fleeting.killed
    assert len(fleeting.rounds) == 10
    # The survivor must own the device after the exit: its late-phase
    # throughput approaches standalone.
    late = survivor.rounds.stats(warmup_us=100_000.0)
    assert late.count > 300


@pytest.mark.parametrize("scheduler", ["disengaged-timeslice", "dfq"])
def test_churn_of_many_short_tasks(scheduler, quick_costs):
    env = build_env(scheduler, costs=quick_costs)
    tasks = [ShortLived(name=f"burst{i}", requests=3, size=50.0) for i in range(8)]
    steady = Throttle(200.0, name="steady")
    run_workloads(env, tasks + [steady], 200_000.0, 0.0)
    for task in tasks:
        assert len(task.rounds) == 3, task.name
    assert len(steady.rounds) > 200
    assert env.device.live_channel_count == 1  # only the survivor remains


def test_all_tasks_exit_then_new_task_arrives(quick_costs):
    env = build_env("dfq", costs=quick_costs)
    first = ShortLived(name="first", requests=5)
    first.start(env.sim, env.kernel, env.rng)
    env.sim.run(until=30_000.0)
    assert not first.task.alive
    late = Throttle(100.0, name="late")
    late.start(env.sim, env.kernel, env.rng)
    env.sim.run(until=80_000.0)
    assert len(late.rounds) > 100  # the scheduler woke back up


def test_exit_during_own_timeslice(quick_costs):
    env = build_env("disengaged-timeslice", costs=quick_costs)
    # Short enough to exit within its first slice.
    fleeting = ShortLived(requests=2, size=50.0)
    peer = Throttle(100.0, name="peer")
    run_workloads(env, [fleeting, peer], 100_000.0, 0.0)
    assert len(fleeting.rounds) == 2
    assert len(peer.rounds) > 100
