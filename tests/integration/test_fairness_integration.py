"""End-to-end fairness: the paper's central claim, across schedulers.

Two co-runners with a 10x request-size asymmetry must each land near the
fair 2x slowdown under every managed scheduler, while direct access lets
the large-request task crush the small one.
"""

import pytest

from repro.experiments.runner import build_env, run_workloads, solo_baseline
from repro.workloads.throttle import Throttle

DURATION = 300_000.0
WARMUP = 60_000.0


def _pair_slowdowns(scheduler):
    small_base = solo_baseline(lambda: Throttle(60.0, name="small"), DURATION, WARMUP)
    large_base = solo_baseline(lambda: Throttle(600.0, name="large"), DURATION, WARMUP)
    env = build_env(scheduler)
    small = Throttle(60.0, name="small")
    large = Throttle(600.0, name="large")
    run_workloads(env, [small, large], DURATION, WARMUP)
    return (
        small.round_stats(WARMUP).mean_us / small_base.rounds.mean_us,
        large.round_stats(WARMUP).mean_us / large_base.rounds.mean_us,
    )


def test_direct_access_is_unfair():
    small, large = _pair_slowdowns("direct")
    assert small > 4.0  # the small-request task is crushed
    assert large < 1.5


@pytest.mark.parametrize(
    "scheduler", ["timeslice", "disengaged-timeslice", "dfq", "dfq-hw"]
)
def test_paper_schedulers_restore_fairness(scheduler):
    small, large = _pair_slowdowns(scheduler)
    assert small < 3.0, f"{scheduler}: small-task slowdown {small:.2f}"
    assert large < 3.0, f"{scheduler}: large-task slowdown {large:.2f}"
    assert max(small, large) / min(small, large) < 1.6


@pytest.mark.parametrize("scheduler", ["engaged-fq", "drr", "credit"])
def test_related_work_baselines_restore_fairness(scheduler):
    small, large = _pair_slowdowns(scheduler)
    assert small < 3.2
    assert large < 3.2
