"""Four-way concurrency (Figure 8's shape) as an integration test."""

import pytest

from repro.experiments.runner import build_env, run_workloads, solo_baseline
from repro.workloads.apps import make_app
from repro.workloads.throttle import Throttle

DURATION = 400_000.0
WARMUP = 80_000.0


@pytest.mark.parametrize("scheduler", ["disengaged-timeslice", "dfq"])
def test_four_way_slowdowns_near_4x(scheduler):
    names = ("BinarySearch", "DCT", "FFT")
    factories = {name: (lambda name=name: make_app(name)) for name in names}
    factories["thr"] = lambda: Throttle(1000.0, name="thr")
    baselines = {
        name: solo_baseline(factory, DURATION, WARMUP)
        for name, factory in factories.items()
    }
    env = build_env(scheduler)
    workloads = [factory() for factory in factories.values()]
    run_workloads(env, workloads, DURATION, WARMUP)
    for workload in workloads:
        slowdown = (
            workload.round_stats(WARMUP).mean_us
            / baselines[workload.name].rounds.mean_us
        )
        assert 1.0 < slowdown < 7.5, (
            f"{scheduler}/{workload.name}: slowdown {slowdown:.2f}"
        )


def test_direct_access_unfair_at_four_way():
    factories = [
        lambda: make_app("DCT"),
        lambda: make_app("FFT"),
        lambda: make_app("BinarySearch"),
        lambda: Throttle(1000.0, name="thr"),
    ]
    base_dct = solo_baseline(factories[0], DURATION, WARMUP)
    env = build_env("direct")
    workloads = [factory() for factory in factories]
    run_workloads(env, workloads, DURATION, WARMUP)
    dct = next(w for w in workloads if w.name == "DCT")
    slowdown = dct.round_stats(WARMUP).mean_us / base_dct.rounds.mean_us
    assert slowdown > 6.0  # crushed by the large-request co-runner
