"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_shows_catalog(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_errors(capsys):
    assert main(["no-such-thing"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_runs_a_quick_experiment(capsys):
    assert main(["section3", "--duration-ms", "20"]) == 0
    out = capsys.readouterr().out
    assert "Section 3" in out
    assert "direct" in out


def test_seed_flag_parses():
    args = build_parser().parse_args(["figure4", "--seed", "7"])
    assert args.seed == 7
    assert args.experiment == "figure4"


def test_duration_flag_default_is_none():
    args = build_parser().parse_args(["figure4"])
    assert args.duration_ms is None


def test_catalog_covers_every_paper_artifact():
    expected = {
        "table1", "figure2", "section3", "figure4", "figure5", "figure6",
        "figure7", "figure8", "figure9", "figure10", "protection",
        "section6", "ablations", "preemption", "breakdown",
    }
    assert expected <= set(EXPERIMENTS)
