"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


def test_list_shows_catalog(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPERIMENTS:
        assert name in out


def test_unknown_experiment_errors(capsys):
    assert main(["no-such-thing"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_runs_a_quick_experiment(capsys):
    assert main(["section3", "--duration-ms", "20"]) == 0
    out = capsys.readouterr().out
    assert "Section 3" in out
    assert "direct" in out


def test_seed_flag_parses():
    args = build_parser().parse_args(["figure4", "--seed", "7"])
    assert args.seed == 7
    assert args.experiment == "figure4"


def test_duration_flag_default_is_none():
    args = build_parser().parse_args(["figure4"])
    assert args.duration_ms is None


def test_workers_and_cache_flags_parse():
    args = build_parser().parse_args(
        ["figure6", "--workers", "4", "--no-cache"]
    )
    assert args.workers == 4
    assert args.no_cache


def test_workers_default_is_serial():
    args = build_parser().parse_args(["figure6"])
    assert args.workers == 1
    assert not args.no_cache
    assert args.cache_dir is None


def test_cell_experiment_emits_wall_time_summary(capsys):
    assert main(["figure5", "--duration-ms", "10"]) == 0
    captured = capsys.readouterr()
    assert "Figure 5" in captured.out
    assert "cell farm:" in captured.err
    assert "cell farm:" not in captured.out  # stdout stays byte-identical


def test_non_cell_experiment_accepts_farm_flags(capsys):
    # table1 does not take workers/cache; the CLI must not pass them.
    assert main(["table1", "--duration-ms", "10", "--workers", "2"]) == 0
    assert "Table 1" in capsys.readouterr().out


def test_cache_dir_persists_results(tmp_path, capsys):
    cache_dir = tmp_path / "cells"
    assert main(
        ["figure5", "--duration-ms", "10", "--cache-dir", str(cache_dir)]
    ) == 0
    first = capsys.readouterr().out
    files = list(cache_dir.glob("*.json"))
    assert files
    assert main(
        ["figure5", "--duration-ms", "10", "--cache-dir", str(cache_dir)]
    ) == 0
    captured = capsys.readouterr()
    assert captured.out == first  # cached rerun is byte-identical
    assert "0 executed" in captured.err or "executed" in captured.err


def test_catalog_covers_every_paper_artifact():
    expected = {
        "table1", "figure2", "section3", "figure4", "figure5", "figure6",
        "figure7", "figure8", "figure9", "figure10", "protection",
        "section6", "ablations", "preemption", "breakdown",
    }
    assert expected <= set(EXPERIMENTS)
