"""Smoke tests for every experiment driver at reduced durations.

Each driver must run end-to-end and reproduce the *shape* of its paper
result.  Full-scale comparisons live in EXPERIMENTS.md; these tests keep
the drivers honest under refactoring.
"""

import math

import pytest

from repro.experiments import (
    figure2,
    figure4,
    figure5,
    figure6,
    figure8,
    figure9,
    protection,
    section3_throughput,
    section6_dos,
    table1,
)

QUICK = dict(duration_us=120_000.0, warmup_us=20_000.0)


def test_table1_rows_track_paper():
    rows = table1.run(
        duration_us=80_000.0, warmup_us=15_000.0, apps=["DCT", "FFT", "glxgears"]
    )
    assert len(rows) == 3
    for row in rows:
        assert abs(row.round_error) < 0.25


def test_figure2_short_requests_dominate():
    series = figure2.run(duration_us=80_000.0, warmup_us=10_000.0)
    by_app = {entry.app: entry for entry in series}
    assert by_app["glxgears"].short_request_fraction >= 0.45
    assert by_app["oclParticles"].short_request_fraction >= 0.5
    for entry in series:
        assert len(entry.service) > 20
        assert entry.interarrival.quantile(0.5) < 2_000.0


def test_section3_direct_always_wins_and_gains_shrink_with_size():
    rows = section3_throughput.run(duration_us=60_000.0)
    for row in rows:
        assert row.direct_vs_syscall_gain > 0
        assert row.direct_vs_driver_gain > row.direct_vs_syscall_gain
    gains = [row.direct_vs_syscall_gain for row in rows]
    assert gains == sorted(gains, reverse=True)
    # Paper: 8-35% (bare trap) and 48-170% (driver work) at the small end.
    assert 0.10 < rows[0].direct_vs_syscall_gain < 0.45
    assert 0.8 < rows[0].direct_vs_driver_gain < 2.2


def test_figure4_disengaged_cheaper_than_engaged():
    rows = figure4.run(apps=["DCT", "glxgears"], **QUICK)
    for row in rows:
        engaged = row.slowdowns["timeslice"]
        assert row.slowdowns["disengaged-timeslice"] < engaged
        assert row.slowdowns["disengaged-timeslice"] < 1.10
        assert row.slowdowns["dfq"] < 1.15


def test_figure5_engaged_cost_shrinks_with_request_size():
    rows = figure5.run(sizes=(19.0, 303.0, 1700.0), **QUICK)
    engaged = [row.slowdowns["timeslice"] for row in rows]
    assert engaged[0] > engaged[-1]
    assert engaged[0] > 1.15  # hurts small requests
    assert engaged[-1] < 1.05  # cheap for large ones


def test_figure6_schedulers_restore_fairness():
    # DFQ's denial cycle needs a few 50 ms engagement periods to converge.
    outcomes = figure6.run(
        duration_us=300_000.0,
        warmup_us=60_000.0,
        apps=("DCT",),
        sizes=(1700.0,),
        schedulers=("direct", "dfq"),
    )
    direct = next(o for o in outcomes if o.scheduler == "direct")
    dfq = next(o for o in outcomes if o.scheduler == "dfq")
    assert direct.app_slowdown > 8.0
    assert dfq.app_slowdown < 3.0
    assert dfq.throttle_slowdown < 3.0


def test_figure8_four_way():
    rows = figure8.run(duration_us=250_000.0, warmup_us=50_000.0,
                       schedulers=("direct", "dfq"))
    direct = next(r for r in rows if r.scheduler == "direct")
    dfq = next(r for r in rows if r.scheduler == "dfq")
    assert max(direct.slowdowns.values()) > 6.0  # someone crushed
    assert max(dfq.slowdowns.values()) < 7.0
    assert dfq.efficiency > 0.6


def test_figure9_dfq_lets_app_benefit_from_idleness():
    cells = figure9.run(
        duration_us=250_000.0,
        warmup_us=50_000.0,
        ratios=(0.8,),
        schedulers=("timeslice", "dfq"),
    )
    timeslice = next(c for c in cells if c.scheduler == "timeslice")
    dfq = next(c for c in cells if c.scheduler == "dfq")
    # DFQ is (near-)work-conserving: DCT absorbs the sleeper's idle time.
    assert dfq.app_slowdown < timeslice.app_slowdown
    assert dfq.throttle_slowdown < 2.5
    assert dfq.efficiency > timeslice.efficiency


def test_protection_infinite_loop():
    outcomes = protection.run_infinite_loop(
        duration_us=150_000.0, schedulers=("direct", "dfq")
    )
    direct = next(o for o in outcomes if o.scheduler == "direct")
    dfq = next(o for o in outcomes if o.scheduler == "dfq")
    assert not direct.attacker_killed and direct.victim_starved
    assert dfq.attacker_killed and not dfq.victim_starved


def test_protection_greedy_batcher():
    outcomes = protection.run_greedy_batcher(
        duration_us=150_000.0, warmup_us=30_000.0, schedulers=("direct", "dfq")
    )
    direct = next(o for o in outcomes if o.scheduler == "direct")
    dfq = next(o for o in outcomes if o.scheduler == "dfq")
    assert direct.batcher_share > 0.8
    assert dfq.batcher_share < 0.7


def test_section6_dos_and_quota():
    outcomes = section6_dos.run(duration_us=40_000.0)
    unprotected = next(o for o in outcomes if not o.quota_enabled)
    protected = next(o for o in outcomes if o.quota_enabled)
    assert unprotected.hog_contexts == 48  # the paper's measured number
    assert unprotected.victim_locked_out
    assert not protected.victim_locked_out
    assert protected.hog_channels <= 4
