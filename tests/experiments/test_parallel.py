"""Parallel cell farm: determinism, caching, fallback.

The cross-driver equivalence tests run a *reduced* figure6/figure9 grid
twice — serial and with a worker pool — and require identical outcome
tables.  CI exercises this file with ``workers=2`` as its equivalence
gate (see .github/workflows/ci.yml).
"""

from repro.experiments import figure6, figure9
from repro.experiments.cells import CellSpec, WorkloadSpec
from repro.experiments.parallel import (
    CellTiming,
    ResultCache,
    format_cell_timings,
    result_from_jsonable,
    result_to_jsonable,
    run_cells,
)

QUICK = dict(duration_us=60_000.0, warmup_us=10_000.0)

REDUCED_GRID = dict(
    apps=("DCT", "glxgears"),
    sizes=(19.0, 1700.0),
    schedulers=("direct", "dfq"),
)


def _quick_cells(count=3, size=33.0):
    return [
        CellSpec(
            "direct",
            (WorkloadSpec.throttle(size + index, name=f"t{index}"),),
            duration_us=5_000.0,
            warmup_us=500.0,
        )
        for index in range(count)
    ]


def test_run_cells_serial_matches_workers():
    specs = _quick_cells()
    serial = run_cells(specs, workers=1)
    pooled = run_cells(specs, workers=2)
    assert serial == pooled


def test_figure6_reduced_grid_parallel_equivalence():
    serial = figure6.run(**QUICK, **REDUCED_GRID)
    parallel = figure6.run(**QUICK, **REDUCED_GRID, workers=4)
    assert serial == parallel


def test_figure9_reduced_grid_parallel_equivalence():
    kwargs = dict(ratios=(0.0, 0.8), schedulers=("direct", "dfq"), **QUICK)
    serial = figure9.run(**kwargs)
    parallel = figure9.run(**kwargs, workers=4)
    assert serial == parallel


def test_baseline_cache_returns_exactly_the_uncached_results():
    cache = ResultCache()
    specs = _quick_cells(count=2)
    uncached = run_cells(specs, workers=1)
    cached_run = run_cells(specs, workers=1, cache=cache)
    hit_run = run_cells(specs, workers=1, cache=cache)
    assert cached_run == uncached
    assert hit_run == cached_run
    # Second pass is pure cache: the very same objects come back.
    assert all(a is b for a, b in zip(cached_run, hit_run))
    assert cache.hits == len(specs)


def test_cache_shares_solo_baselines_across_drivers():
    cache = ResultCache()
    timings6: list[CellTiming] = []
    figure6.run(
        **QUICK,
        apps=("DCT",),
        sizes=(19.0,),
        schedulers=("direct",),
        cache=cache,
        timings=timings6,
    )
    # figure7-style rerun of the same grid must be 100% cache hits.
    timings_again: list[CellTiming] = []
    figure6.run(
        **QUICK,
        apps=("DCT",),
        sizes=(19.0,),
        schedulers=("direct",),
        cache=cache,
        timings=timings_again,
    )
    assert all(t.source == "cache" for t in timings_again)


def test_intra_call_duplicates_computed_once():
    spec = _quick_cells(count=1)[0]
    timings: list[CellTiming] = []
    results = run_cells([spec, spec, spec], workers=1, timings=timings)
    assert results[0] is results[1] is results[2]
    sources = sorted(t.source for t in timings)
    assert sources == ["dup", "dup", "run"]


def test_on_disk_cache_roundtrip(tmp_path):
    specs = _quick_cells(count=2)
    fresh = run_cells(specs, workers=1)
    cache = ResultCache(tmp_path)
    run_cells(specs, workers=1, cache=cache)
    assert len(list(tmp_path.glob("*.json"))) == 2
    # A brand-new cache instance reloads identical results from disk.
    reloaded = run_cells(specs, workers=1, cache=ResultCache(tmp_path))
    assert reloaded == fresh


def test_result_json_roundtrip():
    result = run_cells(_quick_cells(count=1))[0]["t0"]
    assert result_from_jsonable(result_to_jsonable(result)) == result


def test_callable_specs_fall_back_to_serial():
    from repro.workloads.throttle import Throttle

    specs = [
        CellSpec(
            "direct",
            (WorkloadSpec.from_callable(lambda: Throttle(21.0, name="c")),),
            duration_us=5_000.0,
            warmup_us=500.0,
        )
    ]
    timings: list[CellTiming] = []
    results = run_cells(specs, workers=4, timings=timings)
    assert results[0]["c"].rounds.count > 0
    assert [t.source for t in timings] == ["run"]


def test_timing_summary_mentions_cells_and_reuse():
    cache = ResultCache()
    specs = _quick_cells(count=2)
    timings: list[CellTiming] = []
    run_cells(specs, cache=cache, timings=timings)
    run_cells(specs, cache=cache, timings=timings)
    summary = format_cell_timings(timings)
    assert "4 cells" in summary
    assert "2 executed" in summary
    assert "2 reused" in summary


def test_empty_timing_summary():
    assert "no cells" in format_cell_timings([])


def test_warm_cache_reports_original_cell_cost(tmp_path):
    # The cache persists wall_s alongside each result, so a warm-cache
    # run (even in a fresh process/cache instance) still knows what its
    # reused cells originally cost.
    specs = _quick_cells(count=2)
    cold: list[CellTiming] = []
    run_cells(specs, workers=1, cache=ResultCache(tmp_path), timings=cold)
    warm: list[CellTiming] = []
    run_cells(specs, workers=1, cache=ResultCache(tmp_path), timings=warm)
    assert all(t.source == "cache" for t in warm)
    original = {t.index: t.wall_s for t in cold}
    for timing in warm:
        assert timing.wall_s == 0.0
        assert timing.cached_wall_s == original[timing.index]
    summary = format_cell_timings(warm)
    assert "reuse saved" in summary


def test_dup_timings_carry_owner_wall():
    spec = _quick_cells(count=1)[0]
    timings: list[CellTiming] = []
    run_cells([spec, spec], workers=1, timings=timings)
    by_source = {t.source: t for t in timings}
    assert by_source["dup"].cached_wall_s == by_source["run"].wall_s


def test_old_cache_files_without_wall_still_load(tmp_path):
    # Additive schema on disk: payloads written before wall_s existed
    # (or with it stripped) must load, just without a reuse figure.
    import json

    specs = _quick_cells(count=1)
    run_cells(specs, workers=1, cache=ResultCache(tmp_path))
    path = next(tmp_path.glob("*.json"))
    payload = json.loads(path.read_text())
    del payload["wall_s"]
    path.write_text(json.dumps(payload))
    timings: list[CellTiming] = []
    results = run_cells(
        specs, workers=1, cache=ResultCache(tmp_path), timings=timings
    )
    assert results[0]["t0"].rounds.count >= 0
    assert timings[0].source == "cache"
    assert timings[0].cached_wall_s == 0.0


def test_collector_captures_every_cell_once():
    from repro.obs.store import RunCollector, collecting

    cache = ResultCache()
    spec_a, spec_b = _quick_cells(count=2)
    collector = RunCollector("unit")
    with collecting(collector):
        run_cells([spec_a, spec_b, spec_a], workers=1, cache=cache)
    assert [cell["index"] for cell in collector.cells] == [0, 1, 2]
    sources = [cell["source"] for cell in collector.cells]
    assert sorted(sources) == ["dup", "run", "run"]
    assert collector.cells[0]["workloads"]["t0"]["metrics"]
    # A second farm call under the same collector sees cache hits.
    with collecting(collector):
        run_cells([spec_a], workers=1, cache=cache)
    assert collector.cells[-1]["source"] == "cache"
    assert collector.sim_time_us == 2 * 5_000.0


def test_progress_renderer_emits_plain_lines_when_not_a_tty(capsys):
    import io

    from repro.experiments.progress import CellProgress, progressing

    stream = io.StringIO()  # not a TTY -> plain line mode
    with progressing(CellProgress(stream)):
        run_cells(_quick_cells(count=2), workers=1)
    out = stream.getvalue()
    assert "cell[0] run" in out
    assert "cell[1] run" in out
    assert "2/2 cells" in out
    # Nothing leaks to stdout: tables stay byte-identical.
    assert capsys.readouterr().out == ""


def test_no_observers_is_the_default_and_free():
    from repro.experiments.progress import active_progress
    from repro.obs.store import active_collector

    assert active_collector() is None
    assert active_progress() is None
