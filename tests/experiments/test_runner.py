"""Tests for the experiment runner scaffolding."""

import pytest

from repro.experiments.runner import build_env, measure, run_workloads, solo_baseline
from repro.workloads.throttle import Throttle


def test_unknown_scheduler_rejected():
    with pytest.raises(KeyError, match="unknown scheduler"):
        build_env("no-such-scheduler")


def test_scheduler_instance_accepted():
    from repro.core.direct import DirectAccess

    env = build_env(DirectAccess())
    assert isinstance(env.scheduler, DirectAccess)


def test_measure_returns_result_per_workload():
    results = measure(
        "direct",
        [lambda: Throttle(50.0, name="a"), lambda: Throttle(100.0, name="b")],
        duration_us=20_000.0,
        warmup_us=2_000.0,
    )
    assert set(results) == {"a", "b"}
    for result in results.values():
        assert result.rounds.count > 0
        assert result.requests_submitted > 0
        assert not result.killed
        assert result.ground_truth_usage_us > 0


def test_solo_baseline_runs_direct():
    result = solo_baseline(
        lambda: Throttle(100.0), duration_us=20_000.0, warmup_us=2_000.0
    )
    assert 100.0 <= result.rounds.mean_us < 101.0


def test_trace_kinds_enable_recording():
    env = build_env("direct", trace_kinds=["request_submit"])
    workload = Throttle(100.0)
    run_workloads(env, [workload], 5_000.0, 0.0)
    assert len(env.trace) > 10
    assert all(r.kind == "request_submit" for r in env.trace.records())
