"""Tests for seed-sweep statistics and key results' seed stability."""

import pytest

from repro.experiments.runner import measure, solo_baseline, sweep_seeds
from repro.workloads.apps import make_app
from repro.workloads.throttle import Throttle


def test_sweep_statistics_math():
    stats = sweep_seeds(lambda seed: float(seed), seeds=(0, 1, 2), metric="id")
    assert stats.mean == pytest.approx(1.0)
    assert stats.minimum == 0.0
    assert stats.maximum == 2.0
    assert stats.std == pytest.approx((2.0 / 3.0) ** 0.5)
    assert stats.relative_spread == pytest.approx(2.0)


def test_constant_metric_has_zero_spread():
    stats = sweep_seeds(lambda seed: 5.0, seeds=(1, 2, 3))
    assert stats.std == 0.0
    assert stats.relative_spread == 0.0


def test_dfq_fairness_is_seed_stable():
    """The headline fairness number should not be a seed artifact."""

    def dct_slowdown(seed: int) -> float:
        base = solo_baseline(
            lambda: make_app("DCT"), 150_000.0, 30_000.0, seed
        )
        results = measure(
            "dfq",
            [lambda: make_app("DCT"), lambda: Throttle(500.0, name="thr")],
            150_000.0,
            30_000.0,
            seed,
        )
        return results["DCT"].rounds.mean_us / base.rounds.mean_us

    stats = sweep_seeds(dct_slowdown, seeds=(0, 1, 2), metric="DCT slowdown")
    assert 1.4 < stats.mean < 2.8
    assert stats.relative_spread < 0.5
