"""Tests for picklable cell/workload specs."""

import pickle

import pytest

from repro.experiments.cells import (
    CellSpec,
    WorkloadSpec,
    register_workload_kind,
)
from repro.experiments.runner import measure
from repro.workloads.apps import ProfiledApp
from repro.workloads.throttle import Throttle


def test_app_spec_builds_profiled_app():
    workload = WorkloadSpec.app("DCT").build()
    assert isinstance(workload, ProfiledApp)
    assert workload.name == "DCT"


def test_app_spec_instance_override():
    workload = WorkloadSpec.app("DCT", instance="dct-2").build()
    assert workload.name == "dct-2"


def test_throttle_spec_builds_throttle():
    workload = WorkloadSpec.throttle(19.0, sleep_ratio=0.4).build()
    assert isinstance(workload, Throttle)
    assert workload.request_size_us == 19.0
    assert workload.sleep_ratio == 0.4


def test_unknown_kind_rejected():
    with pytest.raises(KeyError, match="unknown workload kind"):
        WorkloadSpec.of("no-such-kind").build()


def test_register_workload_kind_roundtrip():
    register_workload_kind("tiny-throttle", lambda: Throttle(5.0))
    workload = WorkloadSpec.of("tiny-throttle").build()
    assert isinstance(workload, Throttle)


def test_reserved_kind_name_rejected():
    with pytest.raises(ValueError):
        register_workload_kind("__callable__", lambda: Throttle(5.0))


def test_callable_spec_is_serial_only():
    spec = WorkloadSpec.from_callable(lambda: Throttle(7.0))
    assert not spec.cacheable
    assert isinstance(spec.build(), Throttle)
    cell = CellSpec("direct", (spec,), 1_000.0, 0.0)
    assert not cell.cacheable
    with pytest.raises(ValueError):
        cell.content_key()


def test_cell_spec_pickles():
    cell = CellSpec(
        scheduler="dfq",
        workloads=(WorkloadSpec.app("DCT"), WorkloadSpec.throttle(19.0)),
        duration_us=10_000.0,
        warmup_us=1_000.0,
        seed=3,
    )
    clone = pickle.loads(pickle.dumps(cell))
    assert clone == cell
    assert clone.content_key() == cell.content_key()


def test_content_key_separates_configurations():
    base = CellSpec("direct", (WorkloadSpec.throttle(19.0),), 10_000.0, 0.0)
    keys = {
        base.content_key(),
        CellSpec("dfq", base.workloads, 10_000.0, 0.0).content_key(),
        CellSpec("direct", base.workloads, 20_000.0, 0.0).content_key(),
        CellSpec("direct", base.workloads, 10_000.0, 0.0, seed=1).content_key(),
        CellSpec(
            "direct", (WorkloadSpec.throttle(20.0),), 10_000.0, 0.0
        ).content_key(),
    }
    assert len(keys) == 5


def test_content_key_ignores_kwarg_order():
    a = WorkloadSpec.throttle(19.0, sleep_ratio=0.2, name="t")
    b = WorkloadSpec.throttle(19.0, name="t", sleep_ratio=0.2)
    assert a == b
    cell_a = CellSpec("direct", (a,), 1_000.0, 0.0)
    cell_b = CellSpec("direct", (b,), 1_000.0, 0.0)
    assert cell_a.content_key() == cell_b.content_key()


def test_cell_run_matches_measure():
    cell = CellSpec(
        scheduler="direct",
        workloads=(WorkloadSpec.throttle(50.0, name="a"),),
        duration_us=20_000.0,
        warmup_us=2_000.0,
    )
    direct = measure(
        "direct",
        [lambda: Throttle(50.0, name="a")],
        duration_us=20_000.0,
        warmup_us=2_000.0,
    )
    assert cell.run() == direct
