"""Smoke tests for the extension studies (sensitivity, CPU, breakdown,
preemption)."""

from repro.experiments import (
    cpu_contention,
    overhead_breakdown,
    preemption,
    sensitivity,
)

QUICK = dict(duration_us=150_000.0, warmup_us=30_000.0)


def test_sensitivity_all_settings_remain_fair():
    # The 100 ms timeslice point needs several slices of steady state.
    rows = sensitivity.run(duration_us=500_000.0, warmup_us=120_000.0)
    assert len(rows) == 9
    for row in rows:
        assert row.fair, f"{row.knob}={row.value} broke fairness"
        assert row.standalone_overhead < 0.12
    # Longer timeslices amortize re-engagement cost.
    ts_rows = sorted(
        (r for r in rows if r.knob == "timeslice_us"), key=lambda r: r.value
    )
    assert ts_rows[-1].standalone_overhead <= ts_rows[0].standalone_overhead + 0.01


def test_cpu_contention_polling_negligible():
    rows = cpu_contention.run(schedulers=("direct", "dfq"), **QUICK)
    by_name = {row.scheduler: row for row in rows}
    assert by_name["direct"].polling_cpu_us == 0.0
    assert by_name["dfq"].polling_cpu_us < 0.01 * QUICK["duration_us"]
    assert abs(by_name["dfq"].single_core_penalty) < 0.08


def test_breakdown_freerun_dominates():
    rows = overhead_breakdown.run(sizes=(19.0, 303.0), **QUICK)
    for row in rows:
        assert row.freerun_fraction > 0.6
        assert row.drain_wait_fraction < 0.15
        assert row.slowdown < 1.15


def test_preemption_long_requests():
    rows = preemption.run_long_requests(
        duration_us=250_000.0, warmup_us=50_000.0
    )
    with_preemption = [row for row in rows if row.preemption]
    without = [row for row in rows if not row.preemption]
    assert all(row.small_task_slowdown < 3.0 for row in with_preemption)
    assert all(row.long_task_slowdown < 3.5 for row in rows)
    # Preemption must actually be exercised for 1.5-slice requests.
    assert with_preemption and without
