"""Tests for the channel-discovery state machine."""

import pytest

from repro.neon.discovery import ChannelDiscovery, DiscoveryState, Vma, VmaKind


def test_initial_state():
    discovery = ChannelDiscovery(1)
    assert discovery.state is DiscoveryState.INIT
    assert not discovery.active


def test_full_setup_reaches_active():
    discovery = ChannelDiscovery(1)
    discovery.run_full_setup()
    assert discovery.state is DiscoveryState.ACTIVE
    assert discovery.active
    assert set(discovery.vmas) == set(VmaKind)


def test_partial_setup_is_not_active():
    discovery = ChannelDiscovery(1)
    discovery.observe_mmap(Vma.fresh(VmaKind.COMMAND_BUFFER, 1))
    assert discovery.state is DiscoveryState.PARTIAL
    discovery.observe_mmap(Vma.fresh(VmaKind.RING_BUFFER, 1))
    assert discovery.state is DiscoveryState.PARTIAL
    discovery.observe_mmap(Vma.fresh(VmaKind.CHANNEL_REGISTER, 1))
    assert discovery.state is DiscoveryState.ACTIVE


def test_duplicate_mapping_replaces():
    discovery = ChannelDiscovery(1)
    first = Vma.fresh(VmaKind.COMMAND_BUFFER, 1)
    second = Vma.fresh(VmaKind.COMMAND_BUFFER, 1)
    discovery.observe_mmap(first)
    discovery.observe_mmap(second)
    assert discovery.vmas[VmaKind.COMMAND_BUFFER] is second
    assert discovery.state is DiscoveryState.PARTIAL


def test_wrong_channel_rejected():
    discovery = ChannelDiscovery(1)
    with pytest.raises(ValueError):
        discovery.observe_mmap(Vma.fresh(VmaKind.RING_BUFFER, 2))


def test_munmap_invalidates():
    discovery = ChannelDiscovery(1)
    discovery.run_full_setup()
    discovery.observe_munmap(VmaKind.CHANNEL_REGISTER)
    assert discovery.state is DiscoveryState.PARTIAL
    discovery.observe_munmap(VmaKind.COMMAND_BUFFER)
    discovery.observe_munmap(VmaKind.RING_BUFFER)
    assert discovery.state is DiscoveryState.INIT


def test_vma_addresses_are_unique():
    a = Vma.fresh(VmaKind.RING_BUFFER, 1)
    b = Vma.fresh(VmaKind.RING_BUFFER, 1)
    assert a.address != b.address
