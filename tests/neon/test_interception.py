"""Tests for the interception manager: engagement, scans, drains."""

import math

import pytest

from repro.gpu.device import GpuDevice
from repro.gpu.request import Request, RequestKind
from repro.neon.interception import InterceptionManager
from repro.osmodel.costs import CostParams
from repro.osmodel.kernel import Kernel


@pytest.fixture
def wired(sim):
    device = GpuDevice(sim)
    kernel = Kernel(sim, device, CostParams())
    neon = InterceptionManager(kernel)
    return device, kernel, neon


def _channel(kernel, neon, name="app", kind=RequestKind.COMPUTE):
    task = kernel.create_task(name)
    context = kernel.open_context(task)
    channel = kernel.device.create_channel(context, kind)
    neon.track(channel)
    return task, channel


def _submit(device, channel, size):
    request = Request(channel.kind, size)
    device.submit(channel, request)
    return request


def _run_gen(sim, generator, until=100_000.0):
    box = {}

    def body():
        box["result"] = yield from generator
        box["time"] = sim.now

    sim.spawn(body())
    sim.run(until=until)
    return box


def test_engage_disengage_flip_counting(wired):
    device, kernel, neon = wired
    task, channel = _channel(kernel, neon)
    assert neon.engage_channel(channel) == 1
    assert neon.engage_channel(channel) == 0  # already protected
    assert neon.disengage_channel(channel) == 1
    assert neon.disengage_channel(channel) == 0


def test_engage_all_counts_only_transitions(wired):
    device, kernel, neon = wired
    _, channel_a = _channel(kernel, neon, "a")
    _, channel_b = _channel(kernel, neon, "b")
    neon.engage_channel(channel_a)
    assert neon.engage_all() == 1  # only b flips
    assert neon.flip_cost(2) == 2 * kernel.costs.page_flip_us


def test_engage_task_touches_only_its_channels(wired):
    device, kernel, neon = wired
    task_a, channel_a = _channel(kernel, neon, "a")
    task_b, channel_b = _channel(kernel, neon, "b")
    assert neon.engage_task(task_a) == 1
    assert channel_a.register_page.protected
    assert not channel_b.register_page.protected


def test_channels_of_filters_dead(wired):
    device, kernel, neon = wired
    task, channel = _channel(kernel, neon)
    assert neon.channels_of(task) == [channel]
    channel.dead = True
    assert neon.channels_of(task) == []


def test_scan_returns_last_submitted_ref(sim, wired):
    device, kernel, neon = wired
    task, channel = _channel(kernel, neon)
    _submit(device, channel, 10.0)
    _submit(device, channel, 10.0)
    box = _run_gen(sim, neon.scan_channel(channel))
    assert box["result"] == 2
    assert box["time"] == pytest.approx(kernel.costs.reengage_scan_us)
    assert neon.observation(channel).last_scanned_ref == 2


def test_drain_immediate_when_idle(sim, wired):
    device, kernel, neon = wired
    task, channel = _channel(kernel, neon)
    box = _run_gen(sim, neon.drain([channel]))
    assert box["result"].drained
    assert box["result"].offenders == []


def test_drain_waits_at_polling_granularity(sim, wired):
    device, kernel, neon = wired
    task, channel = _channel(kernel, neon)
    _submit(device, channel, 500.0)
    box = _run_gen(sim, neon.drain([channel]))
    result = box["result"]
    assert result.drained
    # Finished at ~500 but observed at the next polling pass.
    assert 500.0 <= box["time"] <= 500.0 + kernel.costs.poll_interval_us + 10.0


def test_drain_timeout_reports_offenders(sim, wired):
    device, kernel, neon = wired
    task, channel = _channel(kernel, neon)
    _submit(device, channel, math.inf)
    box = _run_gen(sim, neon.drain([channel], timeout_us=2_000.0))
    result = box["result"]
    assert not result.drained
    assert result.offenders == [channel]
    assert result.timed_out


def test_drain_all_tracked_channels_by_default(sim, wired):
    device, kernel, neon = wired
    _, channel_a = _channel(kernel, neon, "a")
    _, channel_b = _channel(kernel, neon, "b")
    _submit(device, channel_a, 100.0)
    _submit(device, channel_b, 200.0)
    box = _run_gen(sim, neon.drain())
    assert box["result"].drained


def test_identify_running_task(sim, wired):
    device, kernel, neon = wired
    task, channel = _channel(kernel, neon)
    _submit(device, channel, 1_000.0)
    sim.run(until=100.0)
    assert neon.identify_running_task() is task
    sim.run(until=5_000.0)
    assert neon.identify_running_task() is None


def test_record_and_estimate_sizes(wired):
    device, kernel, neon = wired
    task, channel = _channel(kernel, neon)
    assert neon.estimated_request_size(channel) is None
    neon.record_sampled_service(channel, 10.0)
    neon.record_sampled_service(channel, 30.0)
    assert neon.estimated_request_size(channel) == 20.0


def test_untrack_forgets_channel(wired):
    device, kernel, neon = wired
    task, channel = _channel(kernel, neon)
    neon.untrack(channel)
    assert neon.live_channels() == []
    assert neon.estimated_request_size(channel) is None
