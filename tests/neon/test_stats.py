"""Tests for observed statistics."""

import pytest

from repro.neon.stats import (
    ChannelObservations,
    ObservedServiceMeter,
    RequestSizeEstimator,
)


def test_estimator_mean_none_before_samples():
    assert RequestSizeEstimator().mean is None


def test_estimator_mean():
    estimator = RequestSizeEstimator()
    for value in (10.0, 20.0, 30.0):
        estimator.record(value)
    assert estimator.mean == 20.0
    assert estimator.sample_count == 3
    assert estimator.total_observed == 3


def test_estimator_window_evicts_oldest():
    estimator = RequestSizeEstimator(window=2)
    estimator.record(100.0)
    estimator.record(10.0)
    estimator.record(10.0)
    assert estimator.mean == 10.0
    assert estimator.total_observed == 3


def test_estimator_rejects_negative():
    with pytest.raises(ValueError):
        RequestSizeEstimator().record(-1.0)


def test_estimator_rejects_bad_window():
    with pytest.raises(ValueError):
        RequestSizeEstimator(window=0)


def test_meter_uses_submit_time_when_channel_was_idle():
    meter = ObservedServiceMeter()
    assert meter.measure(1, submit_time=10.0, observe_time=35.0) == 25.0


def test_meter_uses_previous_observation_when_queued():
    meter = ObservedServiceMeter()
    meter.measure(1, submit_time=0.0, observe_time=30.0)
    # Second request was submitted at 5 but could only start at 30.
    assert meter.measure(1, submit_time=5.0, observe_time=50.0) == 20.0


def test_meter_bounds_service_by_any_prior_observation():
    """The main engine serializes requests: a completion observed on one
    channel bounds when the next request (any channel) can have started."""
    meter = ObservedServiceMeter()
    meter.measure(1, 0.0, 100.0)
    # Submitted at 0 but could only start after the 100-observation.
    assert meter.measure(2, 0.0, 130.0) == 30.0


def test_meter_clamps_tiny_services():
    meter = ObservedServiceMeter()
    assert meter.measure(1, 10.0, 10.0) == pytest.approx(0.05)


def test_channel_observations_engagement_marks():
    observations = ChannelObservations(7)
    assert observations.completed_since_last_engagement(5) == 5
    observations.mark_engagement(5)
    assert observations.completed_since_last_engagement(5) == 0
    assert observations.completed_since_last_engagement(9) == 4
