"""Tests for table formatting."""

from repro.metrics.tables import format_table


def test_alignment_and_title():
    text = format_table(["a", "bb"], [[1, 2.5], ["xyz", float("nan")]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "xyz" in lines[4]
    assert "-" in lines[4]  # NaN rendered as dash


def test_float_formatting():
    text = format_table(["v"], [[3.14159], [123.456]])
    assert "3.14" in text
    assert "123" in text and "123.46" not in text


def test_no_title():
    text = format_table(["x"], [[1]])
    assert text.splitlines()[0].strip() == "x"
