"""Tests for the concurrency-efficiency metric."""

import math

import pytest

from repro.metrics.efficiency import concurrency_efficiency


def test_no_loss_sums_to_one():
    # Two tasks each slowed exactly 2x: shares sum to 1.0.
    assert concurrency_efficiency([(100.0, 200.0), (50.0, 100.0)]) == pytest.approx(1.0)


def test_loss_below_one():
    assert concurrency_efficiency([(100.0, 300.0), (100.0, 300.0)]) < 1.0


def test_synergy_above_one():
    # Overlapped DMA/compute can beat standalone serialization.
    assert concurrency_efficiency([(100.0, 150.0), (100.0, 150.0)]) > 1.0


def test_nan_propagates():
    assert math.isnan(concurrency_efficiency([(float("nan"), 1.0)]))
    assert math.isnan(concurrency_efficiency([(1.0, 0.0)]))
