"""Tests for CDF utilities."""

import math

import pytest

from repro.metrics.cdf import Cdf, log2_bin_histogram


def test_fraction_below():
    cdf = Cdf([1.0, 5.0, 10.0, 20.0])
    assert cdf.fraction_below(10.0) == 0.5
    assert cdf.fraction_below(100.0) == 1.0
    assert cdf.fraction_below(0.5) == 0.0


def test_quantiles():
    cdf = Cdf(range(100))
    assert cdf.quantile(0.0) == 0.0
    assert cdf.quantile(0.5) == 50.0
    assert cdf.quantile(1.0) == 99.0


def test_quantile_bounds():
    with pytest.raises(ValueError):
        Cdf([1.0]).quantile(1.5)


def test_negative_samples_rejected():
    with pytest.raises(ValueError):
        Cdf([-1.0])


def test_empty_cdf_is_nan():
    cdf = Cdf([])
    assert math.isnan(cdf.fraction_below(1.0))
    assert math.isnan(cdf.quantile(0.5))


def test_log2_bins_cumulative():
    # 1us -> bin 0; 2us -> bin 1; 1000us -> bin 9.
    bins = log2_bin_histogram([1.0, 2.0, 1000.0], max_bin=10)
    assert bins[0] == pytest.approx(100.0 / 3)
    assert bins[1] == pytest.approx(200.0 / 3)
    assert bins[8] == pytest.approx(200.0 / 3)
    assert bins[9] == pytest.approx(100.0)
    assert bins[10] == pytest.approx(100.0)


def test_log2_bins_clamp_submicrosecond_and_huge():
    bins = log2_bin_histogram([0.1, 1e9], max_bin=5)
    assert bins[0] == pytest.approx(50.0)
    assert bins[5] == pytest.approx(100.0)


def test_log2_bins_empty_is_nan():
    assert all(math.isnan(value) for value in log2_bin_histogram([]))


def test_log2_bins_monotonic():
    bins = log2_bin_histogram([3.0, 9.0, 70.0, 500.0])
    assert all(a <= b + 1e-9 for a, b in zip(bins, bins[1:]))
