"""Tests for fairness metrics."""

import math

import pytest

from repro.metrics.fairness import jain_index, max_slowdown_ratio


def test_jain_perfectly_fair():
    assert jain_index([1.0, 1.0, 1.0]) == pytest.approx(1.0)


def test_jain_maximally_unfair():
    assert jain_index([1.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)


def test_jain_scale_invariant():
    assert jain_index([2.0, 4.0]) == pytest.approx(jain_index([1.0, 2.0]))


def test_jain_empty_is_nan():
    assert math.isnan(jain_index([]))


def test_max_slowdown_ratio_even():
    assert max_slowdown_ratio([2.0, 2.0]) == 1.0


def test_max_slowdown_ratio_uneven():
    assert max_slowdown_ratio([2.0, 6.0]) == 3.0


def test_max_slowdown_ratio_ignores_nan():
    assert max_slowdown_ratio([2.0, float("nan"), 4.0]) == 2.0


def test_max_slowdown_ratio_empty_is_nan():
    assert math.isnan(max_slowdown_ratio([]))


def test_jain_single_tenant_is_fair():
    assert jain_index([7.5]) == pytest.approx(1.0)


def test_jain_all_zero_is_nan():
    assert math.isnan(jain_index([0.0, 0.0, 0.0]))


def test_jain_ignores_negative_shares():
    assert jain_index([-1.0, 2.0, 2.0]) == pytest.approx(1.0)


def test_jain_lower_bound_is_one_over_n():
    n = 8
    shares = [1.0] + [0.0] * (n - 1)
    assert jain_index(shares) == pytest.approx(1.0 / n)
