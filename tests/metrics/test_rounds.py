"""Tests for round statistics."""

import math

import pytest

from repro.metrics.rounds import RoundLog, RoundStats


def test_record_and_stats():
    log = RoundLog()
    for start, end in [(0, 10), (10, 30), (30, 40)]:
        log.record(float(start), float(end))
    stats = log.stats()
    assert stats.count == 3
    assert stats.mean_us == pytest.approx(40.0 / 3)
    assert stats.median_us == 10.0


def test_invalid_round_rejected():
    log = RoundLog()
    with pytest.raises(ValueError):
        log.record(10.0, 5.0)


def test_warmup_window_filters_by_completion():
    log = RoundLog()
    log.record(0.0, 50.0)
    log.record(50.0, 150.0)
    stats = log.stats(warmup_us=100.0)
    assert stats.count == 1
    assert stats.mean_us == 100.0


def test_until_filters_late_rounds():
    log = RoundLog()
    log.record(0.0, 50.0)
    log.record(50.0, 150.0)
    stats = log.stats(until_us=100.0)
    assert stats.count == 1


def test_empty_stats_are_nan():
    stats = RoundLog().stats()
    assert stats.count == 0
    assert math.isnan(stats.mean_us)


def test_slowdown_vs_baseline():
    fast = RoundStats.from_durations([10.0, 10.0])
    slow = RoundStats.from_durations([30.0, 30.0])
    assert slow.slowdown_vs(fast) == 3.0
    assert math.isnan(slow.slowdown_vs(RoundStats.from_durations([])))


def test_p95():
    durations = [float(i) for i in range(1, 101)]
    stats = RoundStats.from_durations(durations)
    assert stats.p95_us == 96.0
