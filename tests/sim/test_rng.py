"""Tests for named seeded random streams."""

import numpy as np

from repro.sim.rng import RngRegistry


def test_same_seed_same_name_same_stream():
    a = RngRegistry(7).stream("x").random(10)
    b = RngRegistry(7).stream("x").random(10)
    assert np.array_equal(a, b)


def test_different_names_differ():
    registry = RngRegistry(7)
    a = registry.stream("x").random(10)
    b = registry.stream("y").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random(10)
    b = RngRegistry(2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    registry = RngRegistry(0)
    assert registry.stream("x") is registry.stream("x")


def test_creation_order_does_not_matter():
    forward = RngRegistry(3)
    forward.stream("a")
    a_then = forward.stream("b").random(5)

    backward = RngRegistry(3)
    backward.stream("b")
    b_only = backward.stream("b").random(5)
    assert np.array_equal(a_then, b_only)


def test_contains():
    registry = RngRegistry(0)
    assert "x" not in registry
    registry.stream("x")
    assert "x" in registry
