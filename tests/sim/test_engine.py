"""Tests for the discrete-event simulator core."""

import pytest

from repro.sim.engine import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0


def test_schedule_runs_in_time_order(sim):
    order = []
    sim.schedule(5.0, order.append, "b")
    sim.schedule(1.0, order.append, "a")
    sim.schedule(9.0, order.append, "c")
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_run_fifo(sim):
    order = []
    for label in "abcde":
        sim.schedule(3.0, order.append, label)
    sim.run()
    assert order == list("abcde")


def test_clock_advances_to_event_time(sim):
    seen = []
    sim.schedule(7.25, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [7.25]
    assert sim.now == 7.25


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected(sim):
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1.0, lambda: None)


def test_cancel_prevents_callback(sim):
    fired = []
    handle = sim.schedule(2.0, fired.append, "x")
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_after_fire_is_noop(sim):
    fired = []
    handle = sim.schedule(2.0, fired.append, "x")
    sim.run()
    handle.cancel()
    assert fired == ["x"]


def test_run_until_stops_clock_exactly(sim):
    sim.schedule(3.0, lambda: None)
    sim.schedule(100.0, lambda: None)
    sim.run(until=50.0)
    assert sim.now == 50.0
    assert sim.pending_events == 1


def test_run_until_is_resumable(sim):
    order = []
    sim.schedule(3.0, order.append, "a")
    sim.schedule(70.0, order.append, "b")
    sim.run(until=50.0)
    assert order == ["a"]
    sim.run(until=100.0)
    assert order == ["a", "b"]


def test_run_until_advances_idle_clock(sim):
    sim.run(until=123.0)
    assert sim.now == 123.0


def test_callbacks_can_schedule_more_work(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(1.0, lambda: order.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert order == ["first", "second"]


def test_pending_events_excludes_cancelled(sim):
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_events == 1
    assert not keep.cancelled


def test_run_not_reentrant(sim):
    def nested():
        with pytest.raises(RuntimeError):
            sim.run()

    sim.schedule(1.0, nested)
    sim.run()


def test_step_returns_false_when_idle(sim):
    assert sim.step() is False


def test_heap_stays_bounded_under_schedule_cancel_loop(sim):
    # The watchdog/polling pattern: schedule a deadline, cancel it, repeat.
    # Without compaction every cancelled handle lingers until popped.
    for _ in range(10_000):
        sim.schedule(1_000_000.0, lambda: None).cancel()
    assert sim.pending_events == 0
    assert sim.queued_entries <= 2 * sim.COMPACT_MIN_CANCELLED


def test_compaction_preserves_execution_order(sim):
    order = []
    handles = []
    # Interleave live and doomed callbacks, then cancel enough to compact.
    for index in range(200):
        sim.schedule(float(index), order.append, index)
        handles.append(sim.schedule(float(index) + 0.5, order.append, -index))
    for handle in handles:
        handle.cancel()
    assert sim.queued_entries < 300  # compaction ran
    sim.run()
    assert order == list(range(200))


def test_pending_events_constant_time_accounting(sim):
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending_events == 10
    handles[3].cancel()
    handles[7].cancel()
    assert sim.pending_events == 8
    handles[3].cancel()  # double-cancel must not double-count
    assert sim.pending_events == 8
    sim.run()
    assert sim.pending_events == 0


def test_cancel_after_fire_does_not_corrupt_count(sim):
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run(until=1.5)
    handle.cancel()  # already fired: no effect on heap accounting
    assert sim.pending_events == 1
    sim.run()
    assert sim.pending_events == 0


def test_independent_simulators_do_not_interact():
    sim_a = Simulator()
    sim_b = Simulator()
    sim_a.schedule(5.0, lambda: None)
    sim_b.run()
    assert sim_b.now == 0.0
    assert sim_a.pending_events == 1
