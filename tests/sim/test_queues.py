"""Property tests: the event-queue backends are order-equivalent.

The calendar queue must pop in exactly the heap backend's ``(time, seq)``
order under arbitrary schedule/cancel traces — including zero-delay
chains (the FIFO lane), same-instant ties, cancellations from inside
callbacks, and compaction.  The traces here are randomized but seeded:
every backend replays the identical program, so any divergence is a real
ordering bug, not test noise.
"""

import itertools

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.queues import (
    COMPACT_MIN_CANCELLED,
    CalendarEventQueue,
    HeapEventQueue,
    make_queue,
)

BACKENDS = ("heap", "calendar")


def _replay_random_program(backend: str, seed: int, n: int = 300):
    """Run a deterministic pseudo-random schedule/cancel program.

    Callbacks fire, log ``(now, index)``, and — steered by a shared
    pre-drawn table — spawn zero-delay work, spawn delayed work, or
    cancel the oldest still-pending handle.  Returns the firing log plus
    final clock state.
    """
    rng = np.random.default_rng(seed)
    delays = np.round(rng.uniform(0.0, 50.0, n), 1)  # coarse → many ties
    delays[rng.random(n) < 0.2] = 0.0
    modes = rng.integers(0, 4, size=4 * n)
    spawn_limit = 4 * n

    sim = Simulator(queue=backend)
    log = []
    handles = {}
    counter = itertools.count(n)

    def make_callback(index):
        def callback():
            log.append((sim.now, index))
            handles.pop(index, None)
            mode = modes[index % len(modes)]
            if mode == 0:
                child = next(counter)
                if child < spawn_limit:
                    handles[child] = sim.schedule(0.0, make_callback(child))
            elif mode == 1:
                child = next(counter)
                if child < spawn_limit:
                    handles[child] = sim.schedule(
                        float(delays[child % n]), make_callback(child)
                    )
            elif mode == 2 and handles:
                oldest = min(handles)
                handles.pop(oldest).cancel()

        return callback

    for index in range(n):
        handles[index] = sim.schedule(float(delays[index]), make_callback(index))
    for index in range(0, n, 7):  # up-front cancellations
        handle = handles.pop(index, None)
        if handle is not None:
            handle.cancel()

    sim.run(until=40.0)  # leave some events pending past the limit
    mid = (sim.now, sim.pending_events, list(log))
    sim.run()
    return mid, (sim.now, sim.pending_events, log)


@pytest.mark.parametrize("seed", range(8))
def test_backends_pop_identical_order(seed):
    reference = _replay_random_program("heap", seed)
    candidate = _replay_random_program("calendar", seed)
    assert candidate == reference


def test_zero_delay_chains_are_fifo_across_backends():
    for backend in BACKENDS:
        sim = Simulator(queue=backend)
        order = []

        def chain(label, depth=0, sim=sim, order=order):
            order.append(label)
            if depth < 3:
                sim.schedule(0.0, chain, f"{label}.{depth}", depth + 1)

        sim.schedule(1.0, chain, "a")
        sim.schedule(1.0, chain, "b")
        sim.run()
        assert order == [
            "a", "b",
            "a.0", "b.0", "a.0.1", "b.0.1", "a.0.1.2", "b.0.1.2",
        ], backend


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancel_inside_callback_suppresses_same_instant_entry(backend):
    sim = Simulator(queue=backend)
    fired = []
    # FIFO tie-break: a same-instant canceller scheduled *after* the
    # victim runs too late; one scheduled *before* it must suppress it.
    victim = sim.schedule(5.0, fired.append, "victim")
    sim.schedule(5.0, victim.cancel)
    sim.run()
    assert fired == ["victim"]  # canceller ran after the victim

    sim = Simulator(queue=backend)
    fired = []
    holder = {}
    sim.schedule(5.0, lambda: holder["victim"].cancel())
    holder["victim"] = sim.schedule(5.0, fired.append, "victim")
    sim.run()
    assert fired == []  # canceller ran first


@pytest.mark.parametrize("backend", BACKENDS)
def test_compaction_bounds_queue_growth(backend):
    sim = Simulator(queue=backend)
    for _ in range(5_000):
        sim.schedule(1_000.0, lambda: None).cancel()
    assert sim.pending_events == 0
    assert sim.queued_entries <= 2 * COMPACT_MIN_CANCELLED


def test_make_queue_rejects_unknown_backend():
    with pytest.raises(ValueError, match="unknown event-queue backend"):
        make_queue("btree")


def test_backend_classes_expose_names():
    assert HeapEventQueue.name == "heap"
    assert CalendarEventQueue.name == "calendar"
    assert isinstance(make_queue("heap"), HeapEventQueue)
    assert isinstance(make_queue("calendar"), CalendarEventQueue)


@pytest.mark.parametrize("backend", BACKENDS)
def test_run_until_leaves_future_entries_queued(backend):
    sim = Simulator(queue=backend)
    fired = []
    sim.schedule(10.0, fired.append, "early")
    sim.schedule(99.0, fired.append, "late")
    sim.run(until=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    assert sim.pending_events == 1
    sim.run()
    assert fired == ["early", "late"]
