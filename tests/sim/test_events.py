"""Tests for one-shot events and composite conditions."""

import pytest

from repro.sim.events import AnyOf, Event


def test_trigger_delivers_value_to_callbacks(sim):
    event = sim.event()
    seen = []
    event.add_callback(lambda ev: seen.append(ev.value))
    event.trigger(42)
    sim.run()
    assert seen == [42]


def test_trigger_twice_raises(sim):
    event = sim.event()
    event.trigger()
    with pytest.raises(RuntimeError):
        event.trigger()


def test_callback_added_after_trigger_still_fires(sim):
    event = sim.event()
    event.trigger("late")
    seen = []
    event.add_callback(lambda ev: seen.append(ev.value))
    sim.run()
    assert seen == ["late"]


def test_callbacks_fire_at_trigger_time_not_add_time(sim):
    event = sim.event()
    times = []
    event.add_callback(lambda ev: times.append(sim.now))
    sim.schedule(10.0, event.trigger)
    sim.run()
    assert times == [10.0]


def test_discard_callback_prevents_fire(sim):
    event = sim.event()
    seen = []
    callback = lambda ev: seen.append(1)
    event.add_callback(callback)
    event.discard_callback(callback)
    event.trigger()
    sim.run()
    assert seen == []


def test_discard_unknown_callback_is_noop(sim):
    event = sim.event()
    event.discard_callback(lambda ev: None)


def test_multiple_callbacks_all_fire(sim):
    event = sim.event()
    seen = []
    for index in range(3):
        event.add_callback(lambda ev, index=index: seen.append(index))
    event.trigger()
    sim.run()
    assert seen == [0, 1, 2]


def test_anyof_requires_events(sim):
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_anyof_fires_on_first_member(sim):
    a, b = sim.event(), sim.event()
    composite = AnyOf(sim, [a, b])
    winners = []
    composite.proxy.add_callback(lambda ev: winners.append(ev.value))
    sim.schedule(5.0, b.trigger)
    sim.schedule(9.0, a.trigger)
    sim.run()
    assert winners == [b]


def test_anyof_ignores_later_triggers(sim):
    a, b = sim.event(), sim.event()
    composite = AnyOf(sim, [a, b])
    winners = []
    composite.proxy.add_callback(lambda ev: winners.append(ev.value))
    a.trigger()
    b.trigger()
    sim.run()
    assert winners == [a]


def test_anyof_with_pretriggered_member(sim):
    a, b = sim.event(), sim.event()
    a.trigger("already")
    composite = AnyOf(sim, [a, b])
    winners = []
    composite.proxy.add_callback(lambda ev: winners.append(ev.value))
    sim.run()
    assert winners == [a]


def test_event_is_not_triggered_initially(sim):
    event = Event(sim)
    assert not event.triggered
    assert event.value is None
