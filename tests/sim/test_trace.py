"""Tests for trace recording."""

from repro.sim.trace import NullRecorder, TraceRecorder


def test_emit_and_query():
    recorder = TraceRecorder()
    recorder.emit(1.0, "gpu", "submit", ref=1)
    recorder.emit(2.0, "gpu", "complete", ref=1)
    recorder.emit(3.0, "kernel", "submit", ref=2)
    assert len(recorder) == 3
    submits = list(recorder.records(kind="submit"))
    assert [r.time for r in submits] == [1.0, 3.0]
    gpu_records = list(recorder.records(source="gpu"))
    assert len(gpu_records) == 2
    both = list(recorder.records(kind="submit", source="kernel"))
    assert len(both) == 1
    assert both[0].payload == {"ref": 2}


def test_kind_filter_drops_at_emission():
    recorder = TraceRecorder(kinds=["keep"])
    recorder.emit(1.0, "x", "keep")
    recorder.emit(2.0, "x", "drop")
    assert len(recorder) == 1


def test_null_recorder_drops_everything():
    recorder = NullRecorder()
    recorder.emit(1.0, "x", "anything")
    assert len(recorder) == 0


def test_clear():
    recorder = TraceRecorder()
    recorder.emit(1.0, "x", "k")
    recorder.clear()
    assert len(recorder) == 0


def test_records_are_frozen():
    recorder = TraceRecorder()
    recorder.emit(1.0, "x", "k", a=1)
    record = next(recorder.records())
    assert record.time == 1.0
    assert record.source == "x"
    assert record.kind == "k"
    assert record.payload["a"] == 1
