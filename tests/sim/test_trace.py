"""Tests for trace recording."""

from repro.sim.trace import NullRecorder, TraceRecorder


def test_emit_and_query():
    recorder = TraceRecorder()
    recorder.emit(1.0, "gpu", "submit", ref=1)
    recorder.emit(2.0, "gpu", "complete", ref=1)
    recorder.emit(3.0, "kernel", "submit", ref=2)
    assert len(recorder) == 3
    submits = list(recorder.records(kind="submit"))
    assert [r.time for r in submits] == [1.0, 3.0]
    gpu_records = list(recorder.records(source="gpu"))
    assert len(gpu_records) == 2
    both = list(recorder.records(kind="submit", source="kernel"))
    assert len(both) == 1
    assert both[0].payload == {"ref": 2}


def test_kind_filter_drops_at_emission():
    recorder = TraceRecorder(kinds=["keep"])
    recorder.emit(1.0, "x", "keep")
    recorder.emit(2.0, "x", "drop")
    assert len(recorder) == 1


def test_null_recorder_drops_everything():
    recorder = NullRecorder()
    recorder.emit(1.0, "x", "anything")
    assert len(recorder) == 0


def test_clear():
    recorder = TraceRecorder()
    recorder.emit(1.0, "x", "k")
    recorder.clear()
    assert len(recorder) == 0


def test_records_are_frozen():
    recorder = TraceRecorder()
    recorder.emit(1.0, "x", "k", a=1)
    record = next(recorder.records())
    assert record.time == 1.0
    assert record.source == "x"
    assert record.kind == "k"
    assert record.payload["a"] == 1


def test_ring_buffer_caps_and_counts_drops():
    recorder = TraceRecorder(max_records=3)
    for i in range(5):
        recorder.emit(float(i), "x", "k", i=i)
    assert len(recorder) == 3
    assert recorder.dropped == 2
    # Oldest records were evicted: only the newest three remain.
    assert [r.time for r in recorder.records()] == [2.0, 3.0, 4.0]


def test_kind_filter_rejects_do_not_count_as_drops():
    recorder = TraceRecorder(kinds=["keep"], max_records=2)
    recorder.emit(1.0, "x", "drop")
    recorder.emit(2.0, "x", "keep")
    assert recorder.dropped == 0
    recorder.emit(3.0, "x", "keep")
    recorder.emit(4.0, "x", "keep")
    assert recorder.dropped == 1


def test_invalid_cap_rejected():
    import pytest

    with pytest.raises(ValueError):
        TraceRecorder(max_records=0)


def test_records_time_window_is_inclusive():
    recorder = TraceRecorder()
    for t in (1.0, 2.0, 3.0, 4.0):
        recorder.emit(t, "x", "k")
    window = [r.time for r in recorder.records(start_us=2.0, end_us=3.0)]
    assert window == [2.0, 3.0]


def test_records_kinds_filter():
    recorder = TraceRecorder()
    recorder.emit(1.0, "x", "a")
    recorder.emit(2.0, "x", "b")
    recorder.emit(3.0, "x", "c")
    picked = [r.kind for r in recorder.records(kinds=("a", "c"))]
    assert picked == ["a", "c"]


def test_kind_counts_and_span():
    recorder = TraceRecorder()
    assert recorder.span_us == (0.0, 0.0)
    recorder.emit(5.0, "x", "a")
    recorder.emit(7.0, "x", "b")
    recorder.emit(9.0, "x", "a")
    assert recorder.kind_counts() == {"a": 2, "b": 1}
    assert recorder.span_us == (5.0, 9.0)


def test_clear_resets_dropped():
    recorder = TraceRecorder(max_records=1)
    recorder.emit(1.0, "x", "k")
    recorder.emit(2.0, "x", "k")
    assert recorder.dropped == 1
    recorder.clear()
    assert len(recorder) == 0
    assert recorder.dropped == 0


# ----------------------------------------------------------------------
# Live sinks (streaming observability)
# ----------------------------------------------------------------------

def test_sink_receives_every_emitted_record():
    recorder = TraceRecorder()
    seen = []
    recorder.add_sink(seen.append)
    recorder.emit(1.0, "x", "a", i=1)
    recorder.emit(2.0, "x", "b", i=2)
    assert [(r.time, r.kind) for r in seen] == [(1.0, "a"), (2.0, "b")]


def test_sink_sees_records_the_ring_buffer_evicts():
    recorder = TraceRecorder(max_records=2)
    seen = []
    recorder.add_sink(seen.append)
    for i in range(10):
        recorder.emit(float(i), "x", "k", i=i)
    assert len(recorder) == 2
    assert recorder.dropped == 8
    # The sink saw the full stream regardless of eviction.
    assert [r.time for r in seen] == [float(i) for i in range(10)]


def test_sink_respects_kind_filter():
    recorder = TraceRecorder(kinds=["keep"])
    seen = []
    recorder.add_sink(seen.append)
    recorder.emit(1.0, "x", "drop")
    recorder.emit(2.0, "x", "keep")
    assert [r.kind for r in seen] == ["keep"]


def test_retain_false_fans_out_without_buffering():
    recorder = TraceRecorder(retain=False)
    seen = []
    recorder.add_sink(seen.append)
    for i in range(5):
        recorder.emit(float(i), "x", "k")
    assert len(recorder) == 0
    assert recorder.dropped == 0
    assert len(seen) == 5


def test_append_delivers_to_sinks_too():
    source = TraceRecorder()
    source.emit(1.0, "x", "k")
    record = next(source.records())
    sinked = TraceRecorder()
    seen = []
    sinked.add_sink(seen.append)
    sinked.append(record)
    assert seen == [record]
    assert len(sinked) == 1


def test_remove_sink_stops_delivery():
    recorder = TraceRecorder()
    seen = []
    recorder.add_sink(seen.append)
    recorder.emit(1.0, "x", "k")
    recorder.remove_sink(seen.append)
    recorder.emit(2.0, "x", "k")
    assert len(seen) == 1


def test_add_sink_rejects_non_callable():
    import pytest

    recorder = TraceRecorder()
    with pytest.raises(TypeError):
        recorder.add_sink("not callable")
