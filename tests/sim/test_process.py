"""Tests for generator-based processes."""

import pytest

from repro.sim.events import AnyOf
from repro.sim.process import ProcessCrashed, ProcessKilled


def callbacks(event):
    return len(event._callbacks)


def test_timeout_yields_resume_later(sim):
    log = []

    def body():
        log.append(sim.now)
        yield 5.0
        log.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert log == [0.0, 5.0]


def test_event_yield_receives_trigger_value(sim):
    event = sim.event()
    got = []

    def body():
        value = yield event
        got.append(value)

    sim.spawn(body())
    sim.schedule(3.0, event.trigger, "payload")
    sim.run()
    assert got == ["payload"]


def test_join_returns_child_value(sim):
    def child():
        yield 2.0
        return "result"

    got = []

    def parent():
        value = yield sim.spawn(child())
        got.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert got == [(2.0, "result")]


def test_join_already_finished_process(sim):
    def child():
        yield 1.0
        return 7

    child_proc = sim.spawn(child())

    def parent():
        yield 10.0
        value = yield child_proc
        return value

    parent_proc = sim.spawn(parent())
    sim.run()
    assert parent_proc.return_value == 7


def test_anyof_yield_returns_winner(sim):
    a, b = sim.event(), sim.event()
    got = []

    def body():
        winner = yield AnyOf(sim, [a, b])
        got.append(winner)

    sim.spawn(body())
    sim.schedule(1.0, b.trigger)
    sim.run()
    assert got == [b]


def test_kill_terminates_process(sim):
    progressed = []

    def body():
        yield 100.0
        progressed.append(True)

    process = sim.spawn(body())
    sim.schedule(5.0, process.kill)
    sim.run()
    assert progressed == []
    assert process.killed
    assert not process.alive


def test_kill_reason_reaches_generator(sim):
    reasons = []

    def body():
        try:
            yield 100.0
        except ProcessKilled as exc:
            reasons.append(exc.reason)
            raise

    process = sim.spawn(body())
    sim.schedule(1.0, process.kill, "testing")
    sim.run()
    assert reasons == ["testing"]
    assert process.killed


def test_generator_may_survive_kill_by_catching(sim):
    log = []

    def body():
        try:
            yield 100.0
        except ProcessKilled:
            log.append("caught")
        yield 5.0
        log.append("continued")

    process = sim.spawn(body())
    sim.schedule(1.0, process.kill)
    sim.run()
    assert log == ["caught", "continued"]
    assert process.alive is False
    assert process.killed is False  # it ran to normal completion


def test_kill_before_first_step(sim):
    log = []

    def body():
        log.append("ran")
        yield 1.0

    process = sim.spawn(body())
    process.kill()
    sim.run()
    assert process.killed


def test_kill_finished_process_is_noop(sim):
    def body():
        yield 1.0
        return "done"

    process = sim.spawn(body())
    sim.run()
    process.kill()
    assert not process.killed
    assert process.return_value == "done"


def test_done_event_fires_with_return_value(sim):
    def body():
        yield 1.0
        return 99

    process = sim.spawn(body())
    values = []
    process.done.add_callback(lambda ev: values.append(ev.value))
    sim.run()
    assert values == [99]


def test_unsupported_yield_raises_type_error(sim):
    def body():
        yield "nonsense"

    sim.spawn(body())
    with pytest.raises(TypeError):
        sim.run()


def test_stale_timer_does_not_resume_killed_process(sim):
    log = []

    def body():
        try:
            yield 10.0
        except ProcessKilled:
            log.append("killed")
            raise
        log.append("resumed")

    process = sim.spawn(body())
    sim.schedule(5.0, process.kill)
    sim.run()
    assert log == ["killed"]


def test_kill_while_waiting_on_event_leaves_no_stale_callback(sim):
    event = sim.event()

    def body():
        yield event

    process = sim.spawn(body())
    sim.schedule(5.0, process.kill)
    sim.run()
    assert process.killed
    assert callbacks(event) == 0
    # The long-lived event can still trigger without scheduling dead wakeups.
    before = sim.pending_events
    event.trigger("late")
    assert sim.pending_events == before


def test_repeated_kill_while_waiting_does_not_accumulate_callbacks(sim):
    # The long-running, kill-heavy pattern: many short-lived waiters on
    # one long-lived event.  Each kill must fully withdraw its waiter.
    event = sim.event()

    def waiter():
        yield event

    def killer():
        for _ in range(50):
            victim = sim.spawn(waiter())
            yield 1.0
            victim.kill()
        yield 1.0

    sim.spawn(killer())
    sim.run()
    assert callbacks(event) == 0


def test_kill_while_waiting_on_anyof_detaches_members_and_proxy(sim):
    a, b = sim.event(), sim.event()
    condition = AnyOf(sim, [a, b])

    def body():
        yield condition

    process = sim.spawn(body())
    sim.schedule(5.0, process.kill)
    sim.run()
    assert process.killed
    assert callbacks(a) == 0
    assert callbacks(b) == 0
    assert callbacks(condition.proxy) == 0
    # Members triggering later must not fire the proxy or wake anything.
    a.trigger()
    sim.run()
    assert not condition.proxy.triggered


def test_anyof_winner_detaches_losing_members(sim):
    a, b, c = sim.event(), sim.event(), sim.event()

    def body():
        yield AnyOf(sim, [a, b, c])

    sim.spawn(body())
    sim.schedule(1.0, b.trigger)
    sim.run()
    assert callbacks(a) == 0
    assert callbacks(c) == 0


def test_kill_while_joining_removes_done_callback(sim):
    def sleeper():
        yield 100.0

    child = sim.spawn(sleeper())

    def parent():
        yield child

    process = sim.spawn(parent())
    sim.schedule(5.0, process.kill)
    sim.run(until=50.0)
    assert process.killed
    assert callbacks(child.done) == 0


def test_generator_exception_chains_process_name_and_time(sim):
    def body():
        yield 7.5
        raise ValueError("boom")

    process = sim.spawn(body(), name="crasher")
    with pytest.raises(ProcessCrashed) as excinfo:
        sim.run()
    assert excinfo.value.process_name == "crasher"
    assert excinfo.value.at_us == 7.5
    assert "crasher" in str(excinfo.value)
    assert "7.5" in str(excinfo.value)
    assert isinstance(excinfo.value.__cause__, ValueError)
    assert not process.alive


def test_crashed_process_is_dead_but_not_killed(sim):
    def body():
        yield 1.0
        raise RuntimeError("bug")

    process = sim.spawn(body())
    with pytest.raises(ProcessCrashed):
        sim.run()
    assert not process.alive
    assert not process.killed


def test_two_processes_interleave(sim):
    log = []

    def ticker(name, period):
        for _ in range(3):
            yield period
            log.append((name, sim.now))

    sim.spawn(ticker("fast", 1.0))
    sim.spawn(ticker("slow", 2.5))
    sim.run()
    assert log == [
        ("fast", 1.0),
        ("fast", 2.0),
        ("slow", 2.5),
        ("fast", 3.0),
        ("slow", 5.0),
        ("slow", 7.5),
    ]
