"""Tests for trace-driven workloads."""

import numpy as np
import pytest

from repro.experiments.runner import build_env, run_workloads
from repro.gpu.request import RequestKind
from repro.workloads.traces import (
    TraceEntry,
    TraceWorkload,
    load_trace_csv,
    save_trace_csv,
    synthesize_poisson_trace,
)


def _simple_trace():
    return [
        TraceEntry(0.0, 50.0),
        TraceEntry(100.0, 50.0),
        TraceEntry(200.0, 50.0),
    ]


def test_open_loop_submits_at_recorded_times():
    env = build_env("direct")
    workload = TraceWorkload(_simple_trace(), open_loop=True)
    run_workloads(env, [workload], 10_000.0, 0.0)
    submits = [request.submit_time for request in workload.requests]
    assert submits == pytest.approx([0.0, 100.0, 200.0], abs=2.0)


def test_open_loop_rounds_measure_latency_under_contention():
    from repro.workloads.throttle import Throttle

    entries = [TraceEntry(i * 100.0, 50.0) for i in range(50)]
    env = build_env("direct")
    trace = TraceWorkload(entries, open_loop=True)
    hog = Throttle(400.0, name="hog")
    run_workloads(env, [trace, hog], 30_000.0, 0.0)
    stats = trace.rounds.stats()
    # Queueing behind the hog's 400us requests shows up in the latency,
    # and open-loop arrivals cannot back off to avoid it.
    assert stats.count > 30
    assert stats.mean_us > 120.0


def test_closed_loop_uses_gaps_as_think_time():
    env = build_env("direct")
    workload = TraceWorkload(_simple_trace(), open_loop=False)
    run_workloads(env, [workload], 10_000.0, 0.0)
    # Closed-loop: 0 gap, then 100us gaps after each 50us request.
    assert len(workload.rounds) == 3
    assert workload.rounds.stats().mean_us == pytest.approx(50.0, rel=0.05)


def test_repeat_loops_the_trace():
    env = build_env("direct")
    workload = TraceWorkload(_simple_trace(), open_loop=True, repeat=True)
    run_workloads(env, [workload], 2_000.0, 0.0)
    assert len(workload.requests) > 10


def test_unordered_trace_rejected():
    with pytest.raises(ValueError):
        TraceWorkload([TraceEntry(100.0, 1.0), TraceEntry(0.0, 1.0)])


def test_empty_trace_rejected():
    with pytest.raises(ValueError):
        TraceWorkload([])


def test_invalid_entries_rejected():
    with pytest.raises(ValueError):
        TraceWorkload([TraceEntry(-1.0, 1.0)])
    with pytest.raises(ValueError):
        TraceWorkload([TraceEntry(0.0, 0.0)])


def test_poisson_synthesis_statistics():
    rng = np.random.default_rng(0)
    entries = synthesize_poisson_trace(
        rng, rate_per_ms=2.0, mean_size_us=100.0, duration_us=500_000.0
    )
    assert 700 < len(entries) < 1300  # ~1000 expected
    mean_size = sum(e.size_us for e in entries) / len(entries)
    assert 80.0 < mean_size < 120.0
    times = [e.at_us for e in entries]
    assert times == sorted(times)


def test_csv_round_trip(tmp_path):
    entries = [
        TraceEntry(0.0, 50.0, RequestKind.COMPUTE),
        TraceEntry(10.5, 120.25, RequestKind.GRAPHICS),
    ]
    path = tmp_path / "trace.csv"
    save_trace_csv(entries, path)
    loaded = load_trace_csv(path)
    assert loaded == entries


def test_trace_under_dfq_is_schedulable(quick_costs):
    rng = np.random.default_rng(1)
    entries = synthesize_poisson_trace(
        rng, rate_per_ms=1.0, mean_size_us=200.0, duration_us=80_000.0
    )
    env = build_env("dfq", costs=quick_costs)
    workload = TraceWorkload(entries, open_loop=True)
    run_workloads(env, [workload], 120_000.0, 0.0)
    assert len(workload.rounds) > len(entries) * 0.8
