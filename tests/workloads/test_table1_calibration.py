"""Dynamic Table 1 calibration: emergent round times vs the paper.

Runs each application standalone under direct access and checks the
measured round time and mean request size stay within tolerance of the
paper's Table 1.  These are the anchors for every slowdown result.
"""

import pytest

from repro.experiments.runner import solo_baseline
from repro.workloads.apps import make_app
from repro.workloads.profiles import APP_PROFILES

#: Round-time tolerance: jitter, submission costs, and pipelining make the
#: emergent round drift from the static sum.
ROUND_TOLERANCE = 0.20


@pytest.mark.parametrize("name", sorted(APP_PROFILES))
def test_round_time_matches_paper(name):
    profile = APP_PROFILES[name]
    result = solo_baseline(
        lambda: make_app(name), duration_us=120_000.0, warmup_us=20_000.0
    )
    assert result.rounds.count > 3
    measured = result.rounds.mean_us
    assert measured == pytest.approx(profile.paper_round_us, rel=ROUND_TOLERANCE), (
        f"{name}: measured round {measured:.0f}us vs paper "
        f"{profile.paper_round_us:.0f}us"
    )


@pytest.mark.parametrize("name", ["DCT", "FFT", "BitonicSort", "glxgears"])
def test_mean_request_size_matches_paper(name):
    profile = APP_PROFILES[name]
    result = solo_baseline(
        lambda: make_app(name), duration_us=120_000.0, warmup_us=20_000.0
    )
    assert result.mean_request_us == pytest.approx(
        profile.paper_request_us, rel=0.10
    )
