"""Structural tests for the Table 1 application profiles."""

import pytest

from repro.gpu.request import RequestKind
from repro.workloads.profiles import APP_PROFILES

PAPER_APPS = {
    "BinarySearch", "BitonicSort", "DCT", "EigenValue",
    "FastWalshTransform", "FFT", "FloydWarshall", "LUDecomposition",
    "MatrixMulDouble", "MatrixMultiplication", "MatrixTranspose",
    "PrefixSum", "RadixSort", "Reduction", "ScanLargeArrays",
    "glxgears", "oclParticles", "simpleTexture3D",
}


def test_all_table1_apps_present():
    assert set(APP_PROFILES) == PAPER_APPS


@pytest.mark.parametrize("name", sorted(PAPER_APPS))
def test_profile_well_formed(name):
    profile = APP_PROFILES[name]
    assert profile.name == name
    assert profile.bursts, "profile must submit something"
    assert profile.paper_round_us > 0
    assert profile.request_count_per_round > 0
    for burst in profile.bursts:
        assert all(size > 0 for size in burst.sizes)
    assert (profile.paper_request_us is None) != (
        profile.paper_request_split is None
    ), "exactly one request-size reference"


@pytest.mark.parametrize("name", sorted(PAPER_APPS))
def test_gpu_work_fits_in_round(name):
    """Request sizes must sum to no more than the paper's round time for
    blocking bursts (requests serialize within a round)."""
    profile = APP_PROFILES[name]
    blocking_work = sum(
        sum(burst.sizes)
        for burst in profile.bursts
        if burst.blocking and burst.kind is not RequestKind.DMA
    )
    assert blocking_work <= profile.paper_round_us * 1.1


@pytest.mark.parametrize("name", sorted(PAPER_APPS))
def test_compute_graphics_mean_matches_paper(name):
    """Static calibration: per-kind mean sizes near Table 1 references."""
    profile = APP_PROFILES[name]
    sizes = [
        size
        for burst in profile.bursts
        if burst.kind is not RequestKind.DMA
        for size in burst.sizes
    ]
    mean = sum(sizes) / len(sizes)
    if profile.paper_request_us is not None:
        assert mean == pytest.approx(profile.paper_request_us, rel=0.05)
    else:
        compute_ref, graphics_ref = profile.paper_request_split
        for kind, reference in (
            (RequestKind.COMPUTE, compute_ref),
            (RequestKind.GRAPHICS, graphics_ref),
        ):
            kind_sizes = [
                size
                for burst in profile.bursts
                if burst.kind is kind
                for size in burst.sizes
            ]
            kind_mean = sum(kind_sizes) / len(kind_sizes)
            assert kind_mean == pytest.approx(reference, rel=0.05)


def test_combined_apps_have_two_request_kinds():
    for name in ("oclParticles", "simpleTexture3D"):
        kinds = set(APP_PROFILES[name].kinds())
        assert {RequestKind.COMPUTE, RequestKind.GRAPHICS} <= kinds


def test_graphics_only_app():
    assert APP_PROFILES["glxgears"].kinds() == (RequestKind.GRAPHICS,)
