"""Tests for adversarial workloads."""

import math

from repro.experiments.runner import build_env, run_workloads
from repro.osmodel.kernel import ChannelQuotaPolicy
from repro.workloads.adversarial import ChannelHog, GreedyBatcher, InfiniteKernel


def test_infinite_kernel_submits_runaway_after_warmup():
    env = build_env("direct")
    attacker = InfiniteKernel(normal_size_us=10.0, normal_requests=5)
    run_workloads(env, [attacker], 20_000.0, 0.0)
    assert len(attacker.requests) == 6
    assert math.isinf(attacker.requests[-1].size_us)
    assert len(attacker.rounds) == 5


def test_greedy_batcher_round_is_one_batch():
    env = build_env("direct")
    batcher = GreedyBatcher(work_unit_us=10.0, batch_factor=5)
    run_workloads(env, [batcher], 5_000.0, 0.0)
    assert all(request.size_us == 50.0 for request in batcher.requests)


def test_channel_hog_exhausts_unprotected_device():
    env = build_env("direct")
    hog = ChannelHog()
    run_workloads(env, [hog], 5_000.0, 0.0)
    assert hog.contexts_opened == env.device.params.max_contexts
    assert hog.denied is not None


def test_channel_hog_stopped_by_quota():
    quota = ChannelQuotaPolicy(channels_per_task=4)
    env = build_env("direct", quota=quota)
    hog = ChannelHog()
    run_workloads(env, [hog], 5_000.0, 0.0)
    assert hog.channels_opened == quota.channels_per_task
    assert hog.denied is not None
    assert env.device.live_channel_count <= quota.channels_per_task
