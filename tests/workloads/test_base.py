"""Tests for the workload base class."""

import math

import pytest

from repro.experiments.runner import build_env, run_workloads
from repro.gpu.request import RequestKind
from repro.workloads.base import Workload


class TwoRequestApp(Workload):
    """Submits one blocking pair per round, forever."""

    def __init__(self, sizes=(10.0, 30.0)):
        super().__init__("two-request")
        self.sizes = sizes

    def body(self):
        channel = self.open_channel(RequestKind.COMPUTE)
        while True:
            start = self.sim.now
            for size in self.sizes:
                yield from self.submit(channel, size)
            self.rounds.record(start, self.sim.now)


class PipelinedApp(Workload):
    def __init__(self, depth):
        super().__init__("pipelined")
        self.depth = depth

    def body(self):
        channel = self.open_channel(RequestKind.COMPUTE)
        for _ in range(20):
            yield from self.submit_pipelined(channel, 50.0, self.depth)
        yield from self.drain_pipeline()
        self.rounds.record(0.0, self.sim.now)


def test_rounds_and_requests_recorded():
    env = build_env("direct")
    app = TwoRequestApp()
    run_workloads(env, [app], 10_000.0, 0.0)
    assert len(app.rounds) > 100
    assert abs(len(app.requests) - 2 * len(app.rounds)) <= 2


def test_mean_request_size_excludes_dma():
    app = TwoRequestApp()
    app.requests = []
    from repro.gpu.request import Request

    app.requests.append(Request(RequestKind.COMPUTE, 100.0))
    app.requests.append(Request(RequestKind.DMA, 999.0))
    assert app.mean_request_size() == 100.0


def test_mean_request_size_ignores_infinite():
    from repro.gpu.request import Request

    app = TwoRequestApp()
    app.requests = [
        Request(RequestKind.COMPUTE, 100.0),
        Request(RequestKind.COMPUTE, math.inf),
    ]
    assert app.mean_request_size() == 100.0


def test_pipelining_overlaps_cpu_and_gpu():
    env = build_env("direct")
    deep = PipelinedApp(depth=4)
    run_workloads(env, [deep], 50_000.0, 0.0)
    depth1_env = build_env("direct")
    shallow = PipelinedApp(depth=1)
    run_workloads(depth1_env, [shallow], 50_000.0, 0.0)
    # Both drain 20 x 50us of work; deeper pipelining cannot be slower.
    assert deep.rounds._ends[0] <= shallow.rounds._ends[0] + 1.0


def test_jittered_is_mean_preserving():
    env = build_env("direct")
    app = TwoRequestApp()
    app.start(env.sim, env.kernel, env.rng)
    draws = [app.jittered(100.0, 0.1) for _ in range(4000)]
    assert abs(sum(draws) / len(draws) - 100.0) < 2.0


def test_jittered_zero_sigma_is_identity():
    env = build_env("direct")
    app = TwoRequestApp()
    app.start(env.sim, env.kernel, env.rng)
    assert app.jittered(100.0, 0.0) == 100.0


def test_normal_exit_releases_resources():
    class OneShot(Workload):
        def body(self):
            channel = self.open_channel(RequestKind.COMPUTE)
            yield from self.submit(channel, 10.0)

    env = build_env("direct")
    app = OneShot("oneshot")
    run_workloads(env, [app], 5_000.0, 0.0)
    assert not app.task.alive
    assert env.device.live_channel_count == 0
