"""Tests for the Throttle microbenchmark."""

import pytest

from repro.experiments.runner import build_env, run_workloads
from repro.workloads.throttle import Throttle


def test_round_is_one_request():
    env = build_env("direct")
    workload = Throttle(100.0)
    run_workloads(env, [workload], 10_000.0, 0.0)
    # The last request may still be in flight when the clock stops.
    assert len(workload.requests) - len(workload.rounds) <= 1


def test_round_time_tracks_request_size():
    env = build_env("direct")
    workload = Throttle(250.0)
    run_workloads(env, [workload], 20_000.0, 2_000.0)
    stats = workload.round_stats(2_000.0)
    assert 250.0 <= stats.mean_us < 251.0


def test_sleep_ratio_reduces_throughput():
    env_busy = build_env("direct")
    busy = Throttle(100.0, name="busy")
    run_workloads(env_busy, [busy], 50_000.0, 0.0)

    env_sleepy = build_env("direct")
    sleepy = Throttle(100.0, sleep_ratio=0.8, name="sleepy")
    run_workloads(env_sleepy, [sleepy], 50_000.0, 0.0)
    ratio = len(sleepy.rounds) / len(busy.rounds)
    assert 0.15 < ratio < 0.25  # ~20% duty cycle


def test_sleep_us_formula():
    assert Throttle(100.0, sleep_ratio=0.5).sleep_us == pytest.approx(100.0)
    assert Throttle(100.0, sleep_ratio=0.8).sleep_us == pytest.approx(400.0)
    assert Throttle(100.0).sleep_us == 0.0


def test_rounds_exclude_sleep_time():
    env = build_env("direct")
    sleepy = Throttle(100.0, sleep_ratio=0.8)
    run_workloads(env, [sleepy], 30_000.0, 3_000.0)
    stats = sleepy.round_stats(3_000.0)
    assert stats.mean_us < 105.0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        Throttle(0.0)
    with pytest.raises(ValueError):
        Throttle(10.0, sleep_ratio=1.0)
    with pytest.raises(ValueError):
        Throttle(10.0, sleep_ratio=-0.1)


def test_jitter_varies_sizes():
    env = build_env("direct")
    workload = Throttle(100.0, jitter_sigma=0.2)
    run_workloads(env, [workload], 20_000.0, 0.0)
    sizes = {request.size_us for request in workload.requests}
    assert len(sizes) > 10
