"""Workload-level batched submission (submit_burst)."""

from repro.experiments.runner import build_env, run_workloads
from repro.gpu.request import RequestKind
from repro.workloads.base import Workload


class _BurstWorkload(Workload):
    """Submits its requests in fixed-size bursts, then drains."""

    def __init__(self, bursts=4, burst_size=8):
        super().__init__("burster")
        self.bursts = bursts
        self.burst_size = burst_size
        self.completions = []

    def body(self):
        channel = self.open_channel(RequestKind.COMPUTE)
        for _ in range(self.bursts):
            events = yield from self.submit_burst(
                channel, [25.0] * self.burst_size
            )
            self.completions.extend(events)
            yield 500.0  # think time between bursts
        for event in self.completions:
            if not event.triggered:
                yield event


def test_burst_workload_completes_all_requests():
    env = build_env("direct")
    workload = _BurstWorkload(bursts=4, burst_size=8)
    run_workloads(env, [workload], 60_000.0, 0.0)
    assert len(workload.requests) == 32
    assert all(event.triggered for event in workload.completions)
    # Each burst of 8 wakes the engine at most once (plus teardown);
    # far below the 32 wakes an unbatched submit loop could cost.
    assert env.kernel.device.main_engine.wakeups <= 5
