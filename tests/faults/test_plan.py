"""FaultSpec/FaultPlan validation, JSON round-trips, and composition."""

import math

import pytest

from repro.faults import registry as fault_points
from repro.faults.plan import FaultPlan, FaultSpec


def test_default_spec_is_valid():
    FaultSpec(point=fault_points.GPU_REQUEST_HANG).validate()


def test_unknown_point_rejected():
    with pytest.raises(ValueError, match="unknown injection point"):
        FaultSpec(point="gpu.totally_made_up").validate()


@pytest.mark.parametrize(
    "kwargs, pattern",
    [
        ({"start_us": float("nan")}, "NaN window"),
        ({"end_us": float("nan")}, "NaN window"),
        ({"start_us": -1.0}, "invalid window"),
        ({"start_us": 10.0, "end_us": 5.0}, "invalid window"),
        ({"probability": -0.1}, "probability"),
        ({"probability": 1.5}, "probability"),
        ({"magnitude_us": -5.0}, "magnitude_us"),
        ({"magnitude_us": float("nan")}, "magnitude_us"),
        ({"magnitude_us": float("inf")}, "magnitude_us"),
        ({"factor": 0.0}, "factor"),
        ({"factor": -2.0}, "factor"),
        ({"factor": float("inf")}, "factor"),
        ({"count": 0}, "count"),
    ],
)
def test_bad_knobs_rejected(kwargs, pattern):
    spec = FaultSpec(point=fault_points.GPU_REQUEST_SLOWDOWN, **kwargs)
    with pytest.raises(ValueError, match=pattern):
        spec.validate()


def test_spec_round_trips_through_json_with_defaults_omitted():
    spec = FaultSpec(
        point=fault_points.GPU_REFCOUNTER_STALL,
        start_us=1_000.0,
        magnitude_us=40_000.0,
        count=2,
        target_task="victim",
    )
    data = spec.to_jsonable()
    # Defaults are omitted for compact plans.
    assert "end_us" not in data and "probability" not in data
    assert FaultSpec.from_jsonable(data) == spec


def test_infinite_window_bound_spelled_out_in_json():
    spec = FaultSpec(point=fault_points.NEON_STALE_SCAN, start_us=5.0)
    assert spec.end_us == math.inf
    data = FaultSpec(
        point=fault_points.NEON_STALE_SCAN, end_us=math.inf
    ).to_jsonable()
    assert "end_us" not in data  # inf IS the default -> omitted
    explicit = {"point": fault_points.NEON_STALE_SCAN, "end_us": "inf"}
    assert FaultSpec.from_jsonable(explicit).end_us == math.inf


def test_unknown_spec_field_rejected():
    with pytest.raises(ValueError, match="unknown FaultSpec fields"):
        FaultSpec.from_jsonable(
            {"point": fault_points.GPU_REQUEST_HANG, "severity": "extreme"}
        )


def test_unknown_plan_field_rejected():
    with pytest.raises(ValueError, match="unknown FaultPlan fields"):
        FaultPlan.from_jsonable({"specs": [], "schedulers": ["dfq"]})


def test_plan_round_trips_through_dumps_loads():
    plan = FaultPlan(
        specs=(
            FaultSpec(point=fault_points.GPU_REQUEST_HANG, count=1),
            FaultSpec(
                point=fault_points.KERNEL_POLL_STALL,
                probability=0.05,
                magnitude_us=30_000.0,
            ),
        ),
        seed=11,
        name="round-trip",
    )
    assert FaultPlan.loads(plan.dumps()) == plan


def test_loads_validates():
    text = '{"name": "bad", "seed": 0, "specs": [{"point": "nope"}]}'
    with pytest.raises(ValueError, match="unknown injection point"):
        FaultPlan.loads(text)


def test_points_sorted_and_distinct():
    plan = FaultPlan(
        specs=(
            FaultSpec(point=fault_points.NEON_STALE_SCAN),
            FaultSpec(point=fault_points.GPU_REQUEST_HANG),
            FaultSpec(point=fault_points.NEON_STALE_SCAN, probability=0.5),
        )
    )
    assert plan.points() == (
        fault_points.GPU_REQUEST_HANG,
        fault_points.NEON_STALE_SCAN,
    )


def test_compose_concatenates_and_picks_seed():
    first = FaultPlan(
        specs=(FaultSpec(point=fault_points.GPU_REQUEST_HANG),), seed=7
    )
    second = FaultPlan(
        specs=(FaultSpec(point=fault_points.NEON_BARRIER_STALL),), seed=9
    )
    combined = FaultPlan.compose("combo", first, second)
    assert combined.name == "combo"
    assert combined.seed == 7  # first plan's seed wins by default
    assert combined.specs == first.specs + second.specs
    override = FaultPlan.compose("combo", first, second, seed=42)
    assert override.seed == 42
    assert FaultPlan.compose("empty").specs == ()
