"""Injector semantics: windows, counts, targeting, seeded determinism."""

from repro.faults import registry as fault_points
from repro.faults.injector import Injector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.metrics import MetricsRegistry
from repro.sim.trace import TraceRecorder


class FakeSim:
    """Just enough simulator for the injector: a settable clock."""

    def __init__(self, now=0.0):
        self.now = now


def make_injector(*specs, seed=0, sim=None, **kwargs):
    plan = FaultPlan(specs=tuple(specs), seed=seed)
    return Injector(plan, sim or FakeSim(), **kwargs)


def test_unarmed_point_returns_none():
    injector = make_injector(FaultSpec(point=fault_points.GPU_REQUEST_HANG))
    assert injector.arm(fault_points.NEON_STALE_SCAN) is None
    assert injector.fired == 0


def test_window_gates_firing():
    sim = FakeSim()
    injector = make_injector(
        FaultSpec(
            point=fault_points.GPU_REQUEST_HANG,
            start_us=100.0,
            end_us=200.0,
        ),
        sim=sim,
    )
    sim.now = 99.9
    assert injector.arm(fault_points.GPU_REQUEST_HANG) is None
    sim.now = 100.0
    assert injector.arm(fault_points.GPU_REQUEST_HANG) is not None
    sim.now = 200.0  # end is exclusive
    assert injector.arm(fault_points.GPU_REQUEST_HANG) is None


def test_count_limits_fires():
    injector = make_injector(
        FaultSpec(point=fault_points.GPU_SPURIOUS_COMPLETION, count=2)
    )
    fires = [
        injector.arm(fault_points.GPU_SPURIOUS_COMPLETION) for _ in range(5)
    ]
    assert [spec is not None for spec in fires] == [
        True, True, False, False, False,
    ]
    assert injector.fired == 2


def test_target_task_scopes_traffic():
    injector = make_injector(
        FaultSpec(point=fault_points.GPU_REQUEST_HANG, target_task="victim")
    )
    assert injector.arm(fault_points.GPU_REQUEST_HANG, "bystander") is None
    assert injector.arm(fault_points.GPU_REQUEST_HANG) is None
    assert injector.arm(fault_points.GPU_REQUEST_HANG, "victim") is not None


def test_specs_for_same_point_evaluated_in_plan_order():
    first = FaultSpec(
        point=fault_points.GPU_REQUEST_SLOWDOWN, factor=2.0, count=1
    )
    second = FaultSpec(point=fault_points.GPU_REQUEST_SLOWDOWN, factor=9.0)
    injector = make_injector(first, second)
    assert injector.arm(fault_points.GPU_REQUEST_SLOWDOWN).factor == 2.0
    # First spec exhausted -> the later spec takes over.
    assert injector.arm(fault_points.GPU_REQUEST_SLOWDOWN).factor == 9.0


def fire_sequence(seed, arms=200):
    injector = make_injector(
        FaultSpec(point=fault_points.KERNEL_POLL_STALL, probability=0.3),
        seed=seed,
    )
    return [
        injector.arm(fault_points.KERNEL_POLL_STALL) is not None
        for _ in range(arms)
    ]


def test_probability_draws_deterministic_per_seed():
    assert fire_sequence(11) == fire_sequence(11)
    assert fire_sequence(11) != fire_sequence(12)
    fired = sum(fire_sequence(11))
    assert 0 < fired < 200  # actually probabilistic, not all-or-nothing


def test_certain_specs_consume_no_draws():
    # A probability-1.0 spec interleaved on another point must not
    # perturb the probabilistic stream: streams are per-point and
    # certain specs never touch them.
    def sequence(with_certain_arms):
        injector = make_injector(
            FaultSpec(point=fault_points.KERNEL_POLL_STALL, probability=0.3),
            FaultSpec(point=fault_points.GPU_REQUEST_HANG),
            seed=5,
        )
        out = []
        for _ in range(100):
            if with_certain_arms:
                injector.arm(fault_points.GPU_REQUEST_HANG)
            out.append(
                injector.arm(fault_points.KERNEL_POLL_STALL) is not None
            )
        return out

    assert sequence(True) == sequence(False)


def test_fire_emits_trace_event_and_metric():
    trace = TraceRecorder()
    metrics = MetricsRegistry()
    sim = FakeSim(now=123.0)
    injector = make_injector(
        FaultSpec(point=fault_points.GPU_REQUEST_HANG),
        sim=sim,
        trace=trace,
        metrics=metrics,
    )
    injector.arm(fault_points.GPU_REQUEST_HANG, "victim")
    records = list(trace.records(kind="fault_injected"))
    assert len(records) == 1
    assert records[0].time == 123.0
    assert records[0].payload == {
        "point": fault_points.GPU_REQUEST_HANG,
        "task": "victim",
    }
    assert metrics.task_view("victim")["faults_injected"] == 1.0


def test_injector_validates_plan_at_construction():
    import pytest

    with pytest.raises(ValueError, match="unknown injection point"):
        Injector(
            FaultPlan(specs=(FaultSpec(point="bogus"),)), FakeSim()
        )
