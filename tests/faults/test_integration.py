"""End-to-end fault behavior: determinism, identity, and the watchdog ladder.

The two ISSUE-level guarantees live here: the same plan + seed replays an
identical trace (checked with the ``repro trace diff`` machinery), and a
run with no fault plan is indistinguishable from one that never imported
the subsystem.
"""

from repro.core.hardening import RUNAWAY_REASON, UNRESPONSIVE_REASON
from repro.experiments.chaos import (
    BYSTANDER,
    VICTIM,
    WARMUP_US,
    builtin_plans,
    chaos_costs,
    check_invariants,
    deep_check,
)
from repro.experiments.runner import build_env, measure, run_workloads
from repro.faults import registry as fault_points
from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs.summary import diff_counts, diff_tasks, summarize
from repro.sim.trace import TraceRecorder
from repro.workloads.throttle import Throttle

DURATION_US = 220_000.0


def traced_run(plan, scheduler="dfq", seed=3):
    """One fully traced chaos-style run; returns (trace, results)."""
    env = build_env(
        scheduler,
        seed=seed,
        costs=chaos_costs(),
        trace=TraceRecorder(),
        fault_plan=plan,
    )
    workloads = [Throttle(800.0, name=VICTIM), Throttle(800.0, name=BYSTANDER)]
    results = run_workloads(env, workloads, DURATION_US, WARMUP_US)
    return env.trace, results


def normalized(trace):
    """Id-insensitive record view.

    Channel/context ids come from process-global counters, so they
    differ between runs inside one test process even though each run is
    deterministic; the (time, source, kind) sequence is the replayable
    signature.
    """
    return [(r.time, r.source, r.kind) for r in trace.records()]


def result_signature(results):
    return {
        name: (
            result.rounds.count,
            result.rounds.mean_us,
            result.requests_submitted,
            result.killed,
            result.kill_reason,
            result.ground_truth_usage_us,
            tuple(sorted(result.metrics.items())),
        )
        for name, result in results.items()
    }


def test_same_plan_and_seed_replays_identical_trace():
    plan = builtin_plans()["mixed"]
    left_trace, left_results = traced_run(plan)
    right_trace, right_results = traced_run(plan)
    assert diff_counts(left_trace, right_trace) == {}
    assert diff_tasks(summarize(left_trace), summarize(right_trace)) == {}
    # Record-for-record, not just in aggregate.
    assert normalized(left_trace) == normalized(right_trace)
    assert result_signature(left_results) == result_signature(right_results)


def test_different_plan_seed_diverges():
    base = builtin_plans()["pollstall"]
    reseeded = FaultPlan(specs=base.specs, seed=base.seed + 1, name=base.name)
    left_trace, _ = traced_run(base)
    right_trace, _ = traced_run(reseeded)
    # Reseeding the plan moves the probabilistic injections in time.
    left_times = [
        r.time for r in left_trace.records(kind="fault_injected")
    ]
    right_times = [
        r.time for r in right_trace.records(kind="fault_injected")
    ]
    assert left_times != right_times


def test_no_plan_and_empty_plan_runs_are_identical():
    none_trace, none_results = traced_run(None)
    empty_trace, empty_results = traced_run(FaultPlan(name="none"))
    assert diff_counts(none_trace, empty_trace) == {}
    assert normalized(none_trace) == normalized(empty_trace)
    assert result_signature(none_results) == result_signature(empty_results)
    # And no fault machinery left fingerprints anywhere.
    summary = summarize(empty_trace)
    assert summary.fault_timeline == []
    for task in summary.tasks.values():
        assert task.faults_injected == 0
        assert task.fault_detections == 0


def test_hang_fault_attributed_and_killed_with_legacy_reason():
    plan = builtin_plans()["hang"]
    _, results = traced_run(plan, scheduler="disengaged-timeslice")
    victim = results[VICTIM]
    assert victim.killed
    assert victim.kill_reason == RUNAWAY_REASON
    bystander = results[BYSTANDER]
    assert not bystander.killed
    assert bystander.rounds.count > 0
    assert check_invariants(plan, results) == []


def test_refstall_recovered_by_watchdog_retry():
    plan = builtin_plans()["refstall"]
    trace, results = traced_run(plan, scheduler="dfq")
    summary = summarize(trace)
    victim = summary.tasks[VICTIM]
    assert victim.fault_detections > 0
    assert victim.fault_recoveries > 0
    assert victim.fault_escalations == 0
    assert not results[VICTIM].killed  # recovered, not punished
    kinds = [incident.kind for incident in summary.fault_timeline]
    assert "fault_detected" in kinds
    assert "watchdog_retry" in kinds
    assert "fault_recovered" in kinds
    assert check_invariants(plan, results) == []


def test_unresponsive_storm_walks_full_ladder():
    # Needs the full chaos horizon so the backed-off retries and the
    # strike-two episode both settle in-run.
    from repro.experiments import chaos

    plan = builtin_plans()["refstall-storm"]
    assert deep_check(plan, "dfq") == []
    env = build_env(
        "dfq", seed=0, costs=chaos_costs(),
        trace=TraceRecorder(), fault_plan=plan,
    )
    workloads = [Throttle(800.0, name=VICTIM), Throttle(800.0, name=BYSTANDER)]
    results = run_workloads(env, workloads, chaos.DURATION_US, WARMUP_US)
    summary = summarize(env.trace)
    victim = summary.tasks[VICTIM]
    # Strike one degrades (recover via quarantine), strike two kills.
    assert victim.fault_escalations == 1
    assert victim.fault_recoveries >= 1
    assert results[VICTIM].killed
    assert results[VICTIM].kill_reason == UNRESPONSIVE_REASON
    actions = [
        incident.kind for incident in summary.fault_timeline
        if incident.task == VICTIM
    ]
    assert actions[-1] == "fault_escalated"
    assert check_invariants(plan, results) == []


def test_every_builtin_plan_validates_and_round_trips():
    for name, plan in builtin_plans().items():
        plan.validate()
        assert FaultPlan.loads(plan.dumps()) == plan
        for spec in plan.specs:
            point = fault_points.INJECTION_POINTS[spec.point]
            defaults = FaultSpec(point=spec.point)
            for knob in ("magnitude_us", "factor"):
                # Plans only turn knobs the point actually honors.
                if getattr(spec, knob) != getattr(defaults, knob):
                    assert knob in point.knobs, (name, spec.point, knob)
