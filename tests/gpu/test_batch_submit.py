"""Batched request submission: one engine wake per burst."""

from repro.gpu.request import Request, RequestKind
from repro.osmodel.costs import CostParams
from repro.osmodel.kernel import Kernel


def _burst(channel, count, size_us=10.0):
    return [Request(channel.kind, size_us, False) for _ in range(count)]


def test_batch_coalesces_into_single_wake(sim, device, make_channel):
    _task, _context, channel = make_channel()
    sim.run(until=1.0)  # let the idle engine park on its wake event
    requests = _burst(channel, 8)
    completions = device.submit_batch(channel, requests)
    wakes_before_run = device.main_engine.wakeups
    sim.run(until=1_000.0)
    assert wakes_before_run == 1  # eight enqueues, one wake event
    assert all(event.triggered for event in completions)
    assert channel.refcounter == channel.last_submitted_ref == 8


def test_batch_completions_in_submission_order(sim, device, make_channel):
    _task, _context, channel = make_channel()
    requests = _burst(channel, 5)
    completed = []
    completions = device.submit_batch(channel, requests)
    for index, event in enumerate(completions):
        event.add_callback(lambda _event, i=index: completed.append(i))
    sim.run(until=1_000.0)
    assert completed == [0, 1, 2, 3, 4]


def test_empty_batch_is_a_noop(sim, device, make_channel):
    _task, _context, channel = make_channel()
    assert device.submit_batch(channel, []) == []
    sim.run(until=100.0)
    assert channel.last_submitted_ref == 0


def test_single_submits_wake_once_per_idle_period(sim, device, make_channel):
    # The coalescing the batch path relies on: notify() is idempotent
    # within one idle period, so even unbatched back-to-back submits at
    # one instant fire a single wake.
    _task, _context, channel = make_channel()
    sim.run(until=1.0)

    def submit_two():
        device.submit(channel, Request(channel.kind, 10.0, False))
        device.submit(channel, Request(channel.kind, 10.0, False))

    sim.schedule(0.0, submit_two)
    sim.run(until=5.0)
    assert device.main_engine.wakeups == 1


def test_kernel_batch_charges_one_combined_submit_cost(sim, device):
    costs = CostParams()
    kernel = Kernel(sim, device, costs)
    task = kernel.create_task("batcher")
    context = kernel.open_context(task)
    channel = kernel.open_channel(task, context, RequestKind.COMPUTE)
    requests = [Request(RequestKind.COMPUTE, 20.0, False) for _ in range(4)]
    done = {}

    def body():
        completions = yield from kernel.submit_batch(task, channel, requests)
        done["submitted_at"] = sim.now
        done["completions"] = completions

    sim.spawn(body(), name="batcher")
    sim.run(until=5_000.0)
    # One combined direct-write cost for the whole burst...
    assert done["submitted_at"] == 4 * costs.direct_submit_us
    # ...and all four requests land and complete.
    assert len(done["completions"]) == 4
    assert all(event.triggered for event in done["completions"])
    assert kernel.submit_count == 4
