"""Tests for the execution engine: service order, costs, aborts."""

import math

from repro.gpu.request import Request, RequestKind

from tests.gpu.conftest import submit


def test_single_channel_fifo(sim, device, make_channel):
    _, _, channel = make_channel()
    first = submit(device, channel, 10.0)
    second = submit(device, channel, 5.0)
    sim.run()
    assert first.finish_time == 10.0
    assert second.finish_time == 15.0
    assert channel.refcounter == 2


def test_round_robin_between_channels(sim, device, make_channel):
    _, _, channel_a = make_channel("a")
    _, _, channel_b = make_channel("b")
    a_requests = [submit(device, channel_a, 10.0) for _ in range(2)]
    b_requests = [submit(device, channel_b, 10.0) for _ in range(2)]
    sim.run()
    # Service alternates a, b, a, b (with context-switch costs between).
    assert a_requests[0].start_time < b_requests[0].start_time
    assert b_requests[0].start_time < a_requests[1].start_time
    assert a_requests[1].start_time < b_requests[1].start_time


def test_context_switch_cost_charged_between_contexts(sim, device, make_channel):
    _, _, channel_a = make_channel("a")
    _, _, channel_b = make_channel("b")
    submit(device, channel_a, 10.0)
    submit(device, channel_b, 10.0)
    sim.run()
    assert device.main_engine.switch_us == device.params.context_switch_us
    assert device.main_engine.busy_us == 20.0 + device.params.context_switch_us


def test_no_switch_cost_on_same_channel(sim, device, make_channel):
    _, _, channel = make_channel()
    submit(device, channel, 10.0)
    submit(device, channel, 10.0)
    sim.run()
    assert device.main_engine.switch_us == 0.0


def test_channel_switch_cheaper_than_context_switch(sim, device, make_channel):
    task, context, channel_a = make_channel()
    channel_b = device.create_channel(context, RequestKind.COMPUTE)
    submit(device, channel_a, 10.0)
    submit(device, channel_b, 10.0)
    sim.run()
    assert device.main_engine.switch_us == device.params.channel_switch_us


def test_dma_overlaps_compute_on_copy_engine(sim, device, make_channel):
    task, context, compute_channel = make_channel()
    dma_channel = device.create_channel(context, RequestKind.DMA)
    compute = submit(device, compute_channel, 100.0)
    dma = submit(device, dma_channel, 100.0)
    sim.run()
    # Both finish at ~100: they ran concurrently on separate engines.
    assert compute.finish_time == 100.0
    assert dma.finish_time == 100.0


def test_infinite_request_blocks_engine_until_abort(sim, device, make_channel):
    task, context, channel = make_channel()
    runaway = submit(device, channel, math.inf)
    blocked = submit(device, channel, 10.0)
    sim.schedule(500.0, device.kill_context, context)
    sim.run()
    assert runaway.aborted
    assert blocked.aborted
    assert device.main_engine.idle


def test_abort_charges_partial_service(sim, device, make_channel):
    task, context, channel = make_channel()
    submit(device, channel, math.inf)
    sim.schedule(250.0, device.kill_context, context)
    sim.run()
    assert device.task_usage(task) == 250.0


def test_inject_stall_consumes_engine_time(sim, device, make_channel):
    _, _, channel = make_channel()
    device.main_engine.inject_stall(50.0)
    request = submit(device, channel, 10.0)
    sim.run()
    assert request.finish_time == 60.0
    assert device.main_engine.busy_us == 60.0


def test_idle_property(sim, device, make_channel):
    _, _, channel = make_channel()
    assert device.main_engine.idle
    submit(device, channel, 10.0)
    sim.run(until=5.0)
    assert not device.main_engine.idle
    sim.run()
    assert device.main_engine.idle


def test_graphics_penalized_when_compute_competes(sim, device, make_channel):
    """With competition, a graphics channel completes requests at a
    fraction of the compute channel's rate (the paper's glxgears
    observation)."""
    _, _, compute = make_channel("compute", RequestKind.COMPUTE)
    _, _, graphics = make_channel("gfx", RequestKind.GRAPHICS)

    def feeder(channel, size):
        while True:
            request = Request(channel.kind, size)
            device.submit(channel, request)
            yield request.completion

    sim.spawn(feeder(compute, 19.0))
    sim.spawn(feeder(graphics, 19.0))
    sim.run(until=50_000.0)
    ratio = compute.completed_count / graphics.completed_count
    assert ratio > 2.0, f"expected graphics held back, got ratio {ratio:.2f}"


def test_graphics_unpenalized_without_competition(sim, device, make_channel):
    _, _, graphics = make_channel("gfx", RequestKind.GRAPHICS)

    def feeder(channel, size, count):
        for _ in range(count):
            request = Request(channel.kind, size)
            device.submit(channel, request)
            yield request.completion

    sim.spawn(feeder(graphics, 10.0, 100))
    sim.run()
    # 100 back-to-back requests with no penalty gaps: pure service time.
    assert sim.now < 1_100.0


def test_completion_event_triggers(sim, device, make_channel):
    _, _, channel = make_channel()
    request = submit(device, channel, 10.0)
    fired = []
    request.completion.add_callback(lambda ev: fired.append(sim.now))
    sim.run()
    assert fired == [10.0]
