"""Tests for channels: ring buffer, reference counters, teardown."""

import pytest

from repro.gpu.request import Request, RequestKind


def test_enqueue_assigns_monotonic_refs(make_channel, sim):
    _, _, channel = make_channel()
    refs = []
    for _ in range(3):
        request = Request(RequestKind.COMPUTE, 5.0)
        channel.enqueue(request, sim.now)
        refs.append(request.ref)
    assert refs == [1, 2, 3]
    assert channel.last_submitted_ref == 3
    assert channel.submitted_count == 3


def test_wrong_kind_rejected(make_channel, sim):
    _, _, channel = make_channel(kind=RequestKind.COMPUTE)
    request = Request(RequestKind.GRAPHICS, 5.0)
    with pytest.raises(ValueError):
        channel.enqueue(request, sim.now)


def test_dead_channel_rejects_enqueue(make_channel, sim):
    _, _, channel = make_channel()
    channel.dead = True
    with pytest.raises(RuntimeError):
        channel.enqueue(Request(RequestKind.COMPUTE, 5.0), sim.now)


def test_complete_bumps_refcounter(make_channel, sim):
    _, _, channel = make_channel()
    request = Request(RequestKind.COMPUTE, 5.0)
    channel.enqueue(request, sim.now)
    channel.queue.popleft()
    channel.complete(request)
    assert channel.refcounter == 1
    assert channel.completed_count == 1


def test_drained_tracks_refcounter_vs_last_submitted(make_channel, sim):
    _, _, channel = make_channel()
    assert channel.drained
    request = Request(RequestKind.COMPUTE, 5.0)
    channel.enqueue(request, sim.now)
    assert not channel.drained
    channel.queue.popleft()
    channel.complete(request)
    assert channel.drained


def test_pending_counts_queue_and_running(make_channel, sim):
    _, _, channel = make_channel()
    first = Request(RequestKind.COMPUTE, 5.0)
    second = Request(RequestKind.COMPUTE, 5.0)
    channel.enqueue(first, sim.now)
    channel.enqueue(second, sim.now)
    assert channel.pending == 2
    channel.running = channel.queue.popleft()
    assert channel.pending == 2
    channel.running = None
    assert channel.pending == 1


def test_discard_queued_marks_aborted_and_drains(make_channel, sim):
    _, _, channel = make_channel()
    requests = [Request(RequestKind.COMPUTE, 5.0) for _ in range(3)]
    for request in requests:
        channel.enqueue(request, sim.now)
    casualties = channel.discard_queued()
    assert casualties == requests
    assert all(request.aborted for request in casualties)
    assert channel.drained
    assert channel.pending == 0


def test_task_property_reaches_owner(make_channel):
    task, _, channel = make_channel("owner")
    assert channel.task is task
    assert channel.task.name == "owner"
