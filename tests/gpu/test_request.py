"""Tests for request objects."""

import math

import pytest

from repro.gpu.request import Request, RequestKind


def test_negative_size_rejected():
    with pytest.raises(ValueError):
        Request(RequestKind.COMPUTE, -1.0)


def test_ids_are_unique():
    a = Request(RequestKind.COMPUTE, 1.0)
    b = Request(RequestKind.COMPUTE, 1.0)
    assert a.request_id != b.request_id


def test_infinite_request_never_completes():
    request = Request(RequestKind.COMPUTE, math.inf)
    assert request.never_completes


def test_finite_request_completes():
    request = Request(RequestKind.COMPUTE, 10.0)
    assert not request.never_completes


def test_service_time_none_until_finished():
    request = Request(RequestKind.COMPUTE, 10.0)
    assert request.service_time is None
    request.start_time = 5.0
    assert request.service_time is None
    request.finish_time = 15.0
    assert request.service_time == 10.0


def test_kinds_cover_compute_graphics_dma():
    assert {k.value for k in RequestKind} == {"compute", "graphics", "dma"}
