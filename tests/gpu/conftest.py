"""GPU-model fixtures: a device plus helpers to make tasks and channels."""

from __future__ import annotations

import pytest

from repro.gpu.device import GpuDevice
from repro.gpu.params import GpuParams
from repro.gpu.request import Request, RequestKind
from repro.osmodel.task import Task


@pytest.fixture
def gpu_params() -> GpuParams:
    return GpuParams()


@pytest.fixture
def device(sim, gpu_params) -> GpuDevice:
    return GpuDevice(sim, gpu_params)


@pytest.fixture
def make_channel(device):
    """Create (task, context, channel) triples on demand."""

    def factory(name: str = "task", kind: RequestKind = RequestKind.COMPUTE):
        task = Task(name)
        context = device.create_context(task)
        channel = device.create_channel(context, kind)
        return task, context, channel

    return factory


def submit(device, channel, size_us: float, kind=None, blocking=True) -> Request:
    request = Request(kind or channel.kind, size_us, blocking)
    device.submit(channel, request)
    return request
