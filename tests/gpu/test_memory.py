"""Tests for the device memory allocator (§6.3)."""

import pytest

from repro.errors import OutOfResourcesError
from repro.gpu.memory import GpuMemory
from repro.gpu.context import GpuContext
from repro.osmodel.task import Task


@pytest.fixture
def context():
    return GpuContext(Task("t"))


def test_accounting(context):
    memory = GpuMemory(1024.0)
    memory.allocate(context, 256.0)
    memory.allocate(context, 256.0)
    assert memory.used_mib == 512.0
    assert memory.free_mib == 512.0
    assert memory.context_usage(context) == 512.0


def test_exhaustion_raises(context):
    memory = GpuMemory(512.0)
    memory.allocate(context, 512.0)
    with pytest.raises(OutOfResourcesError):
        memory.allocate(context, 1.0)


def test_free_returns_capacity(context):
    memory = GpuMemory(512.0)
    memory.allocate(context, 512.0)
    memory.free(context, 256.0)
    memory.allocate(context, 200.0)  # no raise
    assert memory.free_mib == pytest.approx(56.0)


def test_over_free_rejected(context):
    memory = GpuMemory(512.0)
    memory.allocate(context, 100.0)
    with pytest.raises(ValueError):
        memory.free(context, 200.0)


def test_release_context_frees_everything(context):
    memory = GpuMemory(512.0)
    memory.allocate(context, 300.0)
    released = memory.release_context(context)
    assert released == 300.0
    assert memory.free_mib == 512.0


def test_dead_context_rejected(context):
    memory = GpuMemory(512.0)
    context.dead = True
    with pytest.raises(RuntimeError):
        memory.allocate(context, 1.0)


def test_invalid_sizes_rejected(context):
    with pytest.raises(ValueError):
        GpuMemory(0.0)
    memory = GpuMemory(512.0)
    with pytest.raises(ValueError):
        memory.allocate(context, 0.0)


def test_kill_context_releases_memory(sim):
    from repro.gpu.device import GpuDevice

    device = GpuDevice(sim)
    task = Task("t")
    context = device.create_context(task)
    device.memory.allocate(context, 1000.0)
    device.kill_context(context)
    assert device.memory.free_mib == device.params.memory_mib
