"""Tests for device parameter validation."""

import pytest

from repro.gpu.params import GpuParams


def test_defaults_validate():
    GpuParams().validate()


@pytest.mark.parametrize(
    "field,value",
    [
        ("context_switch_us", -1.0),
        ("channel_switch_us", -0.1),
        ("graphics_penalty_gap_us", -1.0),
        ("graphics_competition_window_us", -1.0),
        ("total_channels", 0),
        ("max_contexts", 0),
        ("context_cleanup_us", -5.0),
    ],
)
def test_invalid_values_rejected(field, value):
    params = GpuParams()
    setattr(params, field, value)
    with pytest.raises(ValueError):
        params.validate()


def test_paper_platform_limits():
    """GTX670: 48 contexts, two channels each (Section 6.3)."""
    params = GpuParams()
    assert params.max_contexts == 48
    assert params.total_channels == 96
