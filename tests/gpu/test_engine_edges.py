"""Edge-case tests for the execution engine."""

import math

from repro.gpu.request import Request, RequestKind

from tests.gpu.conftest import submit


def test_kill_while_switching_contexts(sim, device, make_channel):
    """A context that dies during the switch toward it must not be served."""
    _, context_a, channel_a = make_channel("a")
    _, context_b, channel_b = make_channel("b")
    submit(device, channel_a, 10.0)
    victim = submit(device, channel_b, 10.0)
    # Kill b exactly while the engine is paying the a->b switch cost.
    sim.schedule(11.0, device.kill_context, context_b)
    sim.run()
    assert victim.aborted
    assert device.main_engine.idle


def test_notify_while_busy_is_harmless(sim, device, make_channel):
    _, _, channel = make_channel()
    submit(device, channel, 100.0)
    for delay in (10.0, 20.0, 30.0):
        sim.schedule(delay, device.main_engine.notify)
    sim.run()
    assert channel.refcounter == 1


def test_graphics_penalty_expires_without_competition(sim, device, make_channel):
    """Once compute goes quiet for the competition window, graphics runs
    at full rate again."""
    _, _, compute = make_channel("c", RequestKind.COMPUTE)
    _, _, graphics = make_channel("g", RequestKind.GRAPHICS)
    submit(device, compute, 10.0)  # one compute request, then silence

    def feeder():
        for _ in range(50):
            request = Request(RequestKind.GRAPHICS, 10.0)
            device.submit(graphics, request)
            yield request.completion

    sim.spawn(feeder())
    sim.run()
    window = device.params.graphics_competition_window_us
    # After the window, the remaining ~40 requests run back-to-back: the
    # total time is far below 50 full penalty gaps.
    assert sim.now < window + 45 * 12.0 + 10 * device.params.graphics_penalty_gap_us


def test_copy_engine_unaffected_by_main_engine_kill(sim, device, make_channel):
    task_a, context_a, compute = make_channel("a")
    task_b, context_b, _ = make_channel("b")
    dma = device.create_channel(context_b, RequestKind.DMA)
    submit(device, compute, math.inf)
    transfer = submit(device, dma, 500.0)
    sim.schedule(100.0, device.kill_context, context_a)
    sim.run()
    assert transfer.finish_time == 500.0
    assert not transfer.aborted


def test_cursor_survives_channel_removal(sim, device, make_channel):
    channels = [make_channel(f"t{i}")[2] for i in range(4)]
    for channel in channels:
        submit(device, channel, 10.0)
    sim.run()
    # Remove two channels, then keep scheduling on the rest.
    device.kill_context(channels[1].context)
    device.kill_context(channels[3].context)
    late_a = submit(device, channels[0], 10.0)
    late_b = submit(device, channels[2], 10.0)
    sim.run()
    assert late_a.finish_time is not None
    assert late_b.finish_time is not None


def test_zero_size_request_completes_instantly(sim, device, make_channel):
    _, _, channel = make_channel()
    request = submit(device, channel, 0.0)
    sim.run()
    assert request.finish_time == request.start_time
    assert channel.refcounter == 1


def test_busy_accounting_conserves_time(sim, device, make_channel):
    """Engine busy time equals service + switching, never exceeding the
    wall clock."""
    _, _, channel_a = make_channel("a")
    _, _, channel_b = make_channel("b")
    for _ in range(5):
        submit(device, channel_a, 20.0)
        submit(device, channel_b, 30.0)
    sim.run()
    engine = device.main_engine
    service = 5 * 20.0 + 5 * 30.0
    assert engine.busy_us == service + engine.switch_us
    assert engine.busy_us <= sim.now + 1e-9
