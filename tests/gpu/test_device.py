"""Tests for device-level allocation, kill, and accounting."""

import pytest

from repro.errors import OutOfResourcesError
from repro.gpu.request import RequestKind
from repro.osmodel.task import Task

from tests.gpu.conftest import submit


def test_context_limit_enforced(device):
    for index in range(device.params.max_contexts):
        device.create_context(Task(f"t{index}"))
    with pytest.raises(OutOfResourcesError):
        device.create_context(Task("overflow"))


def test_channel_limit_enforced(device):
    task = Task("hog")
    contexts = [
        device.create_context(task) for _ in range(device.params.max_contexts)
    ]
    count = 0
    with pytest.raises(OutOfResourcesError):
        for context in contexts:
            for _ in range(3):
                device.create_channel(context, RequestKind.COMPUTE)
                count += 1
    assert count == device.params.total_channels


def test_dead_context_rejects_channels(device):
    task = Task("t")
    context = device.create_context(task)
    device.kill_context(context)
    with pytest.raises(RuntimeError):
        device.create_channel(context, RequestKind.COMPUTE)


def test_killing_context_frees_slots(device):
    tasks = [Task(f"t{i}") for i in range(device.params.max_contexts)]
    contexts = [device.create_context(task) for task in tasks]
    device.kill_context(contexts[0])
    device.create_context(Task("reuse"))  # no raise


def test_kill_context_triggers_pending_completions(sim, device, make_channel):
    task, context, channel = make_channel()
    first = submit(device, channel, 1000.0)
    second = submit(device, channel, 1000.0)
    fired = []
    second.completion.add_callback(lambda ev: fired.append(ev.value))
    sim.schedule(10.0, device.kill_context, context)
    sim.run()
    assert fired == [second]
    assert second.aborted


def test_kill_context_is_idempotent(sim, device, make_channel):
    _, context, _ = make_channel()
    device.kill_context(context)
    device.kill_context(context)
    assert context.dead


def test_double_kill_emits_context_killed_once(sim):
    from repro.gpu.device import GpuDevice
    from repro.gpu.params import GpuParams
    from repro.sim.trace import TraceRecorder

    trace = TraceRecorder()
    device = GpuDevice(sim, GpuParams(), trace)
    context = device.create_context(Task("t"))
    device.create_channel(context, RequestKind.COMPUTE)
    device.kill_context(context)
    device.kill_context(context)
    kills = [r for r in trace.records() if r.kind == "context_killed"]
    assert len(kills) == 1


def test_double_kill_charges_cleanup_cost_once(sim, device, make_channel):
    _, context, channel = make_channel("runaway")
    _, _, victim_channel = make_channel("victim")
    submit(device, channel, 1000.0)
    sim.schedule(10.0, device.kill_context, context)
    sim.schedule(10.0, device.kill_context, context)
    victim = submit(device, victim_channel, 10.0)
    sim.run()
    cleanup = device.params.context_cleanup_us
    # One cleanup stall delays the victim; a double-counted one would
    # push it past a second stall's worth of time.
    assert victim.finish_time >= 10.0 + cleanup
    assert victim.finish_time < 10.0 + 2 * cleanup


def test_kill_context_stalls_engine_for_cleanup(sim, device, make_channel):
    _, context_a, channel_a = make_channel("a")
    _, _, channel_b = make_channel("b")
    submit(device, channel_a, 1000.0)
    victim = submit(device, channel_b, 10.0)
    sim.schedule(100.0, device.kill_context, context_a)
    sim.run()
    # The victim had to wait for the abort plus the cleanup stall.
    assert victim.finish_time >= 100.0 + device.params.context_cleanup_us


def test_usage_accounting_by_task_and_kind(sim, device, make_channel):
    task, context, channel = make_channel()
    dma_channel = device.create_channel(context, RequestKind.DMA)
    submit(device, channel, 30.0)
    submit(device, dma_channel, 20.0)
    sim.run()
    assert device.task_usage(task) == 50.0
    assert device.task_usage_by_kind(task, RequestKind.COMPUTE) == 30.0
    assert device.task_usage_by_kind(task, RequestKind.DMA) == 20.0


def test_live_counts_exclude_dead(device, make_channel):
    _, context, _ = make_channel()
    assert device.live_context_count == 1
    assert device.live_channel_count == 1
    device.kill_context(context)
    assert device.live_context_count == 0
    assert device.live_channel_count == 0


def test_idle_reflects_engines(sim, device, make_channel):
    _, _, channel = make_channel()
    assert device.idle
    submit(device, channel, 10.0)
    sim.run(until=1.0)
    assert not device.idle
    sim.run()
    assert device.idle


def test_single_engine_mode_serves_dma(sim):
    from repro.gpu.device import GpuDevice
    from repro.gpu.params import GpuParams

    params = GpuParams()
    params.separate_copy_engine = False
    device = GpuDevice(sim, params)
    assert device.copy_engine is None
    task = Task("t")
    context = device.create_context(task)
    channel = device.create_channel(context, RequestKind.DMA)
    request = submit(device, channel, 25.0)
    sim.run()
    assert request.finish_time == 25.0
