"""Tests for hardware preemption and runlist masking (§6.2 extension)."""

import math

import pytest

from repro.gpu.device import GpuDevice
from repro.gpu.params import GpuParams
from repro.gpu.request import Request, RequestKind
from repro.osmodel.task import Task

from tests.gpu.conftest import submit


@pytest.fixture
def preemptive_device(sim):
    params = GpuParams()
    params.preemption_supported = True
    return GpuDevice(sim, params)


def _make_channel(device, name="task"):
    task = Task(name)
    context = device.create_context(task)
    channel = device.create_channel(context, RequestKind.COMPUTE)
    return task, context, channel


def test_preempt_requeues_remainder(sim, preemptive_device):
    device = preemptive_device
    task, context, channel = _make_channel(device)
    request = submit(device, channel, 1000.0)
    sim.schedule(300.0, device.main_engine.preempt_current)
    sim.run(until=305.0)
    assert request.preemptions == 1
    assert request.remaining_us == pytest.approx(700.0)
    assert channel.queue[0] is request
    # Resumes and completes: total service plus save+restore overhead.
    sim.run()
    assert request.finish_time == pytest.approx(
        1000.0 + 2 * device.params.preemption_save_restore_us
    )
    assert channel.refcounter == 1


def test_preempt_charges_partial_usage(sim, preemptive_device):
    device = preemptive_device
    task, context, channel = _make_channel(device)
    submit(device, channel, math.inf)
    sim.schedule(400.0, device.main_engine.preempt_current)
    sim.run(until=500.0)
    assert device.task_usage(task) == pytest.approx(400.0)


def test_preempt_without_hardware_support_is_refused(sim, device, make_channel):
    _, _, channel = make_channel()
    submit(device, channel, 1000.0)
    sim.run(until=100.0)
    assert device.main_engine.preempt_current() is False


def test_preempt_scoped_to_context(sim, preemptive_device):
    device = preemptive_device
    task_a, context_a, channel_a = _make_channel(device, "a")
    task_b, context_b, channel_b = _make_channel(device, "b")
    submit(device, channel_a, 1000.0)
    sim.run(until=100.0)
    assert device.main_engine.preempt_current(context_b) is False
    assert device.main_engine.preempt_current(context_a) is True


def test_masked_channel_is_not_served(sim, preemptive_device):
    device = preemptive_device
    task, context, channel = _make_channel(device)
    channel.masked = True
    request = submit(device, channel, 50.0)
    sim.run(until=1_000.0)
    assert request.start_time is None
    channel.masked = False
    device.main_engine.notify()
    sim.run(until=2_000.0)
    assert request.finish_time is not None


def test_infinite_request_contained_by_preempt_mask_cycle(sim, preemptive_device):
    """Preempt + mask + unmask shares the engine with a runaway present."""
    device = preemptive_device
    task_a, context_a, channel_a = _make_channel(device, "runaway")
    task_b, context_b, channel_b = _make_channel(device, "victim")
    runaway = submit(device, channel_a, math.inf)
    victims = [submit(device, channel_b, 100.0) for _ in range(3)]

    def slice_loop():
        while True:
            yield 1_000.0
            device.main_engine.preempt_current(context_a)
            channel_a.masked = True
            device.main_engine.notify()
            yield 1_000.0
            channel_a.masked = False
            device.main_engine.notify()

    sim.spawn(slice_loop())
    sim.run(until=10_000.0)
    assert all(victim.finish_time is not None for victim in victims)
    assert not runaway.aborted
    assert device.task_usage(task_a) > 3_000.0  # runaway still progressed


def test_preemptions_counted(sim, preemptive_device):
    device = preemptive_device
    task, context, channel = _make_channel(device)
    submit(device, channel, 10_000.0)
    for delay in (100.0, 300.0, 600.0):
        sim.schedule(delay, device.main_engine.preempt_current)
    sim.run()
    assert device.main_engine.preemptions == 3
