"""Property-based tests for the overuse ledger."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.overuse import OveruseLedger
from repro.osmodel.task import Task

charges = st.lists(
    st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
    min_size=1,
    max_size=50,
)


@given(charges, st.floats(min_value=1.0, max_value=1e5))
@settings(max_examples=60)
def test_conservation_of_charged_overuse(charge_list, timeslice):
    """Total skips x timeslice + residual accrual == total charged."""
    ledger = OveruseLedger(timeslice)
    task = Task("t")
    skips = 0
    for charge in charge_list:
        ledger.charge(task, charge)
        while ledger.should_skip(task):
            skips += 1
    residual = ledger.accrued(task)
    total = sum(charge_list)
    assert abs(skips * timeslice + residual - total) < 1e-6 * max(total, 1.0)
    assert 0.0 <= residual < timeslice


@given(charges, st.floats(min_value=1.0, max_value=1e5))
@settings(max_examples=60)
def test_accrual_never_negative(charge_list, timeslice):
    ledger = OveruseLedger(timeslice)
    task = Task("t")
    for charge in charge_list:
        ledger.charge(task, charge)
        ledger.should_skip(task)
        assert ledger.accrued(task) >= 0.0


@given(st.floats(min_value=0.0, max_value=0.999))
def test_sub_slice_overuse_never_skips(fraction):
    ledger = OveruseLedger(1000.0)
    task = Task("t")
    ledger.charge(task, fraction * 1000.0)
    assert not ledger.should_skip(task)
