"""Property-based stress tests for the device engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.device import GpuDevice
from repro.gpu.request import Request, RequestKind
from repro.osmodel.task import Task
from repro.sim.engine import Simulator

request_plans = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),                 # channel index
        st.floats(min_value=0.1, max_value=500.0, allow_nan=False),  # size
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),  # gap
    ),
    min_size=1,
    max_size=40,
)


def _run_plan(plan):
    sim = Simulator()
    device = GpuDevice(sim)
    channels = []
    for index in range(3):
        task = Task(f"t{index}")
        context = device.create_context(task)
        channels.append(device.create_channel(context, RequestKind.COMPUTE))
    requests = []

    def feeder():
        for channel_index, size, gap in plan:
            if gap > 0:
                yield gap
            request = Request(RequestKind.COMPUTE, size)
            device.submit(channels[channel_index], request)
            requests.append(request)

    sim.spawn(feeder())
    sim.run()
    return sim, device, channels, requests


@given(request_plans)
@settings(max_examples=40, deadline=None)
def test_every_request_completes_and_refcounters_match(plan):
    sim, device, channels, requests = _run_plan(plan)
    assert all(request.finish_time is not None for request in requests)
    for channel in channels:
        assert channel.refcounter == channel.last_submitted_ref
        assert channel.pending == 0


@given(request_plans)
@settings(max_examples=40, deadline=None)
def test_busy_time_conservation(plan):
    sim, device, channels, requests = _run_plan(plan)
    engine = device.main_engine
    service = sum(request.size_us for request in requests)
    accounted = engine.switch_us + sum(
        request.service_time for request in requests
    )
    assert abs(engine.busy_us - accounted) < 1e-6
    assert abs(service - sum(r.service_time for r in requests)) < 1e-6
    assert engine.busy_us <= sim.now + 1e-6


@given(request_plans)
@settings(max_examples=25, deadline=None)
def test_per_channel_fifo_order(plan):
    sim, device, channels, requests = _run_plan(plan)
    for channel in channels:
        finishes = [
            request.finish_time
            for request in requests
            if request.channel is channel
        ]
        assert finishes == sorted(finishes)


@given(request_plans)
@settings(max_examples=25, deadline=None)
def test_usage_charges_sum_to_service(plan):
    sim, device, channels, requests = _run_plan(plan)
    total_charged = sum(
        device.task_usage(channel.task) for channel in channels
    )
    total_service = sum(request.size_us for request in requests)
    assert abs(total_charged - total_service) < 1e-6
