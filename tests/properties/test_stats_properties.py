"""Property-based tests for estimators, meters, and CDFs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.cdf import Cdf, log2_bin_histogram
from repro.metrics.fairness import jain_index
from repro.neon.stats import ObservedServiceMeter, RequestSizeEstimator

samples = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
)


@given(samples, st.integers(min_value=1, max_value=64))
def test_estimator_mean_bounded_by_window_extremes(values, window):
    estimator = RequestSizeEstimator(window)
    for value in values:
        estimator.record(value)
    recent = values[-window:]
    assert min(recent) - 1e-9 <= estimator.mean <= max(recent) + 1e-9
    assert estimator.sample_count == min(len(values), window)
    assert estimator.total_observed == len(values)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        ),
        min_size=1,
        max_size=100,
    )
)
@settings(max_examples=50)
def test_meter_services_sum_to_at_most_elapsed(events):
    """Measured services can never total more than the observed span —
    the whole point of the serialization-aware meter."""
    meter = ObservedServiceMeter()
    now = 0.0
    total = 0.0
    slack = 0.0
    for channel_id, gap in events:
        submit = now
        now += gap
        total += meter.measure(channel_id, submit, now)
        slack += 0.05  # the per-measurement clamp floor
    assert total <= now + slack + 1e-6


@given(samples)
def test_cdf_fraction_below_is_monotone(values):
    cdf = Cdf(values)
    thresholds = sorted({0.0, min(values), max(values), max(values) * 2 + 1})
    fractions = [cdf.fraction_below(t) for t in thresholds]
    assert all(a <= b + 1e-12 for a, b in zip(fractions, fractions[1:]))


@given(samples)
def test_log2_histogram_ends_at_100(values):
    bins = log2_bin_histogram(values)
    assert abs(bins[-1] - 100.0) < 1e-9
    assert all(a <= b + 1e-9 for a, b in zip(bins, bins[1:]))


@given(
    st.lists(
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
        min_size=1,
        max_size=20,
    )
)
def test_jain_index_bounds(shares):
    index = jain_index(shares)
    assert 1.0 / len(shares) - 1e-9 <= index <= 1.0 + 1e-9
