"""Property-based tests for virtual-time invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.virtual_time import VirtualTimeTable

TASKS = [1, 2, 3, 4]

operations = st.lists(
    st.one_of(
        st.tuples(
            st.just("advance"),
            st.sampled_from(TASKS),
            st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        ),
        st.tuples(st.just("lift"), st.sampled_from(TASKS), st.just(0.0)),
        st.tuples(
            st.just("system"),
            st.sampled_from(TASKS),
            st.just(0.0),
        ),
    ),
    min_size=1,
    max_size=120,
)


@given(operations)
@settings(max_examples=60)
def test_invariants_hold_under_any_operation_sequence(ops):
    table = VirtualTimeTable()
    previous_system = table.system_vt
    for op, task_id, amount in ops:
        if op == "advance":
            before = table.get(task_id)
            table.advance(task_id, amount)
            assert table.get(task_id) >= before  # vts never regress
        elif op == "lift":
            table.lift_inactive(task_id)
            assert table.get(task_id) >= table.system_vt - 1e-9
        else:
            table.update_system([task_id])
        assert table.system_vt >= previous_system  # system vt monotonic
        previous_system = table.system_vt


@given(operations)
@settings(max_examples=60)
def test_system_vt_never_exceeds_max_task_vt(ops):
    table = VirtualTimeTable()
    touched = set()
    for op, task_id, amount in ops:
        touched.add(task_id)
        if op == "advance":
            table.advance(task_id, amount)
        elif op == "lift":
            table.lift_inactive(task_id)
        else:
            table.update_system([task_id])
    if touched:
        assert table.system_vt <= max(table.get(t) for t in touched) + 1e-9


@given(st.floats(min_value=0.0, max_value=1e6, allow_nan=False))
def test_newcomer_has_zero_lag(initial_usage):
    table = VirtualTimeTable()
    table.advance(1, initial_usage)
    table.update_system([1])
    table.ensure(2)
    assert table.lag(2) == 0.0
