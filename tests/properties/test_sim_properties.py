"""Property-based tests for the simulation kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=60
)


@given(delays)
def test_events_fire_in_nondecreasing_time_order(delay_list):
    sim = Simulator()
    fired = []
    for delay in delay_list:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)


@given(delays)
def test_equal_times_preserve_schedule_order(delay_list):
    sim = Simulator()
    fired = []
    for index, delay in enumerate(delay_list):
        sim.schedule(delay, fired.append, (delay, index))
    sim.run()
    # Stable sort by time: indexes at equal times stay in schedule order.
    assert fired == sorted(fired, key=lambda pair: (pair[0], pair[1]))


@given(delays, st.integers(min_value=0, max_value=59))
def test_cancellation_removes_exactly_one(delay_list, cancel_index):
    sim = Simulator()
    fired = []
    handles = [
        sim.schedule(delay, fired.append, index)
        for index, delay in enumerate(delay_list)
    ]
    victim = handles[cancel_index % len(handles)]
    victim.cancel()
    sim.run()
    assert len(fired) == len(delay_list) - 1
    assert (cancel_index % len(delay_list)) not in fired


@given(delays)
@settings(max_examples=30)
def test_process_sleep_accumulates_delays(delay_list):
    sim = Simulator()
    ends = []

    def body():
        for delay in delay_list:
            yield delay
        ends.append(sim.now)

    sim.spawn(body())
    sim.run()
    assert ends[0] == sum(delay_list) or abs(ends[0] - sum(delay_list)) < 1e-6


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            st.integers(min_value=0, max_value=3),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=30)
def test_deterministic_replay(script):
    def execute():
        sim = Simulator()
        log = []
        for delay, kind in script:
            sim.schedule(delay, log.append, (round(delay, 6), kind))
        sim.run()
        return log

    assert execute() == execute()
