"""Span-closure properties under the chaos matrix.

The span layer's contract must hold no matter what the fault injector
does to the run: hangs, kills, aborts, spurious completions, jitter
storms, and whole-device loss.  For every cell of the matrix:

* every opened span closes **exactly once**, with a terminal tag from
  :data:`repro.obs.spans.TERMINALS`;
* each span's components sum EXACTLY (integer microseconds, no epsilon)
  to the sum of its segment durations;
* one submitted request maps to one span — no duplicates, no leaks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.chaos import (
    BYSTANDER,
    VICTIM,
    WARMUP_US,
    builtin_plans,
    chaos_costs,
)
from repro.experiments.runner import build_env, run_workloads
from repro.fleet.experiment import device_loss_plan
from repro.fleet.registry import build_fleet_env, run_fleet
from repro.fleet.tenants import FleetTenant
from repro.obs import events
from repro.obs.spans import TERMINALS, build_spans
from repro.sim.trace import TraceRecorder
from repro.workloads.throttle import Throttle

#: Long enough that every targeted plan window (opens at 50ms) fires.
DURATION_US = 200_000.0

PLANS = builtin_plans()

#: The kill/abort-bearing corner of the catalog plus the clean control.
CHAOS_PLANS = ("none", "hang", "refstall-storm", "spurious", "mixed")
SCHEDULERS = ("dfq", "disengaged-timeslice")


def chaos_spans(plan_name, scheduler, seed=0):
    """One traced chaos cell (victim + bystander) -> (trace, SpanSet)."""
    trace = TraceRecorder()
    env = build_env(
        scheduler,
        seed=seed,
        costs=chaos_costs(),
        trace=trace,
        fault_plan=PLANS[plan_name],
    )
    run_workloads(
        env,
        [Throttle(800.0, name=VICTIM), Throttle(800.0, name=BYSTANDER)],
        duration_us=DURATION_US,
        warmup_us=WARMUP_US,
    )
    return trace, build_spans(trace, env.sim.now)


def assert_closure(trace, span_set):
    """The closure properties every cell must satisfy."""
    spans = span_set.spans
    assert spans
    # Closed exactly once: terminals always set and valid, identities
    # unique (a double-close would mint a duplicate span).
    for span in spans:
        assert span.terminal in TERMINALS
    identities = [
        (span.task, span.device, span.channel, span.ref, span.start_us)
        for span in spans
    ]
    assert len(identities) == len(set(identities))
    assert len({span.span_id for span in spans}) == len(spans)
    # One submit == one request span (handler-only spans have ref=None).
    submits = sum(
        1 for record in trace.records()
        if record.kind == events.REQUEST_SUBMIT
    )
    assert sum(1 for span in spans if span.ref is not None) == submits
    # Exact decomposition, component by component.
    for span in spans:
        segment_total = sum(seg.duration_us for seg in span.segments)
        assert sum(span.components.values()) == segment_total  # +-0 us
        assert all(value >= 0 for value in span.components.values())


@pytest.mark.parametrize("scheduler", SCHEDULERS)
@pytest.mark.parametrize("plan_name", CHAOS_PLANS)
def test_chaos_matrix_spans_close_exactly_once(plan_name, scheduler):
    trace, span_set = chaos_spans(plan_name, scheduler)
    assert_closure(trace, span_set)


def test_kill_bearing_plan_actually_kills_and_spans_still_close():
    # Guard against the matrix silently testing only the happy path: the
    # runaway-hang plan must actually terminate the victim's context.
    trace, span_set = chaos_spans("hang", "dfq")
    kills = [
        record for record in trace.records()
        if record.kind in (events.CONTEXT_KILLED, events.TASK_KILLED)
    ]
    assert kills
    victim = span_set.select(task=VICTIM)
    assert victim
    assert {span.terminal for span in victim} <= set(TERMINALS)


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_closure_holds_across_seeds(seed):
    trace, span_set = chaos_spans("mixed", "dfq", seed=seed)
    assert_closure(trace, span_set)


def test_device_loss_closes_every_span_on_the_lost_device():
    trace = TraceRecorder()
    env = build_fleet_env(
        devices=2,
        scheduler="dfq",
        seed=0,
        trace=trace,
        fault_plan=device_loss_plan(0, 60_000.0),
    )
    tenants = [
        FleetTenant(f"t{i:03d}", request_size_us=800.0) for i in range(4)
    ]
    run_fleet(env, tenants, 150_000.0, 10_000.0)
    span_set = build_spans(trace, env.sim.now)
    assert_closure(trace, span_set)
    lost = span_set.select(device=0)
    assert lost
    # Nothing on the dead device may linger: each span has a terminal,
    # and every one ends at or before the simulation's end.
    assert all(span.end_us <= env.sim.now for span in lost)
