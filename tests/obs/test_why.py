"""``repro why``: window selection, attribution, report mode, compare."""

import json

import pytest

from repro.cli import main as repro_main
from repro.obs.monitor import main as monitor_main
from repro.obs.why import blame_line, main as why_main

#: Deliberately overloaded figure4-style tenant: glxgears contending
#: with three BitonicSort instances under DFQ (the acceptance scenario).
OVERLOAD_ARGS = [
    "--scheduler", "dfq",
    "--apps", "glxgears,BitonicSort,BitonicSort,BitonicSort",
    "--duration-ms", "120",
]


@pytest.fixture(scope="module")
def monitored(tmp_path_factory):
    """One monitored overload run: (trace.jsonl, report.json)."""
    root = tmp_path_factory.mktemp("why")
    trace = root / "trace.jsonl"
    report = root / "report.json"
    monitor_main([
        "run", *OVERLOAD_ARGS, "--slo-p99-us", "400", "--quiet",
        "--report", str(report), "--trace-out", str(trace),
    ])
    return trace, report


def test_inline_attribution_emits_blame_line(capsys):
    assert why_main([*OVERLOAD_ARGS, "--task", "glxgears"]) == 0
    out = capsys.readouterr().out
    assert "decomposition:" in out
    assert "dominant:" in out
    assert "top interfering tenants:" in out
    lines = out.strip().splitlines()
    assert lines[-1].startswith("WHY dominant=")
    assert "task=glxgears" in lines[-1]


def test_overloaded_tenant_blames_queue_wait_on_interferers(monitored, capsys):
    """The acceptance scenario: >=80% of the violated p99 window goes to
    scheduler queue-wait, blamed on a BitonicSort instance."""
    trace, report = monitored
    assert why_main(
        [str(trace), "--report", str(report), "--task", "glxgears", "--json"]
    ) == 0
    attribution = json.loads(capsys.readouterr().out)
    assert attribution["dominant"] == "queue"
    assert attribution["dominant_share_pct"] >= 80.0
    assert attribution["interference"][0]["task"].startswith("BitonicSort")


def test_report_mode_without_task_uses_first_violation(monitored, capsys):
    trace, report = monitored
    assert why_main([str(trace), "--report", str(report)]) == 0
    out = capsys.readouterr().out
    assert "attributing SLO violation rule=p99-ceiling" in out
    assert out.strip().splitlines()[-1].startswith("WHY dominant=")


def test_report_without_violation_exits_2(monitored, tmp_path, capsys):
    trace, _report = monitored
    empty = tmp_path / "empty-report.json"
    empty.write_text(json.dumps({"slo_events": [], "runs": []}))
    assert why_main([str(trace), "--report", str(empty)]) == 2
    assert "no fired SLO violation" in capsys.readouterr().err


def test_json_mode_is_machine_readable(capsys):
    assert why_main([*OVERLOAD_ARGS, "--task", "glxgears", "--json"]) == 0
    attribution = json.loads(capsys.readouterr().out)
    for key in ("task", "window", "components", "dominant",
                "dominant_share_pct", "interference", "critical_span"):
        assert key in attribution
    assert attribution["total_us"] == sum(attribution["components"].values())


def test_attribution_is_deterministic(capsys):
    why_main([*OVERLOAD_ARGS, "--task", "glxgears"])
    first = capsys.readouterr().out
    why_main([*OVERLOAD_ARGS, "--task", "glxgears"])
    assert capsys.readouterr().out == first


def test_blame_line_shape():
    line = blame_line({
        "window": [10_000.0, 20_000.0],
        "dominant": "queue",
        "dominant_share_pct": 87.6,
        "task": "glxgears",
        "interference": [{"task": "BitonicSort.2", "overlap_us": 1493}],
    })
    assert line == (
        "WHY dominant=queue share=87.6% task=glxgears "
        "window=10000-20000us top=BitonicSort.2"
    )


def test_top_level_cli_delegates(capsys):
    assert repro_main([
        "why", "--scheduler", "dfq", "--apps", "glxgears,BitonicSort",
        "--duration-ms", "40",
    ]) == 0
    assert "WHY dominant=" in capsys.readouterr().out


# ----------------------------------------------------------------------
# repro why compare
# ----------------------------------------------------------------------

@pytest.fixture()
def run_store(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    from repro.obs.perf import main as perf_main

    assert perf_main(["record", "figure4", "--duration-ms", "20"]) == 0
    assert perf_main(["record", "figure4", "--duration-ms", "30"]) == 0
    return tmp_path


def test_compare_diffs_phases_and_metrics(run_store, capsys):
    assert why_main(["compare", "-2", "last"]) == 0
    out = capsys.readouterr().out
    assert "why compare:" in out
    assert "host phases by |delta|:" in out
    assert "cell-execute" in out
    assert out.strip().splitlines()[-1].startswith("WHY-COMPARE dominant_phase=")


def test_compare_json(run_store, capsys):
    assert why_main(["compare", "-2", "last", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["dominant_phase"]
    assert len(payload["wall_s"]) == 2
    assert payload["phases"]


def test_compare_identical_runs_has_no_metric_diffs(run_store, capsys):
    from repro.obs.perf import main as perf_main

    assert perf_main(["record", "figure4", "--duration-ms", "30"]) == 0
    capsys.readouterr()  # drain the record's own figure output
    assert why_main(["compare", "-2", "last", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["metric_diffs"] == {}
