"""Causal lifecycle spans: reconstruction, decomposition, blame, export.

The invariants pinned here are the layer's contract:

* every span's components sum EXACTLY (integer microseconds, no epsilon)
  to the sum of its segment durations;
* segments telescope — contiguous, non-overlapping, in time order;
* a live :class:`SpanBuilder` sink and a replay over exported JSONL
  produce byte-identical serializations (eviction-independence, the same
  property PR-8's windows have);
* interference blame only ever names *other* tenants.
"""

import io
import json

import pytest

from repro.fleet.registry import build_fleet_env, run_fleet
from repro.fleet.tenants import FleetTenant
from repro.obs.export import read_jsonl, write_jsonl
from repro.obs.spans import (
    COMPONENTS,
    SPAN_PAIRS,
    TERMINALS,
    SpanBuilder,
    build_spans,
    register_span_pair,
    span_constant_names,
    span_kinds,
)
from repro.sim.trace import TraceRecorder

from tests.obs.conftest import traced_run


@pytest.fixture(scope="module")
def span_run():
    env, trace, _results = traced_run()
    return trace, env.sim.now, build_spans(trace, env.sim.now)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registered_pairs_cover_the_lifecycle():
    assert {"barrier", "sample_window", "sched.wait", "exec",
            "fleet.migrate"} <= set(SPAN_PAIRS)
    assert "exec.begin" in span_kinds()
    assert "EXEC_BEGIN" in span_constant_names()


def test_register_rejects_duplicates_and_unknown_kinds():
    with pytest.raises(ValueError):
        register_span_pair("exec", "exec.begin", ("request_complete",), ())
    with pytest.raises(ValueError):
        register_span_pair("bogus", "no.such_begin", ("no.such_end",), ())


# ----------------------------------------------------------------------
# Reconstruction invariants
# ----------------------------------------------------------------------

def test_spans_reconstructed_and_terminals_valid(span_run):
    _trace, _end, span_set = span_run
    assert len(span_set.spans) > 100
    assert {span.terminal for span in span_set.spans} <= set(TERMINALS)
    # The overwhelming majority of a clean run completes.
    complete = [s for s in span_set.spans if s.terminal == "complete"]
    assert len(complete) > 0.9 * len(span_set.spans)


def test_components_sum_exactly_to_segment_total(span_run):
    _trace, _end, span_set = span_run
    for span in span_set.spans:
        segment_total = sum(seg.duration_us for seg in span.segments)
        assert sum(span.components.values()) == segment_total  # exact, ±0
        assert set(span.components) <= set(COMPONENTS)
        assert all(value >= 0 for value in span.components.values())


def test_segments_telescope(span_run):
    _trace, _end, span_set = span_run
    for span in span_set.spans:
        for left, right in zip(span.segments, span.segments[1:]):
            assert left.end_us == right.start_us  # contiguous
            assert left.label != right.label      # merged when equal
        for seg in span.segments:
            assert seg.end_us >= seg.start_us


def test_complete_spans_carry_device_latency(span_run):
    _trace, _end, span_set = span_run
    for span in span_set.spans:
        if span.terminal == "complete":
            assert span.latency_us is not None


def test_live_sink_and_replay_are_byte_identical(span_run):
    trace, end_us, replay_set = span_run
    # Live: a retain=False recorder fans records to the builder as they
    # are emitted; replay: export to JSONL, read back, rebuild.
    live = SpanBuilder()
    for record in trace.records():
        live(record)
    live_set = live.finish(end_us)
    buffer = io.StringIO()
    write_jsonl(trace, buffer)
    buffer.seek(0)
    rebuilt = build_spans(read_jsonl(buffer), end_us)
    left = json.dumps(live_set.to_dict(), sort_keys=True)
    right = json.dumps(rebuilt.to_dict(), sort_keys=True)
    assert left == right


def test_builder_finish_is_idempotent(span_run):
    trace, end_us, _span_set = span_run
    builder = SpanBuilder()
    for record in trace.records():
        builder(record)
    first = json.dumps(builder.finish(end_us).to_dict(), sort_keys=True)
    again = json.dumps(builder.finish(end_us).to_dict(), sort_keys=True)
    assert again == first


# ----------------------------------------------------------------------
# Selection, decomposition, blame
# ----------------------------------------------------------------------

def test_select_windows_on_span_end(span_run):
    _trace, end_us, span_set = span_run
    window = (10_000.0, 50_000.0)
    chosen = span_set.select(start_us=window[0], end_us=window[1])
    assert chosen
    for span in chosen:
        assert window[0] <= span.end_us < window[1]
    # Task filter composes.
    gears = span_set.select(task="glxgears")
    assert gears and all(span.task == "glxgears" for span in gears)


def test_decompose_totals_match_span_sums(span_run):
    _trace, _end, span_set = span_run
    spans = span_set.select(task="glxgears")
    totals = span_set.decompose(spans)
    assert sum(totals.values()) == sum(
        sum(span.components.values()) for span in spans
    )


def test_blame_names_only_other_tenants(span_run):
    _trace, _end, span_set = span_run
    blame = span_set.blame(span_set.select(task="glxgears"))
    assert "glxgears" not in blame
    assert all(overlap > 0 for overlap in blame.values())
    # Two-tenant run: all interference comes from the other tenant.
    assert set(blame) <= {"BitonicSort"}


def test_blame_matrix_is_pairwise(span_run):
    _trace, _end, span_set = span_run
    matrix = span_set.blame_matrix()
    assert set(matrix) == set(span_set.tasks())
    for victim, row in matrix.items():
        assert victim not in row


def test_critical_path_reports_worst_span(span_run):
    _trace, _end, span_set = span_run
    path = span_set.critical_path("glxgears")
    assert path["task"] == "glxgears"
    worst = max(
        (s for s in span_set.spans if s.task == "glxgears"),
        key=lambda s: s.duration_us,
    )
    assert path["critical_span"]["span_id"] == worst.span_id
    assert path["total_us"] == sum(path["components"].values())


def test_system_spans_cover_engagement_episodes(span_run):
    _trace, _end, span_set = span_run
    pairs = {span.pair for span in span_set.system_spans}
    assert "barrier" in pairs
    for span in span_set.system_spans:
        assert span.end_us >= span.start_us


# ----------------------------------------------------------------------
# Fleet: device tags and migration linkage
# ----------------------------------------------------------------------

def fleet_spans(moves=()):
    trace = TraceRecorder()
    env = build_fleet_env(devices=2, scheduler="dfq", seed=0, trace=trace)
    workloads = [
        FleetTenant(f"t{i:03d}", request_size_us=800.0) for i in range(4)
    ]
    run_fleet(env, workloads, 120_000.0, 10_000.0, moves=list(moves))
    return build_spans(trace, env.sim.now)


def test_fleet_spans_carry_device_tags():
    span_set = fleet_spans()
    devices = {span.device for span in span_set.spans}
    assert devices == {0, 1}


def test_migration_produces_linked_cross_device_segments():
    span_set = fleet_spans(moves=[(60_000.0, "t000", 1)])
    links = [link for link in span_set.migrations if link.task == "t000"]
    assert len(links) == 1
    link = links[0]
    assert (link.src, link.dst) == (0, 1)
    assert link.cost_us >= 0
    before = [
        s for s in span_set.spans
        if s.task == "t000" and s.migration_epoch == 0
    ]
    after = [
        s for s in span_set.spans
        if s.task == "t000" and s.migration_epoch == 1
    ]
    assert before and after
    assert {s.device for s in before} == {0}
    assert {s.device for s in after} == {1}
    # Boundary-only migration drains in-flight work first, so no span is
    # interrupted: everything on the source device completed normally.
    assert all(s.terminal == "complete" for s in before)


def test_interrupted_span_closes_as_migrated():
    # Synthetic stream: a request is still in flight when its context is
    # torn down mid-migration — the span must close as 'migrated', once.
    from repro.obs import events
    from repro.sim.trace import TraceRecord

    builder = SpanBuilder()
    for t, src, kind, payload in [
        (10.0, "kernel", events.FAULT,
         {"task": "t0", "channel": 1, "device": 0}),
        (12.0, "kernel", events.REQUEST_SUBMIT,
         {"task": "t0", "channel": 1, "ref": 7, "device": 0}),
        (20.0, "fleet", events.FLEET_MIGRATE_BEGIN,
         {"task": "t0", "src": 0, "dst": 1}),
        (25.0, "gpu.compute", events.CONTEXT_KILLED,
         {"task": "t0", "device": 0}),
        (40.0, "fleet", events.FLEET_MIGRATE_END,
         {"task": "t0", "src": 0, "dst": 1, "cost_us": 15.0}),
    ]:
        builder(TraceRecord(t, src, kind, payload))
    span_set = builder.finish(50.0)
    assert [span.terminal for span in span_set.spans] == ["migrated"]
    span = span_set.spans[0]
    assert span.task == "t0" and span.device == 0 and span.ref == 7
    assert sum(span.components.values()) == sum(
        seg.duration_us for seg in span.segments
    )
    assert len(span_set.migrations) == 1


def test_migration_component_charged_to_overlapping_spans():
    span_set = fleet_spans(moves=[(60_000.0, "t000", 1)])
    migrated = sum(
        span.components.get("migration", 0)
        for span in span_set.spans
        if span.task == "t000"
    )
    assert migrated >= 0  # carve-out preserves exactness either way
    for span in span_set.spans:
        assert sum(span.components.values()) == sum(
            seg.duration_us for seg in span.segments
        )


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------

def test_to_dict_round_trips_through_json(span_run):
    _trace, _end, span_set = span_run
    payload = json.loads(json.dumps(span_set.to_dict(), sort_keys=True))
    assert payload["format"] == "repro-spans"
    assert payload["version"] == 1
    assert len(payload["spans"]) == len(span_set.spans)
    sample = payload["spans"][0]
    for key in ("span_id", "task", "device", "terminal", "segments",
                "components", "start_us", "end_us"):
        assert key in sample
