"""Result plumbing: metrics snapshots in results, and tracing-off hygiene."""

import pytest

from repro.experiments.parallel import result_from_jsonable, result_to_jsonable
from repro.experiments.runner import build_env, run_workloads
from repro.sim.trace import NullRecorder
from repro.workloads.apps import make_app
from tests.obs.conftest import DURATION_US, traced_run


def untraced_run(scheduler="dfq", apps=("glxgears", "BitonicSort"), seed=0):
    env = build_env(scheduler, seed=seed)
    workloads = [make_app(name) for name in apps]
    results = run_workloads(env, workloads, duration_us=DURATION_US)
    return env, results


def test_default_env_uses_null_recorder():
    env, _results = untraced_run()
    assert isinstance(env.trace, NullRecorder)
    assert not env.trace.enabled
    assert len(env.trace) == 0
    assert env.trace.dropped == 0


def test_results_identical_with_tracing_on_and_off():
    # Tracing must be purely observational: same seed, same results.
    _env_off, off = untraced_run()
    _env_on, _trace, on = traced_run()
    assert set(off) == set(on)
    for name in off:
        left, right = off[name], on[name]
        assert left.rounds.count == right.rounds.count
        assert left.rounds.mean_us == pytest.approx(right.rounds.mean_us)
        assert left.requests_submitted == right.requests_submitted
        assert left.ground_truth_usage_us == pytest.approx(
            right.ground_truth_usage_us)
        assert left.metrics == right.metrics


def test_result_metrics_populated():
    _env, results = untraced_run()
    for result in results.values():
        metrics = result.metrics
        assert metrics["submits"] > 0
        assert metrics["faults"] > 0  # dfq engages and traps sometimes
        assert metrics["request_latency_us_count"] > 0
        assert metrics["request_latency_us_mean"] > 0
        assert metrics["engaged_us"] >= 0
        assert metrics["disengaged_us"] > 0


def test_result_jsonable_round_trip():
    import json

    _env, results = untraced_run()
    for result in results.values():
        payload = result_to_jsonable(result)
        json.dumps(payload)  # must be serializable as-is
        restored = result_from_jsonable(payload)
        assert restored.name == result.name
        assert restored.metrics == result.metrics
        assert restored.rounds.mean_us == result.rounds.mean_us


def test_result_from_jsonable_tolerates_old_payloads():
    # Cache files written before metrics existed must still load.
    _env, results = untraced_run()
    payload = result_to_jsonable(next(iter(results.values())))
    del payload["metrics"]
    restored = result_from_jsonable(payload)
    assert restored.metrics == {}
