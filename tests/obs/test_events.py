"""The typed event-kind registry: completeness and integrity."""

import pytest

from repro.obs import events
from tests.obs.conftest import traced_run


def test_every_spec_is_self_consistent():
    for kind, spec in events.EVENT_KINDS.items():
        assert spec.kind == kind
        assert spec.layer in (
            "gpu", "kernel", "neon", "scheduler", "faults", "obs", "fleet"
        )
        assert spec.description
        assert all(isinstance(field, str) for field in spec.payload)


def test_registered_kinds_sorted_and_complete():
    kinds = events.registered_kinds()
    assert list(kinds) == sorted(kinds)
    assert set(kinds) == set(events.EVENT_KINDS)


def test_double_registration_rejected():
    with pytest.raises(ValueError, match="registered twice"):
        events.register_event_kind("fault", "kernel", "dup")


def test_unknown_layer_rejected():
    with pytest.raises(ValueError, match="unknown layer"):
        events.register_event_kind("brand_new_kind", "userspace", "nope")
    assert "brand_new_kind" not in events.EVENT_KINDS


def test_constant_names_round_trip():
    names = events.constant_names()
    assert names  # non-empty
    for name in names:
        assert getattr(events, name) in events.EVENT_KINDS


def test_traced_run_emits_only_registered_kinds(dfq_run):
    _env, trace, _results = dfq_run
    seen = set(trace.kind_counts())
    assert seen  # the run actually traced something
    assert seen <= set(events.registered_kinds())


def test_traced_run_covers_every_layer(dfq_run):
    _env, trace, _results = dfq_run
    layers = {events.EVENT_KINDS[kind].layer for kind in trace.kind_counts()}
    assert layers == {"gpu", "kernel", "neon", "scheduler"}


def test_declared_payload_fields_are_emitted(dfq_run):
    # Every record carries at least the fields its spec declares
    # (specs allow extras; they may not under-deliver).
    _env, trace, _results = dfq_run
    optional = {("request_complete", "latency_us")}  # absent on aborted rounds
    for record in trace.records():
        spec = events.EVENT_KINDS[record.kind]
        for field in spec.payload:
            if (record.kind, field) in optional:
                continue
            assert field in record.payload, (record.kind, field)


def test_timeslice_run_uses_its_own_kinds():
    _env, trace, _results = traced_run(scheduler="timeslice",
                                       duration_us=100_000.0)
    counts = trace.kind_counts()
    assert counts.get("token_pass", 0) > 0
    assert counts.get("overuse_charge", 0) > 0
    assert "barrier_begin" not in counts  # no DFQ episodes here
