"""Tests for the SLO rule engine (repro.obs.slo)."""

import json
import math

import pytest

from repro.obs.slo import SloEngine, SloRule, load_rules
from repro.obs.windows import FixedBinLatency, TenantWindow, WindowSnapshot


def _snapshot(index, tenants, jain=1.0):
    return WindowSnapshot(
        index=index,
        start_us=index * 100.0,
        end_us=(index + 1) * 100.0,
        tenants=tenants,
        jain=jain,
        share_basis="share_usage_us",
    )


def _tenant(**kwargs):
    latency_values = kwargs.pop("latencies", None)
    stats = TenantWindow(**kwargs)
    if latency_values is not None:
        stats.latency = FixedBinLatency(50.0, 10_000.0)
        for value in latency_values:
            stats.latency.observe(value)
    return stats


# ----------------------------------------------------------------------
# Rule schema
# ----------------------------------------------------------------------

def test_rule_round_trips_through_dict():
    rule = SloRule("p99", "tail_latency", 500.0, for_windows=3, quantile=0.95)
    assert SloRule.from_dict(rule.to_dict()) == rule


def test_rule_rejects_unknown_kind_and_fields():
    with pytest.raises(ValueError):
        SloRule("x", "nonsense", 1.0)
    with pytest.raises(ValueError):
        SloRule.from_dict({"name": "x", "kind": "starvation",
                           "threshold": 1.0, "surprise": True})
    with pytest.raises(ValueError):
        SloRule("x", "starvation", 1.0, for_windows=0)


def test_load_rules_accepts_list_and_wrapper(tmp_path):
    rules = [SloRule("a", "starvation", 10.0).to_dict()]
    plain = tmp_path / "plain.json"
    plain.write_text(json.dumps(rules))
    wrapped = tmp_path / "wrapped.json"
    wrapped.write_text(json.dumps({"rules": rules}))
    assert load_rules(plain) == load_rules(wrapped)
    assert load_rules(plain)[0].kind == "starvation"


def test_engine_rejects_duplicate_names():
    with pytest.raises(ValueError):
        SloEngine([SloRule("a", "starvation", 1.0),
                   SloRule("a", "fairness_floor", 0.5)])


# ----------------------------------------------------------------------
# Detectors
# ----------------------------------------------------------------------

def test_fairness_floor_fires_on_low_jain():
    engine = SloEngine([SloRule("floor", "fairness_floor", 0.8)])
    events = engine.observe(_snapshot(0, {}, jain=0.5))
    assert [e.event for e in events] == ["violation"]
    assert events[0].task == ""
    assert events[0].value == 0.5
    # NaN windows never fire.
    engine2 = SloEngine([SloRule("floor", "fairness_floor", 0.8)])
    assert engine2.observe(_snapshot(0, {}, jain=math.nan)) == []


def test_starvation_requires_demand_without_progress():
    engine = SloEngine([SloRule("starve", "starvation", 100.0)])
    starving = _tenant(submits=5, completions=0, share_usage_us=0.0)
    events = engine.observe(_snapshot(0, {"victim": starving}))
    assert [e.task for e in events] == ["victim"]
    # Progress (completions) clears it; no demand never fires.
    fine = _tenant(submits=5, completions=2, share_usage_us=0.0)
    idle = _tenant()
    engine2 = SloEngine([SloRule("starve", "starvation", 100.0)])
    assert engine2.observe(_snapshot(0, {"a": fine, "b": idle})) == []


def test_tail_latency_uses_rule_quantile():
    engine = SloEngine([
        SloRule("p50", "tail_latency", 100.0, quantile=0.5),
    ])
    slow = _tenant(completions=4, latencies=[10.0, 400.0, 400.0, 400.0])
    events = engine.observe(_snapshot(0, {"slow": slow}))
    assert [e.event for e in events] == ["violation"]
    # p50 (2nd of 4 observations) sits in the 400 bin (upper edge 450).
    assert events[0].value == pytest.approx(450.0)
    # The same window passes a p25 rule: that rank is the 10 us observation.
    engine2 = SloEngine([SloRule("p25", "tail_latency", 100.0, quantile=0.25)])
    assert engine2.observe(_snapshot(0, {"slow": slow})) == []


def test_overuse_budget_checks_both_time_and_escalations():
    rules = [SloRule("budget", "overuse_budget", 50.0, max_escalations=0)]
    over_time = _tenant(overuse_us=80.0)
    events = SloEngine(rules).observe(_snapshot(0, {"hog": over_time}))
    assert [e.task for e in events] == ["hog"]
    escalated = _tenant(escalations=2)
    events = SloEngine(rules).observe(_snapshot(0, {"bad": escalated}))
    assert [e.task for e in events] == ["bad"]
    clean = _tenant(overuse_us=10.0)
    assert SloEngine(rules).observe(_snapshot(0, {"ok": clean})) == []


# ----------------------------------------------------------------------
# Hysteresis and recovery
# ----------------------------------------------------------------------

def test_for_windows_hysteresis_delays_firing():
    engine = SloEngine([SloRule("floor", "fairness_floor", 0.8,
                                for_windows=3)])
    assert engine.observe(_snapshot(0, {}, jain=0.5)) == []
    assert engine.observe(_snapshot(1, {}, jain=0.5)) == []
    events = engine.observe(_snapshot(2, {}, jain=0.5))
    assert [e.event for e in events] == ["violation"]
    assert events[0].violated_windows == 3
    # Still violating: no duplicate events while active.
    assert engine.observe(_snapshot(3, {}, jain=0.5)) == []
    assert engine.violations == 1


def test_clean_window_resets_streak_before_firing():
    engine = SloEngine([SloRule("floor", "fairness_floor", 0.8,
                                for_windows=2)])
    assert engine.observe(_snapshot(0, {}, jain=0.5)) == []
    assert engine.observe(_snapshot(1, {}, jain=0.9)) == []  # streak reset
    assert engine.observe(_snapshot(2, {}, jain=0.5)) == []
    events = engine.observe(_snapshot(3, {}, jain=0.5))
    assert [e.event for e in events] == ["violation"]


def test_recovery_fires_once_and_reports_last_value():
    engine = SloEngine([SloRule("floor", "fairness_floor", 0.8)])
    engine.observe(_snapshot(0, {}, jain=0.4))
    events = engine.observe(_snapshot(1, {}, jain=0.95))
    assert [e.event for e in events] == ["recovered"]
    assert events[0].value == 0.4  # last violating measurement
    assert engine.observe(_snapshot(2, {}, jain=0.95)) == []
    assert (engine.violations, engine.recoveries) == (1, 1)
    assert engine.active_violations == []


def test_per_task_state_is_independent():
    engine = SloEngine([SloRule("starve", "starvation", 100.0)])
    starving = {"a": _tenant(submits=3), "b": _tenant(submits=3)}
    events = engine.observe(_snapshot(0, starving))
    assert sorted(e.task for e in events) == ["a", "b"]
    # b recovers, a stays violated.
    mixed = {"a": _tenant(submits=3), "b": _tenant(submits=3, completions=1)}
    events = engine.observe(_snapshot(1, mixed))
    assert [(e.event, e.task) for e in events] == [("recovered", "b")]
    assert engine.active_violations == [("starve", "a")]
