"""The ``repro trace`` CLI, end to end on tiny inline runs."""

import json

import pytest

from repro.obs.cli import main as trace_main
from repro.cli import main as repro_main

#: Tiny but episode-bearing run shared by the file-based subcommands.
RUN_ARGS = ["--apps", "glxgears,BitonicSort", "--duration-ms", "60"]


@pytest.fixture(scope="module")
def trace_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "dfq.jsonl"
    assert trace_main(["record", *RUN_ARGS, "-o", str(path)]) == 0
    return path


def test_kinds_lists_registry(capsys):
    assert trace_main(["kinds"]) == 0
    out = capsys.readouterr().out
    assert "fault" in out
    assert "barrier_begin" in out
    assert "payload:" in out


def test_record_writes_jsonl(trace_file):
    lines = trace_file.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["format"] == "repro-trace"
    assert header["records"] == len(lines) - 1
    assert header["records"] > 0


def test_summary_from_file(trace_file, capsys):
    assert trace_main(["summary", str(trace_file)]) == 0
    out = capsys.readouterr().out
    assert "per-task activity:" in out
    assert "glxgears" in out
    assert "BitonicSort" in out
    assert "engagement-overhead breakdown" in out
    assert "free-run" in out
    assert "records by kind:" in out


def test_summary_inline_recording(capsys):
    assert trace_main(["summary", *RUN_ARGS]) == 0
    out = capsys.readouterr().out
    assert "glxgears" in out
    assert "engagement-overhead breakdown" in out


def test_summary_json_is_machine_readable(trace_file, capsys):
    # 'repro why' consumes this payload for its run-overview preamble.
    assert trace_main(["summary", str(trace_file), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["records"] > 0
    assert payload["dropped"] == 0
    assert set(payload["tasks"]) == {"glxgears", "BitonicSort"}
    for task in payload["tasks"].values():
        assert task["submits"] >= task["completes"]
    assert payload["kind_counts"]["request_submit"] > 0
    assert len(payload["span_us"]) == 2


def test_summary_is_deterministic(capsys):
    trace_main(["summary", *RUN_ARGS])
    first = capsys.readouterr().out
    trace_main(["summary", *RUN_ARGS])
    second = capsys.readouterr().out
    assert first == second


def test_filter_by_kind_and_task(trace_file, tmp_path, capsys):
    out_path = tmp_path / "faults.jsonl"
    assert trace_main([
        "filter", str(trace_file), "--kind", "fault",
        "--task", "glxgears", "-o", str(out_path),
    ]) == 0
    lines = out_path.read_text().splitlines()
    records = [json.loads(line) for line in lines[1:]]
    assert records
    assert all(r["kind"] == "fault" for r in records)
    assert all(r["p"]["task"] == "glxgears" for r in records)


def test_export_chrome_loads_as_json(trace_file, tmp_path):
    out_path = tmp_path / "trace.chrome.json"
    assert trace_main([
        "export", str(trace_file), "--format", "chrome", "-o", str(out_path),
    ]) == 0
    document = json.loads(out_path.read_text())
    assert document["displayTimeUnit"] == "ms"
    events = document["traceEvents"]
    assert any(e["ph"] == "X" and e["name"] == "engagement episode"
               for e in events)
    assert any(e["ph"] == "M" for e in events)


def test_diff_identical_traces_exit_zero(trace_file, capsys):
    assert trace_main(["diff", str(trace_file), str(trace_file)]) == 0
    assert "equivalent" in capsys.readouterr().out


def test_diff_different_traces_exit_one(trace_file, tmp_path, capsys):
    other = tmp_path / "timeslice.jsonl"
    trace_main(["record", "--scheduler", "timeslice", *RUN_ARGS,
                "-o", str(other)])
    assert trace_main(["diff", str(trace_file), str(other)]) == 1
    out = capsys.readouterr().out
    assert "records by kind:" in out
    assert "token_pass" in out


def test_max_records_caps_the_recording(tmp_path):
    path = tmp_path / "capped.jsonl"
    trace_main(["record", *RUN_ARGS, "--max-records", "50", "-o", str(path)])
    lines = path.read_text().splitlines()
    header = json.loads(lines[0])
    assert header["records"] == 50
    assert header["dropped"] > 0


def test_summary_warns_loudly_about_dropped_records(tmp_path, capsys):
    path = tmp_path / "capped.jsonl"
    trace_main(["record", *RUN_ARGS, "--max-records", "50", "-o", str(path)])
    capsys.readouterr()
    assert trace_main(["summary", str(path)]) == 0
    out = capsys.readouterr().out
    assert "WARNING: ring buffer evicted" in out
    assert "PARTIAL" in out
    assert "--max-records" in out


def test_summary_of_uncapped_trace_has_no_warning(trace_file, capsys):
    assert trace_main(["summary", str(trace_file)]) == 0
    assert "WARNING" not in capsys.readouterr().out


def test_dropped_records_reach_the_run_collector():
    # A capped traced run under an active collector reports its evictions
    # into the cross-run record (satellite of the perf-telemetry work).
    from repro.experiments.runner import build_env, run_workloads
    from repro.obs.store import RunCollector, collecting
    from repro.sim.trace import TraceRecorder
    from repro.workloads.apps import make_app

    collector = RunCollector("traced")
    with collecting(collector):
        env = build_env("dfq", trace=TraceRecorder(max_records=50))
        run_workloads(env, [make_app("glxgears")], duration_us=60_000.0)
    assert env.trace.dropped > 0
    assert collector.trace_dropped == env.trace.dropped


def test_top_level_cli_delegates(capsys):
    assert repro_main(["trace", "kinds"]) == 0
    assert "barrier_begin" in capsys.readouterr().out


def test_export_strict_passes_on_complete_trace(trace_file, tmp_path):
    out_path = tmp_path / "ok.chrome.json"
    code = trace_main([
        "export", str(trace_file), "--strict", "-o", str(out_path),
    ])
    assert code == 0
    assert json.loads(out_path.read_text())["metadata"]["dropped"] == 0


def test_export_strict_fails_on_partial_trace(tmp_path, capsys):
    # Record with a tiny ring buffer so eviction is guaranteed, then
    # demand a complete trace: the export is still written, but the exit
    # code and a stderr diagnostic flag the loss.
    trace_path = tmp_path / "partial.jsonl"
    assert trace_main([
        "record", *RUN_ARGS, "--max-records", "50", "-o", str(trace_path),
    ]) == 0
    out_path = tmp_path / "partial.chrome.json"
    code = trace_main([
        "export", str(trace_path), "--strict", "-o", str(out_path),
    ])
    assert code == 1
    assert "PARTIAL" in capsys.readouterr().err
    document = json.loads(out_path.read_text())
    assert document["metadata"]["dropped"] > 0
    assert document["traceEvents"]

    # Without --strict the same export exits cleanly.
    assert trace_main([
        "export", str(trace_path), "-o", str(out_path),
    ]) == 0
