"""Trace summaries: counts, engagement replay, and diffs.

The summary is reconstructed from the trace alone, so these tests
cross-check it against the *other* observability paths — the metrics
registry and the interception layer's engagement ledger — which observe
the same run through independent hooks.
"""

import pytest

from repro.obs.summary import TaskSummary, diff_counts, diff_tasks, summarize
from tests.obs.conftest import traced_run


def test_counts_match_metrics_registry(dfq_run):
    env, trace, results = dfq_run
    summary = summarize(trace, end_us=env.sim.now)
    assert set(summary.tasks) == set(results)
    for name, task in summary.tasks.items():
        counters = env.metrics
        assert task.submits == counters.counter("submits").value(name)
        assert task.faults == counters.counter("faults").value(name)
        assert task.denials == counters.counter("denials").value(name)
        histogram = counters.histogram("request_latency_us")
        assert task.latency_count == histogram.count(name)
        if task.latency_count:
            assert task.mean_latency_us == pytest.approx(histogram.mean(name))


def test_counts_match_workload_results(dfq_run):
    env, trace, results = dfq_run
    summary = summarize(trace, end_us=env.sim.now)
    for name, result in results.items():
        task = summary.tasks[name]
        assert task.faults == result.metrics["faults"]
        assert task.submits == result.metrics["submits"]
        assert task.engaged_us == pytest.approx(result.metrics["engaged_us"])
        assert task.latency_count == result.metrics["request_latency_us_count"]


def test_engagement_replay_matches_ledger(dfq_run):
    env, trace, _results = dfq_run
    summary = summarize(trace, end_us=env.sim.now)
    ledger = env.scheduler.neon.engagement.snapshot(env.sim.now)
    for name, task in summary.tasks.items():
        expected = ledger.get(name)
        assert expected is not None, name
        assert task.engaged_us == pytest.approx(expected["engaged_us"]), name
        assert task.disengaged_us == pytest.approx(
            expected["disengaged_us"]), name
        # DFQ keeps tasks disengaged most of the time — that's the point.
        assert task.disengaged_us > task.engaged_us


def test_summary_rollup_fields(dfq_run):
    env, trace, _results = dfq_run
    summary = summarize(trace, end_us=env.sim.now)
    assert summary.records == len(trace)
    assert summary.dropped == 0
    assert summary.kind_counts == trace.kind_counts()
    assert summary.span_us == trace.span_us
    assert sum(summary.breakdown.values()) > 0


def test_mean_latency_none_when_no_completions():
    assert TaskSummary("idle").mean_latency_us is None


def test_diff_same_trace_is_empty(dfq_run):
    _env, trace, _results = dfq_run
    assert diff_counts(trace, trace) == {}
    summary = summarize(trace)
    assert diff_tasks(summary, summary) == {}


def test_diff_across_schedulers_reports_deltas(dfq_run):
    _env, dfq_trace, _results = dfq_run
    _env2, ts_trace, _results2 = traced_run(scheduler="timeslice",
                                            duration_us=100_000.0)
    count_deltas = diff_counts(dfq_trace, ts_trace)
    assert count_deltas["barrier_begin"][1] == 0  # timeslice has no episodes
    assert count_deltas["token_pass"][0] == 0  # dfq passes no tokens
    task_deltas = diff_tasks(summarize(dfq_trace), summarize(ts_trace))
    assert "glxgears" in task_deltas


def test_diff_handles_disjoint_tasks(dfq_run):
    _env, trace, _results = dfq_run
    _env2, solo_trace, _results2 = traced_run(apps=("oclParticles",),
                                              duration_us=100_000.0)
    deltas = diff_tasks(summarize(trace), summarize(solo_trace))
    # Tasks present on only one side diff against an empty summary.
    assert "oclParticles" in deltas
    assert "glxgears" in deltas
