"""Run-record store: round-trip, corruption handling, compare, gate."""

import json
import math

import pytest

from repro.obs.profile import PhaseProfiler
from repro.obs.store import (
    GateMismatch,
    RunCollector,
    RunStore,
    build_record,
    collecting,
    active_collector,
    compare_records,
    environment_fingerprint,
    flatten_record,
    gate_records,
    is_metric_path,
)


def make_record(
    experiment="figure4",
    wall_s=1.0,
    submits=100,
    duration_ms=60.0,
    seed=0,
    mean_us=250.0,
):
    collector = RunCollector(experiment)
    collector.add_cell(
        index=0,
        label="solo FFT direct",
        key="abc123",
        source="run",
        wall_s=wall_s / 2,
        cached_wall_s=0.0,
        duration_us=duration_ms * 1000.0,
        workloads={
            "FFT": {
                "metrics": {"submits": submits, "faults": 3},
                "rounds": {"mean_us": mean_us},
            }
        },
    )
    profiler = PhaseProfiler()
    profiler.add("cell-execute", wall_s / 2)
    return build_record(
        collector,
        profiler=profiler,
        wall_s=wall_s,
        wall_all_s=[wall_s, wall_s * 1.1],
        params={"duration_ms": duration_ms, "seed": seed, "workers": 1},
        cache_hits=1,
        cache_misses=2,
        output_sha256="0" * 64,
    )


# ----------------------------------------------------------------------
# Store round-trip
# ----------------------------------------------------------------------

def test_append_assigns_sequential_run_ids_and_round_trips(tmp_path):
    store = RunStore(tmp_path / "runs")
    first = store.append(make_record())
    second = store.append(make_record(wall_s=2.0))
    assert first["run_id"] == "figure4-0001"
    assert second["run_id"] == "figure4-0002"
    loaded = store.load()
    assert [record["run_id"] for record in loaded] == [
        "figure4-0001", "figure4-0002",
    ]
    # Round-trip is lossless: everything except the assigned id matches.
    assert loaded[1]["wall_s"] == 2.0
    assert loaded[0]["cells"][0]["workloads"]["FFT"]["metrics"]["submits"] == 100


def test_run_ids_count_per_experiment(tmp_path):
    store = RunStore(tmp_path)
    store.append(make_record(experiment="figure4"))
    record = store.append(make_record(experiment="figure6"))
    assert record["run_id"] == "figure6-0001"


def test_load_filters_by_experiment(tmp_path):
    store = RunStore(tmp_path)
    store.append(make_record(experiment="figure4"))
    store.append(make_record(experiment="figure6"))
    assert [r["experiment"] for r in store.load(experiment="figure6")] == [
        "figure6"
    ]


def test_resolve_by_id_last_and_index(tmp_path):
    store = RunStore(tmp_path)
    store.append(make_record(wall_s=1.0))
    store.append(make_record(wall_s=2.0))
    assert store.resolve("last")["wall_s"] == 2.0
    assert store.resolve("-2")["wall_s"] == 1.0
    assert store.resolve("figure4-0001")["wall_s"] == 1.0
    with pytest.raises(LookupError):
        store.resolve("figure4-9999")
    with pytest.raises(LookupError):
        store.resolve("17")


def test_corrupt_trailing_line_skips_and_warns(tmp_path, capsys):
    store = RunStore(tmp_path)
    store.append(make_record())
    with open(store.path, "a", encoding="utf-8") as handle:
        handle.write('{"schema": 1, "experiment": "figu')  # truncated write
    loaded = store.load()
    assert len(loaded) == 1
    assert loaded[0]["run_id"] == "figure4-0001"
    err = capsys.readouterr().err
    assert "skipping corrupt" in err
    assert str(store.path) in err
    # Appending after corruption still works and ids keep counting.
    record = store.append(make_record())
    assert record["run_id"] == "figure4-0002"


def test_empty_store_loads_empty(tmp_path):
    assert RunStore(tmp_path / "nowhere").load() == []


# ----------------------------------------------------------------------
# Fingerprint and record shape
# ----------------------------------------------------------------------

def test_environment_fingerprint_is_stable_within_process():
    first = environment_fingerprint()
    second = environment_fingerprint()
    assert first == second
    assert first["cpu_count"] >= 1
    assert first["python"]


def test_record_has_documented_top_level_fields():
    record = make_record()
    for field in (
        "schema", "run_id", "experiment", "unix_time", "params", "env",
        "wall_s", "wall_all_s", "phases", "cells", "sim_time_us", "cache",
        "trace", "fault_plans", "output_sha256", "note",
    ):
        assert field in record, field
    assert record["schema"] == 1
    assert record["run_id"] is None  # assigned at append time
    assert json.loads(json.dumps(record))  # JSON-able all the way down


def test_cells_are_sorted_by_farm_index():
    # Pool completion order varies run to run; the record must not.
    collector = RunCollector("figure6")
    for index in (2, 0, 1):
        collector.add_cell(
            index=index, label=f"cell{index}", key=None, source="pool",
            wall_s=0.1, cached_wall_s=0.0, duration_us=1000.0,
            workloads={},
        )
    record = build_record(collector)
    assert [cell["index"] for cell in record["cells"]] == [0, 1, 2]


def test_collecting_installs_and_restores():
    assert active_collector() is None
    collector = RunCollector("x")
    with collecting(collector):
        assert active_collector() is collector
    assert active_collector() is None


# ----------------------------------------------------------------------
# Flatten / classify
# ----------------------------------------------------------------------

def test_flatten_record_addresses_cells_by_position():
    flat = flatten_record(make_record())
    assert flat["cells.0.workloads.FFT.metrics.submits"] == 100.0
    assert flat["wall_s"] == 1.0
    assert flat["phases.cell-execute.total_s"] == 0.5
    assert flat["cache.hits"] == 1.0


def test_is_metric_path_excludes_host_side_timing():
    assert is_metric_path("cells.0.workloads.FFT.metrics.submits")
    assert is_metric_path("cells.3.duration_us")
    assert not is_metric_path("cells.0.wall_s")
    assert not is_metric_path("cells.0.cached_wall_s")
    assert not is_metric_path("cells.0.index")
    assert not is_metric_path("wall_s")
    assert not is_metric_path("phases.cell-execute.total_s")


# ----------------------------------------------------------------------
# Compare
# ----------------------------------------------------------------------

def test_compare_identical_records_except_identity_fields():
    left = make_record()
    right = json.loads(json.dumps(left))
    right["unix_time"] += 100.0
    right["env"]["git_sha"] = "different"
    right["output_sha256"] = "1" * 64
    assert compare_records(left, right) == {}


def test_compare_reports_metric_and_wall_drift():
    left = make_record(wall_s=1.0, submits=100)
    right = make_record(wall_s=2.0, submits=110)
    deltas = compare_records(left, right)
    assert deltas["wall_s"] == (1.0, 2.0)
    assert deltas["cells.0.workloads.FFT.metrics.submits"] == (100.0, 110.0)


def test_compare_treats_nan_as_equal_to_nan():
    # Zero-round cells at short horizons yield NaN means; NaN -> NaN is
    # "still undefined", not a diff.
    left = make_record(mean_us=float("nan"))
    right = make_record(mean_us=float("nan"))
    assert compare_records(left, right) == {}
    numeric = make_record(mean_us=250.0)
    deltas = compare_records(left, numeric)
    path = "cells.0.workloads.FFT.rounds.mean_us"
    assert path in deltas


# ----------------------------------------------------------------------
# Gate
# ----------------------------------------------------------------------

def test_gate_passes_within_thresholds():
    baseline = make_record(wall_s=1.0, submits=100)
    current = make_record(wall_s=1.1, submits=100)
    assert gate_records(current, baseline, wall_threshold_pct=20.0) == []


def test_gate_fails_on_wall_growth_only():
    baseline = make_record(wall_s=1.0)
    slower = make_record(wall_s=1.5)
    regressions = gate_records(slower, baseline, wall_threshold_pct=20.0)
    assert [r.kind for r in regressions] == ["wall"]
    assert regressions[0].delta_pct == pytest.approx(50.0)
    assert "wall_s" in regressions[0].describe()
    # Getting faster never fails.
    faster = make_record(wall_s=0.2)
    assert gate_records(faster, baseline, wall_threshold_pct=20.0) == []


def test_gate_fails_on_metric_drift_both_directions():
    baseline = make_record(submits=100)
    for drifted_submits in (90, 110):
        current = make_record(submits=drifted_submits)
        regressions = gate_records(
            current, baseline, wall_threshold_pct=1000.0,
            metric_threshold_pct=5.0,
        )
        assert [r.kind for r in regressions] == ["metric"]
        assert regressions[0].path == "cells.0.workloads.FFT.metrics.submits"


def test_gate_metric_threshold_defaults_to_wall_threshold():
    baseline = make_record(submits=100)
    current = make_record(submits=110)
    assert gate_records(current, baseline, wall_threshold_pct=20.0) == []
    regressions = gate_records(current, baseline, wall_threshold_pct=5.0)
    assert [r.kind for r in regressions] == ["metric"]


def test_gate_skips_nan_leaves_but_flags_nan_to_number():
    baseline_nan = make_record(mean_us=float("nan"))
    current_nan = make_record(mean_us=float("nan"))
    assert gate_records(
        current_nan, baseline_nan, wall_threshold_pct=1000.0,
        metric_threshold_pct=1.0,
    ) == []
    current_numeric = make_record(mean_us=250.0)
    regressions = gate_records(
        current_numeric, baseline_nan, wall_threshold_pct=1000.0,
        metric_threshold_pct=1.0,
    )
    paths = [r.path for r in regressions]
    assert "cells.0.workloads.FFT.rounds.mean_us" in paths
    assert all(math.isinf(r.delta_pct) for r in regressions)


def test_gate_mismatch_on_experiment_or_params():
    baseline = make_record(experiment="figure4")
    with pytest.raises(GateMismatch):
        gate_records(make_record(experiment="figure6"), baseline)
    with pytest.raises(GateMismatch):
        gate_records(make_record(duration_ms=120.0), baseline)
    with pytest.raises(GateMismatch):
        gate_records(make_record(seed=1), baseline)


def test_gate_ignores_leaves_missing_from_current():
    # Additive schema: a newer baseline may carry fields an older record
    # lacks; only shared leaves gate.
    baseline = make_record()
    current = make_record()
    del current["cells"][0]["workloads"]["FFT"]["rounds"]
    assert gate_records(
        current, baseline, wall_threshold_pct=1000.0, metric_threshold_pct=1.0
    ) == []
