"""``repro perf`` end to end: record, history, compare, gate on real runs."""

import json

import pytest

from repro.cli import main as repro_main
from repro.obs.perf import load_record_file, record_run
from repro.obs.store import RunStore

#: Short horizon: the full figure4 grid in well under a second.
DURATION = "5"


def perf(*argv):
    return repro_main(["perf", *argv])


@pytest.fixture
def store_dir(tmp_path):
    return tmp_path / "runs"


@pytest.fixture
def recorded(store_dir, capsys):
    """Two recorded figure4 runs; returns (store, captured stderr)."""
    for _ in range(2):
        assert perf(
            "--store-dir", str(store_dir),
            "record", "figure4", "--duration-ms", DURATION, "--no-cache",
        ) == 0
    captured = capsys.readouterr()
    return RunStore(store_dir), captured


def test_record_appends_and_reprints_the_table(recorded):
    store, captured = recorded
    records = store.load()
    assert [r["run_id"] for r in records] == ["figure4-0001", "figure4-0002"]
    # The experiment table still lands on stdout, the summary on stderr.
    assert "slowdown" in captured.out.lower() or "figure 4" in captured.out.lower()
    assert "recorded figure4-0001" in captured.err
    assert records[0]["cells"]
    assert records[0]["sim_time_us"] > 0


def test_record_run_records_identical_metrics_across_runs(tmp_path):
    first, out1 = record_run("figure4", duration_ms=5.0, no_cache=True)
    second, out2 = record_run("figure4", duration_ms=5.0, no_cache=True)
    assert out1 == out2  # determinism: same seed, same table
    assert first["output_sha256"] == second["output_sha256"]
    from repro.obs.store import compare_records, is_metric_path

    deltas = compare_records(first, second)
    assert [path for path in deltas if is_metric_path(path)] == []


def test_record_unknown_experiment_fails_cleanly(store_dir, capsys):
    assert perf("--store-dir", str(store_dir), "record", "figure99") == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_record_writes_single_record_output_file(store_dir, tmp_path, capsys):
    out = tmp_path / "rec.json"
    assert perf(
        "--store-dir", str(store_dir),
        "record", "figure4", "--duration-ms", DURATION, "--no-cache",
        "-o", str(out),
    ) == 0
    capsys.readouterr()
    record = load_record_file(out)
    assert record["run_id"] == "figure4-0001"
    assert record["experiment"] == "figure4"


def test_history_tabulates_runs(recorded, capsys):
    store, _ = recorded
    assert perf("--store-dir", str(store.directory), "history") == 0
    out = capsys.readouterr().out
    assert "figure4-0001" in out
    assert "figure4-0002" in out
    assert "wall s" in out


def test_history_with_metric_column(recorded, capsys):
    store, _ = recorded
    assert perf(
        "--store-dir", str(store.directory), "history",
        "--metric", "cells.0.duration_us",
    ) == 0
    out = capsys.readouterr().out
    assert "cells.0.duration_us" in out
    assert "5000" in out


def test_history_empty_store(store_dir, capsys):
    assert perf("--store-dir", str(store_dir), "history") == 1
    assert "no run records" in capsys.readouterr().err


def test_compare_two_runs_has_no_metric_drift(recorded, capsys):
    store, _ = recorded
    assert perf("--store-dir", str(store.directory), "compare", "-2", "last") == 0
    out = capsys.readouterr().out
    assert "simulation metrics (cells.*): identical" in out


def test_gate_last_run_against_first_as_file(recorded, tmp_path, capsys):
    store, _ = recorded
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(store.load()[0]))
    assert perf(
        "--store-dir", str(store.directory),
        "gate", "--baseline", str(baseline), "--threshold", "10000",
    ) == 0
    assert "gate ok" in capsys.readouterr().out


def test_gate_fails_on_forced_regression(recorded, tmp_path, capsys):
    store, _ = recorded
    doctored = store.load()[0]
    doctored["wall_s"] = 1e-9  # any real run is slower than this
    baseline = tmp_path / "bad.json"
    baseline.write_text(json.dumps(doctored))
    assert perf(
        "--store-dir", str(store.directory),
        "gate", "--baseline", str(baseline), "--threshold", "50",
    ) == 1
    out = capsys.readouterr().out
    assert "gate FAILED" in out
    assert "wall" in out


def test_gate_mismatch_exits_2(recorded, tmp_path, capsys):
    store, _ = recorded
    doctored = store.load()[0]
    doctored["params"]["duration_ms"] = 999.0
    baseline = tmp_path / "mismatch.json"
    baseline.write_text(json.dumps(doctored))
    assert perf(
        "--store-dir", str(store.directory),
        "gate", "--baseline", str(baseline),
    ) == 2
    assert "not comparable" in capsys.readouterr().err


def test_bundle_baseline_requires_matching_experiment(recorded, tmp_path, capsys):
    store, _ = recorded
    bundle = {
        "bench": "TEST",
        "records": {"figure4": store.load()[0], "figure6": store.load()[1]},
    }
    path = tmp_path / "BENCH_TEST.json"
    path.write_text(json.dumps(bundle))
    record = load_record_file(path, "figure4")
    assert record["run_id"] == "figure4-0001"
    with pytest.raises(ValueError):
        load_record_file(path, "figure9")
    with pytest.raises(ValueError):
        load_record_file(path)  # ambiguous without --experiment
    assert perf(
        "--store-dir", str(store.directory),
        "gate", "--baseline", str(path), "--experiment", "figure4",
        "--threshold", "10000",
    ) == 0
    capsys.readouterr()


def test_repeats_takes_min_wall_and_keeps_all_samples(tmp_path):
    record, _ = record_run("figure4", duration_ms=5.0, repeats=2, no_cache=True)
    assert len(record["wall_all_s"]) == 2
    assert record["wall_s"] == min(record["wall_all_s"])
    assert record["params"]["repeats"] == 2
