"""Host-phase profiler: spans, snapshots, null behavior, installation."""

from repro.obs import profile
from repro.obs.profile import (
    NullProfiler,
    PhaseProfiler,
    get_profiler,
    profiling,
)


def test_span_records_elapsed_time_and_count():
    profiler = PhaseProfiler()
    with profiler.span(profile.CELL_EXECUTE):
        pass
    with profiler.span(profile.CELL_EXECUTE):
        pass
    assert profiler.count(profile.CELL_EXECUTE) == 2
    assert profiler.total_s(profile.CELL_EXECUTE) >= 0.0


def test_add_charges_external_measurements():
    profiler = PhaseProfiler()
    profiler.add(profile.CACHE_READ, 0.25)
    profiler.add(profile.CACHE_READ, 0.75)
    assert profiler.total_s(profile.CACHE_READ) == 1.0
    assert profiler.count(profile.CACHE_READ) == 2


def test_snapshot_shape_is_sorted_and_json_like():
    profiler = PhaseProfiler()
    profiler.add(profile.SPEC_BUILD, 0.5)
    profiler.add(profile.CACHE_WRITE, 0.1)
    snapshot = profiler.snapshot()
    assert list(snapshot) == sorted(snapshot)
    assert snapshot[profile.SPEC_BUILD] == {"count": 1, "total_s": 0.5}


def test_span_records_even_when_the_block_raises():
    profiler = PhaseProfiler()
    try:
        with profiler.span(profile.RESULT_MERGE):
            raise ValueError("boom")
    except ValueError:
        pass
    assert profiler.count(profile.RESULT_MERGE) == 1


def test_null_profiler_records_nothing():
    null = NullProfiler()
    assert not null.enabled
    with null.span(profile.CELL_EXECUTE):
        pass
    null.add(profile.CELL_EXECUTE, 1.0)
    assert null.snapshot() == {}
    # Null spans are a shared object: no per-span allocation.
    assert null.span("a") is null.span("b")


def test_profiling_installs_and_restores():
    default = get_profiler()
    assert isinstance(default, NullProfiler)
    with profiling() as profiler:
        assert get_profiler() is profiler
        assert profiler.enabled
    assert get_profiler() is default


def test_unknown_phase_names_are_allowed():
    profiler = PhaseProfiler()
    profiler.add("custom-phase", 0.1)
    assert profiler.total_s("custom-phase") == 0.1
