"""Tests for the streaming window aggregator (repro.obs.windows)."""

import math

import pytest

from repro.obs.windows import (
    FixedBinLatency,
    WindowAggregator,
    WindowConfig,
    aggregate_trace,
)
from repro.sim.trace import TraceRecord, TraceRecorder


def _rec(time, kind, **payload):
    return TraceRecord(time, "test", kind, payload)


def _completion(time, task, latency_us, service_us=10.0):
    return _rec(
        time, "request_complete",
        task=task, latency_us=latency_us, service_us=service_us,
    )


# ----------------------------------------------------------------------
# WindowConfig
# ----------------------------------------------------------------------

def test_config_validates_window():
    with pytest.raises(ValueError):
        WindowConfig(0.0)
    with pytest.raises(ValueError):
        WindowConfig(100.0, slide_us=30.0)  # not an integer multiple
    config = WindowConfig(100.0, slide_us=25.0)
    assert config.buckets_per_window == 4
    assert WindowConfig(100.0).effective_slide_us == 100.0


# ----------------------------------------------------------------------
# FixedBinLatency: deterministic quantiles vs exact sorted quantiles
# ----------------------------------------------------------------------

def _exact_quantile(values, q):
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def test_fixed_bin_quantiles_within_bin_width_of_exact():
    # A deterministic but irregular stream of latencies.
    values = [((i * 7919) % 997) / 2.0 + 1.0 for i in range(500)]
    bin_us = 25.0
    histogram = FixedBinLatency(bin_us, max_us=10_000.0)
    for value in values:
        histogram.observe(value)
    for q in (0.5, 0.9, 0.95, 0.99, 1.0):
        exact = _exact_quantile(values, q)
        binned = histogram.quantile(q)
        # Upper-edge convention: never understates, overshoots by < 1 bin.
        assert exact <= binned <= exact + bin_us
    assert histogram.mean() == pytest.approx(sum(values) / len(values))


def test_fixed_bin_overflow_reports_exact_maximum():
    histogram = FixedBinLatency(50.0, max_us=100.0)
    histogram.observe(10.0)
    histogram.observe(12_345.0)
    assert histogram.quantile(1.0) == 12_345.0
    assert histogram.max == 12_345.0


def test_fixed_bin_empty_quantile_is_none():
    histogram = FixedBinLatency(50.0, max_us=100.0)
    assert histogram.quantile(0.5) is None
    assert histogram.mean() is None


def test_fixed_bin_merge_matches_combined_stream():
    left = FixedBinLatency(10.0, 1_000.0)
    right = FixedBinLatency(10.0, 1_000.0)
    combined = FixedBinLatency(10.0, 1_000.0)
    for i in range(40):
        value = float((i * 13) % 700)
        (left if i % 2 else right).observe(value)
        combined.observe(value)
    left.merge(right)
    assert left.counts == combined.counts
    assert left.count == combined.count
    assert left.quantile(0.95) == combined.quantile(0.95)


# ----------------------------------------------------------------------
# Tumbling windows
# ----------------------------------------------------------------------

def test_tumbling_windows_close_on_time():
    aggregator = WindowAggregator(WindowConfig(100.0))
    for t in (10.0, 50.0, 120.0, 250.0):
        aggregator(_completion(t, "a", latency_us=t))
    # Records at 120 and 250 crossed boundaries at 100 and 200.
    assert aggregator.windows_closed == 2
    aggregator.finish(300.0)
    assert aggregator.windows_closed == 3
    first, second, third = aggregator.snapshots
    assert (first.start_us, first.end_us) == (0.0, 100.0)
    assert first.tenants["a"].completions == 2
    assert second.tenants["a"].completions == 1
    assert third.tenants["a"].completions == 1
    # finish() landed exactly on a window boundary: the window is full.
    assert not third.partial


def test_finish_is_idempotent():
    aggregator = WindowAggregator(WindowConfig(100.0))
    aggregator(_completion(10.0, "a", latency_us=5.0))
    aggregator.finish(50.0)
    aggregator.finish(50.0)
    assert aggregator.windows_closed == 1
    assert aggregator.snapshots[0].partial


def test_share_samples_feed_jain():
    aggregator = WindowAggregator(WindowConfig(100.0))
    aggregator(_rec(40.0, "share_sample", task="a", usage_us=30.0,
                    interval_us=40.0))
    aggregator(_rec(40.0, "share_sample", task="b", usage_us=30.0,
                    interval_us=40.0))
    aggregator.finish(100.0)
    snapshot = aggregator.snapshots[0]
    assert snapshot.share_basis == "share_usage_us"
    assert snapshot.jain == pytest.approx(1.0)


def test_jain_falls_back_to_service_time():
    aggregator = WindowAggregator(WindowConfig(100.0))
    aggregator(_completion(10.0, "a", latency_us=5.0, service_us=30.0))
    aggregator(_completion(20.0, "b", latency_us=5.0, service_us=30.0))
    aggregator.finish(100.0)
    snapshot = aggregator.snapshots[0]
    assert snapshot.share_basis == "service_us"
    assert snapshot.jain == pytest.approx(1.0)


def test_empty_window_jain_is_nan():
    aggregator = WindowAggregator(WindowConfig(100.0))
    aggregator(_rec(10.0, "request_submit", task="a"))
    aggregator.finish(100.0)
    assert math.isnan(aggregator.snapshots[0].jain)


def test_engagement_ledger_splits_spans_across_buckets():
    aggregator = WindowAggregator(WindowConfig(100.0))
    aggregator(_rec(20.0, "channel_engaged", task="a", channel=1))
    aggregator(_rec(150.0, "channel_disengaged", task="a", channel=1))
    aggregator.finish(200.0)
    first, second = aggregator.snapshots
    assert first.tenants["a"].engaged_us == pytest.approx(80.0)
    assert second.tenants["a"].engaged_us == pytest.approx(50.0)
    assert second.tenants["a"].disengaged_us == pytest.approx(50.0)


def test_monitor_emits_are_ignored_by_the_sink():
    aggregator = WindowAggregator(WindowConfig(100.0))
    aggregator(_rec(500.0, "window.close", window=0))
    aggregator(_rec(500.0, "slo.violation", rule="r", task="a"))
    # Neither advanced the clock nor created tenants.
    assert aggregator.windows_closed == 0
    assert aggregator._bucket.start_us == 0.0


# ----------------------------------------------------------------------
# Sliding windows
# ----------------------------------------------------------------------

def test_sliding_windows_overlap():
    aggregator = WindowAggregator(WindowConfig(100.0, slide_us=50.0))
    aggregator(_completion(10.0, "a", latency_us=5.0))
    aggregator(_completion(60.0, "a", latency_us=5.0))
    aggregator(_completion(110.0, "a", latency_us=5.0))
    aggregator.finish(200.0)
    # Windows: [0,100), [50,150), [100,200) — the middle one sees the
    # completions at 60 and 110.
    spans = [(s.start_us, s.end_us) for s in aggregator.snapshots]
    assert spans == [(0.0, 100.0), (50.0, 150.0), (100.0, 200.0)]
    counts = [s.tenants["a"].completions for s in aggregator.snapshots]
    assert counts == [2, 2, 1]


# ----------------------------------------------------------------------
# Streaming-sink equivalence + eviction independence (the tentpole
# acceptance property)
# ----------------------------------------------------------------------

def _synthetic_stream(n=4_000, horizon_us=200_000.0):
    """A deterministic multi-tenant stream with all interesting kinds."""
    records = []
    step = horizon_us / n
    for i in range(n):
        t = (i + 1) * step
        task = "a" if i % 3 else "b"
        records.append(_rec(t, "request_submit", task=task))
        records.append(_completion(
            t, task, latency_us=float((i * 37) % 900),
            service_us=float(i % 50),
        ))
        if i % 7 == 0:
            records.append(_rec(
                t, "share_sample", task=task, usage_us=float(i % 20),
                interval_us=step,
            ))
        if i % 11 == 0:
            records.append(_rec(t, "channel_engaged", task=task, channel=i % 5))
        if i % 11 == 5:
            records.append(_rec(
                t, "channel_disengaged", task=task, channel=i % 5
            ))
    return records, horizon_us


def _snapshot_fingerprint(snapshot):
    return (
        snapshot.index, snapshot.start_us, snapshot.end_us, snapshot.partial,
        None if math.isnan(snapshot.jain) else snapshot.jain,
        snapshot.share_basis,
        {name: snapshot.tenants[name].to_dict(snapshot.span_us)
         for name in sorted(snapshot.tenants)},
    )


def test_live_sink_equals_replay_aggregation():
    records, horizon = _synthetic_stream()
    # Live: records pass through a recorder with the aggregator attached.
    recorder = TraceRecorder()
    live = WindowAggregator(WindowConfig(5_000.0))
    recorder.add_sink(live)
    for record in records:
        recorder.append(record)
    live.finish(horizon)
    # Replay: reconstruct from the recorder's retained ring buffer.
    replayed = aggregate_trace(
        recorder.records(), WindowConfig(5_000.0), end_us=horizon
    )
    assert len(live.snapshots) == len(replayed)
    for left, right in zip(live.snapshots, replayed):
        assert _snapshot_fingerprint(left) == _snapshot_fingerprint(right)


def test_eviction_does_not_affect_live_aggregates():
    records, horizon = _synthetic_stream()
    config = WindowConfig(5_000.0)

    uncapped = TraceRecorder()
    full = WindowAggregator(config)
    uncapped.add_sink(full)
    for record in records:
        uncapped.append(record)
    full.finish(horizon)

    capped = TraceRecorder(max_records=100)  # evicts nearly everything
    windowed = WindowAggregator(config)
    capped.add_sink(windowed)
    for record in records:
        capped.append(record)
    windowed.finish(horizon)

    assert capped.dropped > 0
    assert len(full.snapshots) == len(windowed.snapshots)
    for left, right in zip(full.snapshots, windowed.snapshots):
        assert _snapshot_fingerprint(left) == _snapshot_fingerprint(right)


def test_long_horizon_thousand_windows():
    # 1000 windows over a long horizon with a tiny ring buffer: aggregates
    # must still report every window with per-tenant quantiles intact.
    horizon = 1_000_000.0
    config = WindowConfig(1_000.0, latency_bin_us=20.0)
    recorder = TraceRecorder(max_records=64)
    aggregator = WindowAggregator(config)
    aggregator.keep_snapshots = 1_000
    recorder.add_sink(aggregator)
    n = 20_000
    step = horizon / n
    for i in range(n):
        t = (i + 1) * step
        task = "a" if i % 2 else "b"
        recorder.emit(
            t, "test", "request_complete",
            task=task, latency_us=float((i * 13) % 500), service_us=25.0,
        )
    aggregator.finish(horizon)
    assert recorder.dropped == n - 64
    assert aggregator.windows_closed == 1_000
    assert len(aggregator.snapshots) == 1_000
    for snapshot in aggregator.snapshots:
        assert set(snapshot.tenants) == {"a", "b"}
        for stats in snapshot.tenants.values():
            assert stats.latency is not None
            assert stats.latency.quantile(0.99) is not None
        assert not math.isnan(snapshot.jain)


def test_keep_snapshots_caps_memory():
    aggregator = WindowAggregator(WindowConfig(10.0))
    aggregator.keep_snapshots = 3
    for i in range(10):
        aggregator(_completion(float(i * 10 + 5), "a", latency_us=1.0))
    assert aggregator.windows_closed >= 8
    assert len(aggregator.snapshots) == 3
    # windows_closed keeps counting even though old snapshots dropped.
    assert aggregator.snapshots[-1].index == aggregator.windows_closed - 1
