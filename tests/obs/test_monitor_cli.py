"""The ``repro monitor`` CLI and its runner/farm integration, end to end."""

import json

import pytest

from repro.cli import main as repro_main
from repro.obs.monitor import (
    MonitorSession,
    active_monitor,
    main as monitor_main,
    monitoring,
)
from repro.obs.slo import SloRule
from repro.obs.windows import WindowConfig

#: Short inline run shared across the cheap tests.
RUN_ARGS = [
    "run", "--scheduler", "dfq", "--apps", "glxgears,BitonicSort",
    "--duration-ms", "60", "--window-us", "5000", "--quiet",
]


def test_rules_subcommand_lists_detectors(capsys):
    assert monitor_main(["rules"]) == 0
    out = capsys.readouterr().out
    for kind in ("starvation", "fairness_floor", "tail_latency",
                 "overuse_budget"):
        assert kind in out
    assert "rule schema" in out


def test_unknown_target_exits_2(capsys):
    assert monitor_main(["nonsense"]) == 2
    assert "unknown target" in capsys.readouterr().err


def test_run_mode_closes_windows(capsys):
    assert monitor_main(RUN_ARGS) == 0
    err = capsys.readouterr().err
    # 60 ms / 5 ms tumbling windows = 12 windows in exactly one run.
    assert "monitor: 12 windows" in err
    assert "across 1 runs" in err


def test_report_contains_windows_and_quantiles(tmp_path, capsys):
    report_path = tmp_path / "report.json"
    assert monitor_main([*RUN_ARGS, "--report", str(report_path)]) == 0
    capsys.readouterr()
    report = json.loads(report_path.read_text())
    assert report["windows_closed"] == 12
    assert report["window_us"] == 5000.0
    (run,) = report["runs"]
    assert len(run["windows"]) == 12
    busy = [w for w in run["windows"] if w["tenants"]]
    assert busy, "no window saw any tenant activity"
    for window in busy:
        for stats in window["tenants"].values():
            if stats["latency"] is not None:
                assert stats["latency"]["p99_us"] is not None


def test_impossible_slo_fires_and_fails(tmp_path, capsys):
    # A Jain floor of 1.0 cannot hold (shares are never perfectly equal),
    # so the violation must fire, surface in the report, AND flip the exit
    # code under --fail-on-violation.
    report_path = tmp_path / "report.json"
    code = monitor_main([
        *RUN_ARGS, "--slo-jain-floor", "1.0",
        "--fail-on-violation", "--report", str(report_path),
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "SLO VIOLATION fairness_floor" in err
    report = json.loads(report_path.read_text())
    assert report["violations"] >= 1
    events = report["runs"][0]["slo_events"]
    assert any(e["event"] == "violation" for e in events)


def test_quiet_still_renders_slo_transitions(capsys):
    assert monitor_main([*RUN_ARGS, "--slo-jain-floor", "1.0"]) == 0
    err = capsys.readouterr().err
    assert "SLO VIOLATION" in err
    assert "window " not in err  # per-window lines suppressed


def test_chaos_plan_produces_violations(tmp_path, capsys):
    # Acceptance criterion: a seeded chaos plan (hang victim) trips an SLO,
    # visible in the live rendering and the JSON report.  The hang stalls
    # the engine until the watchdog escalates against the victim, so the
    # escalation budget (max_escalations=0) is the detector that fires.
    report_path = tmp_path / "report.json"
    code = monitor_main([
        "run", "--chaos", "hang", "--scheduler", "dfq",
        "--duration-ms", "120", "--window-us", "10000",
        "--slo-overuse-us", "1000000",
        "--fail-on-violation", "--report", str(report_path),
    ])
    assert code == 1
    err = capsys.readouterr().err
    assert "SLO VIOLATION overuse_budget" in err
    report = json.loads(report_path.read_text())
    violations = [
        e for e in report["runs"][0]["slo_events"]
        if e["event"] == "violation"
    ]
    assert violations
    assert any(
        e["slo_kind"] == "overuse_budget" and e["task"] == "victim"
        for e in violations
    )


def test_store_appends_record_with_monitor_key(tmp_path, capsys):
    store_dir = tmp_path / "runs"
    assert monitor_main([
        *RUN_ARGS, "--store", "--store-dir", str(store_dir),
        "--note", "monitored",
    ]) == 0
    capsys.readouterr()
    from repro.obs.store import RunStore

    (record,) = RunStore(store_dir).load()
    assert record["note"] == "monitored"
    assert record["monitor"]["windows_closed"] == 12
    assert record["monitor"]["runs"] == 1
    assert record["params"]["window_us"] == 5000.0


def test_experiment_mode_stdout_is_byte_identical(capsys):
    assert repro_main(["figure4", "--duration-ms", "40"]) == 0
    plain = capsys.readouterr().out
    assert monitor_main(["figure4", "--duration-ms", "40", "--quiet"]) == 0
    monitored = capsys.readouterr().out
    assert monitored == plain
    assert "Figure 4" in plain


def test_monitored_runs_share_the_metrics_registry():
    # The simulation's own counters and the monitor's land in one registry,
    # so windows_closed is visible next to scheduler counters.
    session = MonitorSession(WindowConfig(5_000.0))
    from repro.experiments.cells import CellSpec, WorkloadSpec

    spec = CellSpec(
        scheduler="dfq",
        workloads=(WorkloadSpec.app("glxgears"),),
        duration_us=50_000.0,
        warmup_us=0.0,
    )
    with monitoring(session):
        assert active_monitor() is session
        spec.run()
    assert active_monitor() is None
    (monitor,) = session.monitors
    counters = monitor.metrics.snapshot()["counters"]
    assert counters["windows_closed"] == {"": 10.0}
    assert "submits" in counters  # the simulation's own counters, same registry
    assert session.windows_closed == 10


def test_session_forces_serial_cell_farm():
    # Monitored cells must execute in-process even when workers > 1: the
    # pool would strand the module-level session hook.
    from repro.experiments.cells import CellSpec, WorkloadSpec
    from repro.experiments.parallel import run_cells

    specs = [
        CellSpec(
            scheduler="dfq",
            workloads=(WorkloadSpec.app("glxgears"),),
            duration_us=30_000.0,
            warmup_us=0.0,
            seed=seed,
        )
        for seed in (0, 1)
    ]
    session = MonitorSession(WindowConfig(5_000.0))
    with monitoring(session):
        results = run_cells(specs, workers=4)
    assert len(results) == 2
    assert len(session.monitors) == 2
    # Cell labels flow into the per-run monitor labels.
    assert [m.label for m in session.monitors] == [s.label() for s in specs]


def test_hysteresis_flag_delays_inline_rules(capsys):
    # for_windows=100 can never accumulate in a 12-window run.
    assert monitor_main([
        *RUN_ARGS, "--slo-jain-floor", "1.0", "--slo-for-windows", "100",
        "--fail-on-violation",
    ]) == 0
    assert "SLO VIOLATION" not in capsys.readouterr().err


def test_invalid_chaos_plan_raises():
    with pytest.raises(KeyError):
        monitor_main(["run", "--chaos", "not-a-plan"])
