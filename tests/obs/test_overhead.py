"""The tentpole invariant: the trace alone reproduces the scheduler's
live ``time_breakdown`` overhead accounting."""

import pytest

from repro.obs.overhead import BREAKDOWN_KEYS, overhead_breakdown, overhead_report
from tests.obs.conftest import traced_run


def test_trace_reproduces_live_breakdown_dfq(dfq_run):
    env, trace, _results = dfq_run
    derived = overhead_breakdown(trace, end_us=env.sim.now)
    live = env.scheduler.time_breakdown
    assert set(derived) == set(BREAKDOWN_KEYS)
    for key in BREAKDOWN_KEYS:
        assert derived[key] == pytest.approx(live[key]), key
    # The run actually exercised every component of the breakdown.
    assert all(derived[key] > 0 for key in BREAKDOWN_KEYS)


def test_trace_reproduces_live_breakdown_dfq_hw():
    env, trace, _results = traced_run(scheduler="dfq-hw")
    derived = overhead_breakdown(trace, end_us=env.sim.now)
    live = env.scheduler.time_breakdown
    for key in BREAKDOWN_KEYS:
        assert derived[key] == pytest.approx(live[key]), key


def test_empty_trace_yields_zero_breakdown():
    from repro.sim.trace import TraceRecorder

    derived = overhead_breakdown(TraceRecorder())
    assert derived == {key: 0.0 for key in BREAKDOWN_KEYS}


def test_trailing_freerun_excluded():
    from repro.obs import events
    from repro.sim.trace import TraceRecorder

    trace = TraceRecorder()
    trace.emit(0.0, "dfq", events.BARRIER_BEGIN, episode=1)
    trace.emit(10.0, "dfq", events.FREERUN_START,
               allowed=1, denied=0, freerun_us=100.0)
    # Run ends mid-free-run: the scheduled span must not be counted,
    # matching the live accounting (which adds it only on completion).
    partial = overhead_breakdown(trace, end_us=50.0)
    assert partial["engagement_us"] == 10.0
    assert partial["freerun_us"] == 0.0
    complete = overhead_breakdown(trace, end_us=110.0)
    assert complete["freerun_us"] == 100.0


def test_overhead_report_lines(dfq_run):
    env, trace, _results = dfq_run
    breakdown = overhead_breakdown(trace, end_us=env.sim.now)
    lines = overhead_report(breakdown, env.sim.now)
    text = "\n".join(lines)
    assert "engagement" in text
    assert "drain wait" in text
    assert "sampling" in text
    assert "free-run" in text
    assert "%" in text
