"""JSONL round-trip and Chrome trace-event export."""

import io
import json

import pytest

from repro.obs import events
from repro.obs.export import (
    JSONL_FORMAT,
    JSONL_VERSION,
    chrome_trace_events,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.trace import TraceRecorder


def small_trace():
    trace = TraceRecorder()
    trace.emit(10.0, "gpu0", events.REQUEST_SUBMIT,
               task="a", channel=1, ref=1, size_us=50.0, request_kind="compute")
    trace.emit(60.0, "gpu0", events.REQUEST_COMPLETE,
               task="a", channel=1, ref=1, service_us=50.0, latency_us=50.0)
    trace.emit(70.0, "kernel", events.FAULT, task="a", channel=1, ref=2)
    trace.emit(80.0, "dfq", events.BARRIER_BEGIN, episode=1)
    trace.emit(95.0, "dfq", events.FREERUN_START,
               allowed=1, denied=0, freerun_us=100.0)
    return trace


def test_jsonl_round_trip():
    trace = small_trace()
    buffer = io.StringIO()
    count = write_jsonl(trace, buffer)
    assert count == len(trace)

    buffer.seek(0)
    restored = read_jsonl(buffer)
    assert len(restored) == len(trace)
    assert restored.kind_counts() == trace.kind_counts()
    assert restored.span_us == trace.span_us
    original = list(trace.records())
    for left, right in zip(original, restored.records()):
        assert (left.time, left.source, left.kind) == (
            right.time, right.source, right.kind)
        assert left.payload == right.payload


def test_jsonl_header_carries_dropped_count():
    trace = TraceRecorder(max_records=2)
    for t in (1.0, 2.0, 3.0):
        trace.emit(t, "x", events.FAULT, task="a")
    buffer = io.StringIO()
    write_jsonl(trace, buffer)
    buffer.seek(0)
    header = json.loads(buffer.readline())
    assert header["format"] == JSONL_FORMAT
    assert header["version"] == JSONL_VERSION
    assert header["dropped"] == 1
    buffer.seek(0)
    assert read_jsonl(buffer).dropped == 1


def test_read_jsonl_rejects_foreign_files():
    with pytest.raises(ValueError, match="empty"):
        read_jsonl(io.StringIO(""))
    with pytest.raises(ValueError, match="format"):
        read_jsonl(io.StringIO('{"format": "something-else"}\n'))
    with pytest.raises(ValueError, match="version"):
        read_jsonl(io.StringIO(
            '{"format": "%s", "version": 99}\n' % JSONL_FORMAT))


def test_chrome_events_structure():
    trace = small_trace()
    chrome = chrome_trace_events(trace)
    phases = [event["ph"] for event in chrome]
    # Metadata first, then one instant per record plus synthetic slices.
    assert phases.count("i") == len(trace)
    assert phases.count("M") >= 3  # process + scheduler/system rows + tasks
    slices = [event for event in chrome if event["ph"] == "X"]
    names = {event["name"] for event in slices}
    assert "request 1" in names
    assert "engagement episode" in names
    request_slice = next(e for e in slices if e["name"] == "request 1")
    assert request_slice["ts"] == 10.0  # complete at 60 minus 50µs service
    assert request_slice["dur"] == 50.0
    episode = next(e for e in slices if e["name"] == "engagement episode")
    assert episode["ts"] == 80.0
    assert episode["dur"] == 15.0


def test_chrome_rows_split_by_task_and_layer():
    trace = small_trace()
    chrome = chrome_trace_events(trace)
    by_name = {}
    for event in chrome:
        if event["ph"] == "M" and event["name"] == "thread_name":
            by_name[event["args"]["name"]] = event["tid"]
    assert "task a" in by_name
    assert "scheduler" in by_name
    barrier = next(e for e in chrome if e.get("cat") == "barrier_begin")
    assert barrier["tid"] == by_name["scheduler"]
    fault = next(e for e in chrome if e.get("cat") == "fault")
    assert fault["tid"] == by_name["task a"]


def test_write_chrome_trace_is_valid_json():
    buffer = io.StringIO()
    count = write_chrome_trace(small_trace(), buffer)
    document = json.loads(buffer.getvalue())
    assert document["displayTimeUnit"] == "ms"
    assert len(document["traceEvents"]) == count


def test_full_run_round_trips_and_exports(dfq_run):
    _env, trace, _results = dfq_run
    buffer = io.StringIO()
    write_jsonl(trace, buffer)
    buffer.seek(0)
    restored = read_jsonl(buffer)
    assert restored.kind_counts() == trace.kind_counts()

    chrome = io.StringIO()
    write_chrome_trace(restored, chrome)
    document = json.loads(chrome.getvalue())
    assert len(document["traceEvents"]) > len(trace)


def test_chrome_metadata_carries_dropped_count():
    capped = TraceRecorder(max_records=2)
    for t in (1.0, 2.0, 3.0):
        capped.emit(t, "x", events.FAULT, task="a")
    buffer = io.StringIO()
    write_chrome_trace(capped, buffer)
    document = json.loads(buffer.getvalue())
    assert document["metadata"]["format"] == JSONL_FORMAT
    assert document["metadata"]["records"] == 2
    assert document["metadata"]["dropped"] == 1

    buffer = io.StringIO()
    write_chrome_trace(small_trace(), buffer)
    assert json.loads(buffer.getvalue())["metadata"]["dropped"] == 0
