"""Shared fixtures: one traced DFQ run reused across the obs test suite."""

import pytest

from repro.experiments.runner import build_env, run_workloads
from repro.sim.trace import TraceRecorder
from repro.workloads.apps import make_app

#: Short but nontrivial: several engagement episodes, a denial or two.
DURATION_US = 200_000.0


def traced_run(scheduler="dfq", apps=("glxgears", "BitonicSort"), seed=0,
               duration_us=DURATION_US, max_records=None):
    """Run a small simulation with tracing on; returns (env, trace, results)."""
    trace = TraceRecorder(max_records=max_records)
    env = build_env(scheduler, seed=seed, trace=trace)
    workloads = [make_app(name) for name in apps]
    results = run_workloads(env, workloads, duration_us=duration_us)
    return env, trace, results


@pytest.fixture(scope="module")
def dfq_run():
    return traced_run()
