"""Counters, histograms, and the registry's task view."""

import pytest

from repro.obs.metrics import Counter, Histogram, MetricsRegistry


def test_counter_increments_per_label():
    counter = Counter("faults")
    counter.inc("a")
    counter.inc("a", 2.0)
    counter.inc("b")
    assert counter.value("a") == 3.0
    assert counter.value("b") == 1.0
    assert counter.value("missing") == 0.0
    assert counter.total == 4.0


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter("x").inc("a", -1.0)


def test_counter_snapshot_sorted():
    counter = Counter("x")
    counter.inc("zeta")
    counter.inc("alpha")
    assert list(counter.snapshot()) == ["alpha", "zeta"]


def test_histogram_stats():
    histogram = Histogram("lat", buckets=(10.0, 100.0, 1000.0))
    for value in (5.0, 50.0, 500.0, 5000.0):
        histogram.observe("t", value)
    assert histogram.count("t") == 4
    assert histogram.mean("t") == pytest.approx(1388.75)
    snapshot = histogram.snapshot()["t"]
    assert snapshot["count"] == 4
    assert snapshot["min"] == 5.0
    assert snapshot["max"] == 5000.0
    assert snapshot["buckets"] == [1, 1, 1, 1]  # one per bucket + overflow


def test_histogram_quantile_bucket_resolution():
    histogram = Histogram("lat", buckets=(10.0, 100.0))
    for _ in range(9):
        histogram.observe("t", 5.0)
    histogram.observe("t", 50.0)
    assert histogram.quantile("t", 0.5) == 10.0
    assert histogram.quantile("t", 1.0) == 100.0
    histogram.observe("t", 1e9)
    assert histogram.quantile("t", 1.0) == float("inf")
    assert histogram.quantile("t", 0.5) == 10.0
    assert histogram.mean("missing") is None
    assert histogram.quantile("missing", 0.5) is None


def test_histogram_rejects_bad_buckets():
    with pytest.raises(ValueError):
        Histogram("x", buckets=())
    with pytest.raises(ValueError):
        Histogram("x", buckets=(10.0, 5.0))
    with pytest.raises(ValueError):
        Histogram("x", buckets=(10.0,)).quantile("t", 1.5)


def test_registry_reuses_instruments():
    registry = MetricsRegistry()
    assert registry.counter("faults") is registry.counter("faults")
    assert registry.histogram("lat") is registry.histogram("lat")
    registry.inc("faults", "a")
    registry.inc("faults", "a")
    assert registry.counter("faults").value("a") == 2.0


def test_registry_snapshot_shape():
    registry = MetricsRegistry()
    registry.inc("faults", "a")
    registry.observe("lat", "a", 42.0)
    snapshot = registry.snapshot()
    assert snapshot["counters"]["faults"] == {"a": 1.0}
    assert snapshot["histograms"]["lat"]["labels"]["a"]["count"] == 1
    # Snapshot must be JSON-able as-is.
    import json

    json.dumps(snapshot)


def test_task_view_flat_and_uniform():
    registry = MetricsRegistry()
    registry.inc("faults", "a", 3.0)
    registry.observe("lat", "a", 100.0)
    view_a = registry.task_view("a")
    assert view_a["faults"] == 3.0
    assert view_a["lat_count"] == 1.0
    assert view_a["lat_mean"] == 100.0
    assert view_a["lat_p95"] > 0.0
    # A task with no data gets the same keys, all zeros.
    view_b = registry.task_view("b")
    assert set(view_b) == set(view_a)
    assert all(value == 0.0 for value in view_b.values())


# ----------------------------------------------------------------------
# Registry completeness: the KNOWN_* catalogs cannot silently drift from
# the instrument names the source tree actually bumps.
# ----------------------------------------------------------------------

def _instrument_names(pattern):
    import re
    from pathlib import Path

    src = Path(__file__).resolve().parents[2] / "src" / "repro"
    regex = re.compile(pattern)
    found = {}
    for path in sorted(src.rglob("*.py")):
        if path.name == "metrics.py":
            continue  # the catalog itself
        for name in regex.findall(path.read_text()):
            found.setdefault(name, str(path.relative_to(src)))
    return found


def test_every_counter_site_is_cataloged():
    from repro.obs.metrics import KNOWN_COUNTERS

    sites = _instrument_names(
        r"""metrics\.(?:inc|counter)\(\s*["']([a-z_]+)["']"""
    )
    assert sites, "the scan found no counter sites at all (regex broken?)"
    unknown = {n: f for n, f in sites.items() if n not in KNOWN_COUNTERS}
    assert not unknown, f"counters bumped but not in KNOWN_COUNTERS: {unknown}"


def test_every_histogram_site_is_cataloged():
    from repro.obs.metrics import KNOWN_HISTOGRAMS

    sites = _instrument_names(
        r"""metrics\.(?:observe|histogram)\(\s*["']([a-z_]+)["']"""
    )
    assert sites, "the scan found no histogram sites at all (regex broken?)"
    unknown = {n: f for n, f in sites.items() if n not in KNOWN_HISTOGRAMS}
    assert not unknown, (
        f"histograms observed but not in KNOWN_HISTOGRAMS: {unknown}"
    )


def test_monitor_counters_are_cataloged():
    from repro.obs.metrics import KNOWN_COUNTERS

    for name in ("windows_closed", "slo_violations", "slo_recoveries"):
        assert name in KNOWN_COUNTERS
