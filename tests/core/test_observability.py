"""Scheduler observability discipline (DESIGN.md).

Schedulers must obtain device knowledge only through the interception
layer: faults, reference-counter polls, command-queue scans, and the one
sanctioned §6.2 query (the currently running context, used for runaway
attribution).  Ground-truth *usage accounting* is reserved for metrics and
the explicitly-labeled vendor-statistics ablation (dfq-hw).
"""

import pytest

from repro.experiments.runner import build_env
from repro.gpu.device import GpuDevice
from repro.workloads.throttle import Throttle

GUARDED = ("task_usage", "task_usage_by_kind")


@pytest.mark.parametrize(
    "scheduler",
    ["timeslice", "disengaged-timeslice", "dfq", "engaged-fq", "drr", "credit"],
)
def test_schedulers_never_read_ground_truth_usage(scheduler, monkeypatch, quick_costs):
    env = build_env(scheduler, costs=quick_costs)

    def forbidden(self, *args, **kwargs):
        raise AssertionError(
            f"{scheduler} read ground-truth usage accounting"
        )

    for name in GUARDED:
        monkeypatch.setattr(GpuDevice, name, forbidden)
    workloads = [Throttle(60.0, name="a"), Throttle(240.0, name="b")]
    for workload in workloads:
        workload.start(env.sim, env.kernel, env.rng)
    env.sim.run(until=100_000.0)  # raises if any scheduler path reads usage


def test_hw_ablation_is_allowed_to_read_usage(quick_costs):
    env = build_env("dfq-hw", costs=quick_costs)
    workloads = [Throttle(60.0, name="a"), Throttle(240.0, name="b")]
    for workload in workloads:
        workload.start(env.sim, env.kernel, env.rng)
    env.sim.run(until=100_000.0)
    assert env.scheduler._usage_marks  # it did consult the vendor stats
