"""Scheduler-test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_env, run_workloads
from repro.osmodel.costs import CostParams
from repro.workloads.throttle import Throttle


@pytest.fixture
def fast_costs() -> CostParams:
    """Short periods for quick scheduler convergence in tests."""
    costs = CostParams()
    costs.timeslice_us = 3_000.0
    costs.sample_max_us = 1_000.0
    costs.max_request_us = 15_000.0
    return costs


def run_pair(
    scheduler: str,
    costs: CostParams,
    size_a: float = 100.0,
    size_b: float = 400.0,
    duration_us: float = 150_000.0,
    seed: int = 0,
):
    """Run two Throttles; return (env, workload_a, workload_b)."""
    env = build_env(scheduler, seed=seed, costs=costs)
    a = Throttle(size_a, name="task-a")
    b = Throttle(size_b, name="task-b")
    run_workloads(env, [a, b], duration_us, warmup_us=duration_us / 5)
    return env, a, b


def usage_share(env, workload) -> float:
    usage = env.device.task_usage(workload.task)
    total = sum(
        env.device.task_usage(task) for task in env.kernel.tasks
    )
    return usage / total if total else float("nan")
