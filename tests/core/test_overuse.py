"""Tests for the overuse ledger."""

import pytest

from repro.core.overuse import OveruseLedger
from repro.osmodel.task import Task


@pytest.fixture
def task():
    return Task("t")


def test_no_skip_without_charge(task):
    ledger = OveruseLedger(30_000.0)
    assert not ledger.should_skip(task)


def test_charge_below_slice_does_not_skip(task):
    ledger = OveruseLedger(30_000.0)
    ledger.charge(task, 29_999.0)
    assert not ledger.should_skip(task)
    assert ledger.accrued(task) == 29_999.0


def test_skip_deducts_one_timeslice(task):
    ledger = OveruseLedger(30_000.0)
    ledger.charge(task, 45_000.0)
    assert ledger.should_skip(task)
    assert ledger.accrued(task) == 15_000.0
    assert not ledger.should_skip(task)


def test_large_overuse_skips_multiple_turns(task):
    ledger = OveruseLedger(30_000.0)
    ledger.charge(task, 100_000.0)
    skips = 0
    while ledger.should_skip(task):
        skips += 1
    assert skips == 3
    assert ledger.accrued(task) == 10_000.0


def test_charges_accumulate(task):
    ledger = OveruseLedger(30_000.0)
    ledger.charge(task, 20_000.0)
    ledger.charge(task, 20_000.0)
    assert ledger.should_skip(task)


def test_negative_charge_rejected(task):
    ledger = OveruseLedger(30_000.0)
    with pytest.raises(ValueError):
        ledger.charge(task, -1.0)


@pytest.mark.parametrize(
    "bogus", [float("nan"), float("inf"), float("-inf")]
)
def test_non_finite_charge_rejected(task, bogus):
    ledger = OveruseLedger(30_000.0)
    with pytest.raises(ValueError, match="finite"):
        ledger.charge(task, bogus)
    # The rejected charge must not have touched the ledger.
    assert ledger.accrued(task) == 0.0
    assert not ledger.should_skip(task)


def test_invalid_timeslice_rejected():
    with pytest.raises(ValueError):
        OveruseLedger(0.0)


def test_forget_clears_state(task):
    ledger = OveruseLedger(30_000.0)
    ledger.charge(task, 50_000.0)
    ledger.forget(task)
    assert not ledger.should_skip(task)
