"""Tests for weighted Disengaged Fair Queueing (proportional shares)."""

import pytest

from repro.core.disengaged_fq import DisengagedFairQueueing
from repro.experiments.runner import build_env, run_workloads
from repro.workloads.throttle import Throttle

from tests.core.conftest import usage_share


def _weighted_run(weights, duration_us=300_000.0, costs=None):
    scheduler = DisengagedFairQueueing(weights=weights)
    env = build_env(scheduler, costs=costs)
    gold = Throttle(600.0, name="gold")
    bronze = Throttle(600.0, name="bronze")
    run_workloads(env, [gold, bronze], duration_us, duration_us / 5)
    return env, gold, bronze


def test_equal_weights_equal_shares(fast_costs):
    env, gold, bronze = _weighted_run({}, costs=fast_costs)
    assert 0.4 < usage_share(env, gold) < 0.6


def test_weight_3_gets_about_three_quarters(fast_costs):
    env, gold, bronze = _weighted_run({"gold": 3.0}, costs=fast_costs)
    share = usage_share(env, gold)
    assert share > 0.6, f"gold share {share:.2f}"


def test_weights_do_not_break_protection(fast_costs):
    from repro.workloads.adversarial import InfiniteKernel

    scheduler = DisengagedFairQueueing(weights={"victim": 2.0})
    env = build_env(scheduler, costs=fast_costs)
    attacker = InfiniteKernel(normal_size_us=50.0, normal_requests=3)
    victim = Throttle(100.0, name="victim")
    run_workloads(env, [attacker, victim], 200_000.0, 0.0)
    assert attacker.killed
    assert not victim.killed


def test_default_weight_is_one():
    scheduler = DisengagedFairQueueing()
    assert scheduler.share_weights == {}
