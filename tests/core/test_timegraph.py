"""Tests for the TimeGraph reservation baseline."""

import pytest

from repro.core.timegraph import TimeGraphReservation
from repro.experiments.runner import build_env, run_workloads
from repro.workloads.throttle import Throttle

from tests.core.conftest import run_pair, usage_share


def test_equal_reservations_give_equal_shares(fast_costs):
    env, small, large = run_pair(
        "timegraph", fast_costs, size_a=50.0, size_b=500.0, duration_us=250_000.0
    )
    assert 0.3 < usage_share(env, small) < 0.7


def test_explicit_reservation_is_honored(fast_costs):
    scheduler = TimeGraphReservation(reservations={"vip": 0.75})
    env = build_env(scheduler, costs=fast_costs)
    vip = Throttle(200.0, name="vip")
    peasant = Throttle(200.0, name="peasant")
    run_workloads(env, [vip, peasant], 250_000.0, 50_000.0)
    vip_share = usage_share(env, vip)
    assert vip_share > 0.6, f"vip got only {vip_share:.2f}"


def test_unreserved_tasks_split_remainder():
    scheduler = TimeGraphReservation(reservations={"vip": 0.5})
    env = build_env(scheduler)
    vip = Throttle(100.0, name="vip")
    a = Throttle(100.0, name="a")
    b = Throttle(100.0, name="b")
    run_workloads(env, [vip, a, b], 50_000.0, 10_000.0)
    assert scheduler.share_of(vip.task) == pytest.approx(0.5)
    assert scheduler.share_of(a.task) == pytest.approx(0.25)
    assert scheduler.share_of(b.task) == pytest.approx(0.25)


def test_posterior_enforcement_penalizes_overuse(fast_costs):
    env, small, large = run_pair(
        "timegraph", fast_costs, size_a=50.0, size_b=800.0, duration_us=150_000.0
    )
    assert env.scheduler.penalties > 0


def test_every_request_intercepted(fast_costs):
    env, a, b = run_pair("timegraph", fast_costs, duration_us=40_000.0)
    for channel in env.device.channels.values():
        assert channel.register_page.protected
