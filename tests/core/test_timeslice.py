"""Tests for the engaged Timeslice scheduler."""

import math

from repro.experiments.runner import build_env, run_workloads
from repro.workloads.adversarial import InfiniteKernel
from repro.workloads.throttle import Throttle

from tests.core.conftest import run_pair, usage_share


def test_all_channels_stay_protected(fast_costs):
    env, a, b = run_pair("timeslice", fast_costs, duration_us=30_000.0)
    for channel in env.device.channels.values():
        assert channel.register_page.protected


def test_every_request_faults(fast_costs):
    env, a, b = run_pair("timeslice", fast_costs, duration_us=30_000.0)
    # Every submission was intercepted; at most one fault per task may
    # still be blocked in the handler when the clock stops.
    assert env.kernel.fault_count >= env.kernel.submit_count
    assert env.kernel.fault_count - env.kernel.submit_count <= 2


def test_fair_shares_despite_size_asymmetry(fast_costs):
    env, small, large = run_pair(
        "timeslice", fast_costs, size_a=50.0, size_b=500.0,
        duration_us=200_000.0,
    )
    assert 0.35 < usage_share(env, small) < 0.65
    assert 0.35 < usage_share(env, large) < 0.65


def test_mutual_exclusion_within_slice(fast_costs):
    """Only the token holder's requests run: no interleaving mid-slice."""
    env, a, b = run_pair("timeslice", fast_costs, duration_us=60_000.0)
    # Reconstruct the service interleaving from request finish times.
    requests = sorted(
        (request for workload in (a, b) for request in workload.requests
         if request.finish_time is not None and not request.aborted),
        key=lambda request: request.finish_time,
    )
    owner_sequence = [request.channel.task.name for request in requests]
    # Count alternations; exclusive slices mean long same-owner runs, far
    # fewer alternations than per-request round-robin would produce.
    alternations = sum(
        1 for x, y in zip(owner_sequence, owner_sequence[1:]) if x != y
    )
    assert alternations < len(owner_sequence) / 5


def test_runaway_request_kills_task(fast_costs):
    env = build_env("timeslice", costs=fast_costs)
    attacker = InfiniteKernel(normal_size_us=50.0, normal_requests=5)
    victim = Throttle(100.0, name="victim")
    results = run_workloads(env, [attacker, victim], 200_000.0, 0.0)
    assert attacker.killed
    assert results["infinite-kernel"].kill_reason is not None
    assert not victim.killed
    assert len(victim.rounds) > 100


def test_overuse_is_charged_for_slice_overrun(fast_costs):
    """A task whose requests overrun slice boundaries accrues overuse."""
    env = build_env("timeslice", costs=fast_costs)
    # Requests of 0.9 timeslices: the paper's motivating overuse example.
    hog = Throttle(fast_costs.timeslice_us * 0.9, name="hog")
    peer = Throttle(100.0, name="peer")
    run_workloads(env, [hog, peer], 100_000.0, 0.0)
    assert env.scheduler.overuse.accrued(hog.task) >= 0.0
    # Despite the hog's awkward request size, shares remain balanced.
    assert 0.3 < usage_share(env, hog) < 0.7


def test_token_rotates_among_tasks(fast_costs):
    env, a, b = run_pair("timeslice", fast_costs, duration_us=60_000.0)
    assert env.scheduler.slices_granted >= 10


def test_single_task_standalone_overhead_is_bounded():
    # Paper-default periods: the 30 ms timeslice amortizes drain idleness,
    # leaving mostly the per-request interception cost.
    base_env = build_env("direct")
    base = Throttle(100.0)
    run_workloads(base_env, [base], 200_000.0, 40_000.0)
    ts_env = build_env("timeslice")
    managed = Throttle(100.0)
    run_workloads(ts_env, [managed], 200_000.0, 40_000.0)
    slowdown = (
        managed.round_stats(40_000.0).mean_us / base.round_stats(40_000.0).mean_us
    )
    assert 1.0 <= slowdown < 1.25
