"""Unit tests for Disengaged Fair Queueing internals."""

import pytest

from repro.core.disengaged_fq import DisengagedFairQueueing
from repro.experiments.runner import build_env, run_workloads
from repro.gpu.request import RequestKind
from repro.workloads.apps import make_app
from repro.workloads.throttle import Throttle


def _attached(costs=None):
    scheduler = DisengagedFairQueueing()
    env = build_env(scheduler, costs=costs)
    return env, scheduler


def test_sample_target_tripled_for_combined_apps(quick_costs):
    env, scheduler = _attached(quick_costs)
    combined = make_app("oclParticles")
    compute_only = make_app("DCT")
    combined.start(env.sim, env.kernel, env.rng)
    compute_only.start(env.sim, env.kernel, env.rng)
    env.sim.run(until=5_000.0)
    base = env.kernel.costs.sample_max_requests
    assert scheduler._sample_target(compute_only.task) == base
    assert scheduler._sample_target(combined.task) == base * 3


def test_freerun_length_scales_with_active_tasks():
    env, scheduler = _attached()
    nominal = env.kernel.costs.sample_max_us
    multiplier = env.kernel.costs.freerun_multiplier
    assert scheduler._freerun_length(0) == multiplier * nominal
    assert scheduler._freerun_length(1) == multiplier * nominal
    assert scheduler._freerun_length(2) == 2 * multiplier * nominal
    # The paper's 5.2/5.3 numbers: 25 ms standalone, 50 ms pairwise.
    assert scheduler._freerun_length(1) == pytest.approx(25_000.0)
    assert scheduler._freerun_length(2) == pytest.approx(50_000.0)


def test_activity_detection_sees_only_submitters(quick_costs):
    env, scheduler = _attached(quick_costs)
    busy = Throttle(100.0, name="busy")
    quiet = Throttle(100.0, name="quiet")
    busy.start(env.sim, env.kernel, env.rng)
    quiet.start(env.sim, env.kernel, env.rng)
    env.sim.run(until=30_000.0)
    # Kill quiet's process so it stops submitting, then mark a fresh
    # engagement boundary and run one more interval.
    quiet.task.process.kill()
    for channel in scheduler.neon.live_channels():
        scheduler.neon.mark_engagement(channel)
    env.sim.run(until=60_000.0)
    # Activity detection consumes ring-buffer scan results (normally paid
    # for by the episode's drain); perform the scans explicitly here.
    for channel in scheduler.neon.live_channels():
        for _cost in scheduler.neon.scan_channel(channel):
            pass
    activity = scheduler._detect_activity()
    assert activity.get(busy.task.task_id)
    assert not activity.get(quiet.task.task_id)


def test_denied_task_waits_out_the_interval(quick_costs):
    env, scheduler = _attached(quick_costs)
    hog = Throttle(900.0, name="hog")
    meek = Throttle(30.0, name="meek")
    run_workloads(env, [hog, meek], 200_000.0, 0.0)
    assert scheduler.denials > 0
    # Denials must actually block: the hog's blocked faults show up as
    # long rounds (p95 far above its native request time).
    assert hog.round_stats(40_000.0).p95_us > 2_000.0


def test_vt_table_tracks_live_tasks_only(quick_costs):
    env, scheduler = _attached(quick_costs)
    workload = Throttle(100.0)
    workload.start(env.sim, env.kernel, env.rng)
    env.sim.run(until=20_000.0)
    assert len(scheduler.vt) >= 1
    env.kernel.exit_task(workload.task)
    assert scheduler.vt.get(workload.task.task_id) == scheduler.vt.system_vt


def test_waiters_released_on_task_exit(quick_costs):
    env, scheduler = _attached(quick_costs)
    event = env.sim.event()
    scheduler._waiters[99] = [event]

    class FakeTask:
        task_id = 99
        name = "fake"
        alive = False

    scheduler._release_waiters(FakeTask())
    env.sim.run(until=1.0)
    assert event.triggered


def test_hw_variant_skips_sampling(quick_costs):
    env = build_env("dfq-hw", costs=quick_costs)
    workload = Throttle(50.0)
    run_workloads(env, [workload], 60_000.0, 0.0)
    assert env.scheduler.time_breakdown["sampling_us"] == 0.0
    assert env.scheduler.episodes > 3
