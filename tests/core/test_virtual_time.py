"""Tests for the virtual-time table (the paper's three maintenance steps)."""

import pytest

from repro.core.virtual_time import VirtualTimeTable


def test_new_task_starts_at_system_vt():
    table = VirtualTimeTable()
    table.advance(1, 100.0)
    table.update_system([1])
    assert table.ensure(2) == table.system_vt


def test_advance_accumulates():
    table = VirtualTimeTable()
    table.advance(1, 10.0)
    table.advance(1, 15.0)
    assert table.get(1) == 25.0


def test_advance_rejects_negative():
    table = VirtualTimeTable()
    with pytest.raises(ValueError):
        table.advance(1, -1.0)


def test_system_vt_is_oldest_active():
    table = VirtualTimeTable()
    table.advance(1, 100.0)
    table.advance(2, 40.0)
    table.update_system([1, 2])
    assert table.system_vt == 40.0


def test_system_vt_never_regresses():
    table = VirtualTimeTable()
    table.advance(1, 100.0)
    table.update_system([1])
    table.ensure(2)  # starts at 100
    table.update_system([2])
    assert table.system_vt == 100.0
    # Even an explicitly slow set cannot pull it back.
    table._vt[3] = 50.0
    table.update_system([3])
    assert table.system_vt == 100.0


def test_update_system_with_no_actives_keeps_value():
    table = VirtualTimeTable()
    table.advance(1, 100.0)
    table.update_system([1])
    before = table.system_vt
    table.update_system([])
    assert table.system_vt == before


def test_lift_inactive_forfeits_banked_credit():
    """Step 2: an idle task cannot hoard claims from its idle period."""
    table = VirtualTimeTable()
    table.advance(1, 200.0)
    table.update_system([1])
    table.ensure(2)
    table._vt[2] = 50.0  # simulate an old, stale value
    table.lift_inactive(2)
    assert table.get(2) == table.system_vt


def test_lift_inactive_never_moves_backwards():
    table = VirtualTimeTable()
    table.advance(1, 10.0)
    table.update_system([1])
    table.advance(2, 500.0)
    ahead = table.get(2)
    table.lift_inactive(2)
    assert table.get(2) == ahead  # already ahead of system vt: unchanged


def test_lag():
    table = VirtualTimeTable()
    table.advance(1, 100.0)
    table.advance(2, 30.0)
    table.update_system([1, 2])
    assert table.lag(1) == 70.0
    assert table.lag(2) == 0.0


def test_forget():
    table = VirtualTimeTable()
    table.advance(1, 10.0)
    table.forget(1)
    assert len(table) == 0
    assert table.get(1) == table.system_vt
