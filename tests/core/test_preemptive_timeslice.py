"""Scheduler-level preemption tests (§6.2 what-if)."""

import pytest

from repro.experiments.runner import build_env, run_workloads
from repro.gpu.params import GpuParams
from repro.workloads.adversarial import InfiniteKernel
from repro.workloads.throttle import Throttle

from tests.core.conftest import usage_share


@pytest.fixture
def preemptive_params():
    params = GpuParams()
    params.preemption_supported = True
    return params


@pytest.mark.parametrize("scheduler", ["timeslice", "disengaged-timeslice"])
def test_runaway_contained_not_killed(scheduler, fast_costs, preemptive_params):
    env = build_env(scheduler, costs=fast_costs, gpu_params=preemptive_params)
    attacker = InfiniteKernel(normal_size_us=50.0, normal_requests=3)
    victim = Throttle(100.0, name="victim")
    run_workloads(env, [attacker, victim], 150_000.0, 30_000.0)
    assert not attacker.killed  # tolerated, not killed
    assert len(victim.rounds) > 200  # and the victim still makes progress
    share = usage_share(env, victim)
    assert share > 0.25


@pytest.mark.parametrize("scheduler", ["timeslice", "disengaged-timeslice"])
def test_fairness_preserved_with_preemption(
    scheduler, fast_costs, preemptive_params
):
    env = build_env(scheduler, costs=fast_costs, gpu_params=preemptive_params)
    small = Throttle(50.0, name="small")
    large = Throttle(500.0, name="large")
    run_workloads(env, [small, large], 200_000.0, 40_000.0)
    assert 0.35 < usage_share(env, small) < 0.65


def test_preemptions_actually_happen(fast_costs, preemptive_params):
    env = build_env("timeslice", costs=fast_costs, gpu_params=preemptive_params)
    # Requests longer than the timeslice force a preemption at every edge.
    hog = Throttle(fast_costs.timeslice_us * 1.5, name="hog")
    peer = Throttle(100.0, name="peer")
    run_workloads(env, [hog, peer], 150_000.0, 0.0)
    assert env.device.main_engine.preemptions > 5


def test_multi_slice_requests_complete(fast_costs, preemptive_params):
    env = build_env("timeslice", costs=fast_costs, gpu_params=preemptive_params)
    hog = Throttle(fast_costs.timeslice_us * 2.5, name="hog")
    peer = Throttle(100.0, name="peer")
    run_workloads(env, [hog, peer], 200_000.0, 0.0)
    # Requests spanning multiple slices still finish (state save/restore).
    assert len(hog.rounds) >= 5
    assert not hog.killed
