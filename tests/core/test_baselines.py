"""Tests for the related-work baseline schedulers (SFQ, DRR, Credit)."""

import pytest

from tests.core.conftest import run_pair, usage_share


@pytest.mark.parametrize("scheduler", ["engaged-fq", "drr", "credit"])
def test_all_requests_intercepted(scheduler, fast_costs):
    env, a, b = run_pair(scheduler, fast_costs, duration_us=50_000.0)
    for channel in env.device.channels.values():
        assert channel.register_page.protected
    assert env.kernel.fault_count > 0


@pytest.mark.parametrize("scheduler", ["engaged-fq", "drr", "credit"])
def test_fair_shares_despite_size_asymmetry(scheduler, fast_costs):
    env, small, large = run_pair(
        scheduler, fast_costs, size_a=50.0, size_b=500.0, duration_us=250_000.0
    )
    share = usage_share(env, small)
    assert 0.3 < share < 0.7, f"{scheduler}: small task share {share:.2f}"


@pytest.mark.parametrize("scheduler", ["engaged-fq", "drr", "credit"])
def test_progress_for_both_tasks(scheduler, fast_costs):
    env, a, b = run_pair(scheduler, fast_costs, duration_us=100_000.0)
    assert len(a.rounds) > 10
    assert len(b.rounds) > 10


def test_sfq_orders_by_start_tag(fast_costs):
    env, a, b = run_pair("engaged-fq", fast_costs, duration_us=50_000.0)
    assert env.scheduler.dispatched_requests > 0
    assert env.scheduler.system_vt > 0


def test_drr_runs_rounds(fast_costs):
    env, a, b = run_pair("drr", fast_costs, duration_us=50_000.0)
    assert env.scheduler.rounds > 10


def test_credit_replenishes(fast_costs):
    env, a, b = run_pair("credit", fast_costs, duration_us=50_000.0)
    assert env.scheduler.replenishments > 2


def test_drr_kills_runaway(fast_costs):
    from repro.experiments.runner import build_env, run_workloads
    from repro.workloads.adversarial import InfiniteKernel
    from repro.workloads.throttle import Throttle

    env = build_env("drr", costs=fast_costs)
    attacker = InfiniteKernel(normal_size_us=50.0, normal_requests=3)
    victim = Throttle(100.0, name="victim")
    run_workloads(env, [attacker, victim], 150_000.0, 0.0)
    assert attacker.killed
    assert not victim.killed
