"""Tests for Disengaged Fair Queueing."""

from repro.experiments.runner import build_env, run_workloads
from repro.workloads.adversarial import InfiniteKernel
from repro.workloads.throttle import Throttle

from tests.core.conftest import run_pair, usage_share


def test_episodes_alternate_with_freeruns(fast_costs):
    env, a, b = run_pair("dfq", fast_costs, duration_us=100_000.0)
    assert env.scheduler.episodes >= 5
    # Most submissions go through unintercepted (the disengagement win).
    assert env.kernel.fault_count < env.kernel.submit_count / 3


def test_sampling_learns_request_sizes(fast_costs):
    env, a, b = run_pair(
        "dfq", fast_costs, size_a=100.0, size_b=400.0, duration_us=150_000.0
    )
    neon = env.scheduler.neon
    channel_a = neon.channels_of(a.task)[0]
    channel_b = neon.channels_of(b.task)[0]
    estimate_a = neon.estimated_request_size(channel_a)
    estimate_b = neon.estimated_request_size(channel_b)
    assert estimate_a is not None and estimate_b is not None
    # Paper verified estimates within ~5% of profiling tools; our polled
    # estimator carries the sampling-poll granularity, so allow ~35%.
    assert abs(estimate_a - 100.0) / 100.0 < 0.35
    assert abs(estimate_b - 400.0) / 400.0 < 0.35


def test_fair_shares_despite_size_asymmetry(fast_costs):
    env, small, large = run_pair(
        "dfq", fast_costs, size_a=50.0, size_b=500.0, duration_us=250_000.0
    )
    assert 0.35 < usage_share(env, small) < 0.65


def test_denial_caps_the_task_running_ahead(fast_costs):
    env, small, large = run_pair(
        "dfq", fast_costs, size_a=20.0, size_b=800.0, duration_us=250_000.0
    )
    assert env.scheduler.denials > 0


def test_work_conserving_with_idle_corunner(fast_costs):
    """DFQ lets an active task absorb a sleepy co-runner's idle time —
    unlike timeslice scheduling (Figures 9/10)."""

    def busy_round_time(scheduler):
        env = build_env(scheduler, costs=fast_costs)
        busy = Throttle(100.0, name="busy")
        sleepy = Throttle(100.0, sleep_ratio=0.8, name="sleepy")
        run_workloads(env, [busy, sleepy], 200_000.0, 40_000.0)
        return busy.round_stats(40_000.0).mean_us

    dfq = busy_round_time("dfq")
    timeslice = busy_round_time("timeslice")
    assert dfq < timeslice * 0.75


def test_inactive_task_forfeits_idle_credit(fast_costs):
    """A task idle for a long stretch cannot burst-reclaim afterwards."""
    env = build_env("dfq", costs=fast_costs)
    from repro.workloads.base import Workload

    class LateStarter(Throttle):
        def body(self):
            yield 100_000.0  # long idle period before any GPU use
            yield from super().body()

    late = LateStarter(300.0, name="late")
    steady = Throttle(300.0, name="steady")
    run_workloads(env, [late, steady], 220_000.0, 0.0)
    # After its idle period the late task's virtual time was lifted to the
    # system's; it must not get extra device share to "catch up".
    vt = env.scheduler.vt
    assert vt.lag(late.task.task_id) >= -1e-6


def test_runaway_killed_victim_survives(fast_costs):
    env = build_env("dfq", costs=fast_costs)
    attacker = InfiniteKernel(normal_size_us=50.0, normal_requests=5)
    victim = Throttle(100.0, name="victim")
    run_workloads(env, [attacker, victim], 250_000.0, 0.0)
    assert attacker.killed
    assert not victim.killed
    assert victim.rounds.stats(warmup_us=150_000.0).count > 50


def test_denied_everyone_never_happens(fast_costs):
    """The least-ahead task is always admitted (no needless idling)."""
    env, a, b = run_pair("dfq", fast_costs, duration_us=150_000.0)
    assert env.scheduler.decision_log
    assert all(allowed >= 1 for _, allowed, _ in env.scheduler.decision_log)


def test_standalone_overhead_bounded():
    # Paper-default periods (5 ms sampling, 25 ms free-run).
    def standalone(scheduler):
        env = build_env(scheduler)
        workload = Throttle(50.0)
        run_workloads(env, [workload], 200_000.0, 40_000.0)
        return workload.round_stats(40_000.0).mean_us

    slowdown = standalone("dfq") / standalone("direct")
    assert slowdown < 1.12  # paper: <=5% at full-size periods


class TestHardwareStatsVariant:
    def test_no_sampling_faults(self, fast_costs):
        env, a, b = run_pair("dfq-hw", fast_costs, duration_us=100_000.0)
        # Without sampling windows, intercepted submissions are rare
        # (only barrier stragglers and denials).
        assert env.kernel.fault_count < env.kernel.submit_count / 5

    def test_fair_shares(self, fast_costs):
        env, small, large = run_pair(
            "dfq-hw", fast_costs, size_a=50.0, size_b=500.0,
            duration_us=250_000.0,
        )
        assert 0.35 < usage_share(env, small) < 0.65

    def test_uses_ground_truth_usage(self, fast_costs):
        env, a, b = run_pair("dfq-hw", fast_costs, duration_us=100_000.0)
        assert env.scheduler.uses_hw_stats
        assert env.scheduler._usage_marks  # marks recorded per task
