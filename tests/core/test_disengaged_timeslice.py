"""Tests for the Disengaged Timeslice scheduler."""

from repro.experiments.runner import build_env, run_workloads
from repro.workloads.adversarial import InfiniteKernel
from repro.workloads.throttle import Throttle

from tests.core.conftest import run_pair, usage_share


def test_holder_runs_without_faults(fast_costs):
    """The token holder gets direct access: far fewer faults than
    submissions (the whole point of disengagement)."""
    env, a, b = run_pair("disengaged-timeslice", fast_costs, duration_us=60_000.0)
    assert env.kernel.submit_count > 100
    assert env.kernel.fault_count < env.kernel.submit_count / 10


def test_fairness_matches_engaged_variant(fast_costs):
    env, small, large = run_pair(
        "disengaged-timeslice", fast_costs, size_a=50.0, size_b=500.0,
        duration_us=200_000.0,
    )
    assert 0.35 < usage_share(env, small) < 0.65


def test_cheaper_than_engaged_for_small_requests(fast_costs):
    def standalone(scheduler):
        env = build_env(scheduler, costs=fast_costs)
        workload = Throttle(20.0)
        run_workloads(env, [workload], 60_000.0, 10_000.0)
        return workload.round_stats(10_000.0).mean_us

    direct = standalone("direct")
    engaged = standalone("timeslice")
    disengaged = standalone("disengaged-timeslice")
    assert disengaged < engaged
    assert disengaged / direct < 1.08  # paper: ~2%


def test_reengages_at_slice_boundaries(fast_costs):
    env, a, b = run_pair("disengaged-timeslice", fast_costs, duration_us=60_000.0)
    # Pages flip protected<->unprotected as the token moves.
    protect_counts = [
        channel.register_page.protect_count
        for channel in env.device.channels.values()
    ]
    assert all(count >= 3 for count in protect_counts)


def test_runaway_killed_at_reengagement(fast_costs):
    env = build_env("disengaged-timeslice", costs=fast_costs)
    attacker = InfiniteKernel(normal_size_us=50.0, normal_requests=5)
    victim = Throttle(100.0, name="victim")
    run_workloads(env, [attacker, victim], 200_000.0, 0.0)
    assert attacker.killed
    assert not victim.killed
    victim_late = victim.rounds.stats(warmup_us=100_000.0)
    assert victim_late.count > 50  # victim recovered after the kill


def test_non_holder_blocks_until_its_slice(fast_costs):
    env, a, b = run_pair("disengaged-timeslice", fast_costs, duration_us=30_000.0)
    # Blocked tasks fault once, then sleep in the handler: fault counts
    # stay near the number of token handoffs, not the request count.
    handoffs = env.scheduler.slices_granted
    assert env.kernel.fault_count <= handoffs * 3 + 4
