"""Tests for scheduler base-class plumbing and the registry."""

from repro.core.base import SchedulerBase, scheduler_registry
from repro.experiments.runner import build_env, run_workloads
from repro.workloads.throttle import Throttle


def test_registry_contains_all_schedulers():
    expected = {
        "direct", "timeslice", "disengaged-timeslice", "dfq", "dfq-hw",
        "engaged-fq", "drr", "credit", "timegraph",
    }
    assert expected <= set(scheduler_registry)


def test_registry_classes_are_instantiable():
    for name, cls in scheduler_registry.items():
        scheduler = cls()
        assert scheduler.name == name


def test_managed_tasks_tracks_channel_owners():
    env = build_env("direct")
    workload = Throttle(50.0)
    run_workloads(env, [workload], 2_000.0, 0.0)
    # Task exited at sim end?  It runs forever, so it stays managed.
    assert workload.task in env.scheduler.managed_tasks


def test_task_exit_untracks_channels():
    env = build_env("direct")
    workload = Throttle(50.0)
    workload.start(env.sim, env.kernel, env.rng)
    env.sim.run(until=1_000.0)
    assert env.scheduler.neon.channels_of(workload.task)
    env.kernel.exit_task(workload.task)
    assert workload.task not in env.scheduler.managed_tasks
    assert not env.scheduler.neon.channels_of(workload.task)


def test_manage_is_idempotent_and_skips_dead():
    env = build_env("direct")
    scheduler = env.scheduler
    task = env.kernel.create_task("t")
    assert scheduler._manage(task) is True
    assert scheduler._manage(task) is False
    assert scheduler.managed_tasks.count(task) == 1
    from repro.osmodel.task import TaskState

    dead = env.kernel.create_task("dead")
    dead.state = TaskState.DEAD
    assert scheduler._manage(dead) is False


def test_default_on_fault_allows():
    scheduler = SchedulerBase()
    assert scheduler.on_fault(None, None, None) is None
