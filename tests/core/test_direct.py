"""Tests for the direct-access baseline."""

from repro.experiments.runner import build_env, run_workloads
from repro.workloads.throttle import Throttle

from tests.core.conftest import run_pair, usage_share


def test_no_pages_ever_protected(fast_costs):
    env, a, b = run_pair("direct", fast_costs, duration_us=20_000.0)
    for channel in env.device.channels.values():
        assert not channel.register_page.protected
        assert channel.register_page.fault_count == 0
    assert env.kernel.fault_count == 0


def test_unfairness_follows_request_size(fast_costs):
    """The paper's motivating observation: per-request round-robin gives
    the larger-request task a proportionally larger share."""
    env, small, large = run_pair(
        "direct", fast_costs, size_a=50.0, size_b=500.0, duration_us=100_000.0
    )
    small_share = usage_share(env, small)
    large_share = usage_share(env, large)
    assert large_share > 0.75
    assert small_share < 0.25


def test_single_task_runs_at_native_speed(fast_costs):
    env = build_env("direct", costs=fast_costs)
    workload = Throttle(100.0)
    run_workloads(env, [workload], 50_000.0, warmup_us=5_000.0)
    stats = workload.round_stats(5_000.0)
    # Round = request + submission cost; no management overhead at all.
    assert stats.mean_us < 101.0
