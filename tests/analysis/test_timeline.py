"""Tests for timeline extraction and rendering."""

import pytest

from repro.analysis.timeline import (
    TIMELINE_KINDS,
    build_timeline,
    render_ascii_timeline,
)
from repro.experiments.runner import build_env, run_workloads
from repro.workloads.throttle import Throttle


def _traced_run(scheduler="direct", duration_us=20_000.0):
    env = build_env(scheduler, trace_kinds=TIMELINE_KINDS)
    a = Throttle(100.0, name="alpha")
    b = Throttle(300.0, name="beta")
    run_workloads(env, [a, b], duration_us, 0.0)
    return env


def test_intervals_reconstructed():
    env = _traced_run()
    timeline = build_timeline(env.trace)
    assert timeline.intervals
    for interval in timeline.intervals:
        assert interval.end_us >= interval.start_us
        assert interval.task in ("alpha", "beta")


def test_utilization_and_share():
    env = _traced_run()
    timeline = build_timeline(env.trace)
    total = timeline.utilization()
    assert 0.5 < total <= 1.01
    share_sum = timeline.share("alpha") + timeline.share("beta")
    assert share_sum == pytest.approx(1.0)
    # Round-robin per request: beta's 300us requests take ~3x the share.
    assert timeline.share("beta") > timeline.share("alpha")


def test_window_filtering():
    env = _traced_run(duration_us=30_000.0)
    full = build_timeline(env.trace)
    half = build_timeline(env.trace, start_us=15_000.0, end_us=30_000.0)
    assert half.span_us == pytest.approx(15_000.0)
    assert len(half.intervals) < len(full.intervals)


def test_ascii_rendering():
    env = _traced_run()
    timeline = build_timeline(env.trace)
    art = render_ascii_timeline(timeline, width=60)
    lines = art.splitlines()
    assert len(lines) == 3  # header + two tasks
    assert "#" in lines[1]
    assert "%" in lines[1]


def test_ascii_rendering_empty():
    from repro.sim.trace import TraceRecorder

    timeline = build_timeline(TraceRecorder())
    assert render_ascii_timeline(timeline) == "(empty timeline)"


def test_ascii_width_validation():
    env = _traced_run()
    timeline = build_timeline(env.trace)
    with pytest.raises(ValueError):
        render_ascii_timeline(timeline, width=5)


def test_exclusive_slices_visible_in_timeline():
    """Under timeslice scheduling, tasks occupy disjoint time regions."""
    env = _traced_run(scheduler="disengaged-timeslice", duration_us=60_000.0)
    timeline = build_timeline(env.trace)
    alpha = [i for i in timeline.intervals if i.task == "alpha"]
    beta = [i for i in timeline.intervals if i.task == "beta"]
    overlaps = 0
    for a in alpha:
        for b in beta:
            if a.start_us < b.end_us and b.start_us < a.end_us:
                overlaps += 1
    assert overlaps <= 2  # only at slice hand-offs, if at all
