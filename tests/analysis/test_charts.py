"""Tests for ASCII chart rendering."""

import pytest

from repro.analysis.charts import bar_chart, grouped_bar_chart, sparkline


def test_bar_chart_scales_to_longest():
    art = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
    lines = art.splitlines()
    assert lines[0].count("#") == 5
    assert lines[1].count("#") == 10
    assert "2" in lines[1]


def test_bar_chart_pinned_scale_marks_overflow():
    art = bar_chart([("x", 4.0)], width=10, max_value=2.0)
    assert "+" in art


def test_bar_chart_rejects_negative():
    with pytest.raises(ValueError):
        bar_chart([("x", -1.0)])


def test_bar_chart_empty():
    assert bar_chart([]) == "(no data)"


def test_bar_chart_all_zero():
    art = bar_chart([("z", 0.0)], width=10)
    assert "#" not in art


def test_sparkline_monotone():
    strip = sparkline([1.0, 2.0, 3.0, 4.0])
    assert len(strip) == 4
    levels = " .:-=+*#%@"
    assert levels.index(strip[0]) < levels.index(strip[-1])


def test_sparkline_flat_and_empty():
    assert sparkline([]) == ""
    flat = sparkline([5.0, 5.0, 5.0])
    assert len(set(flat)) == 1


def test_grouped_chart_shares_scale():
    art = grouped_bar_chart(
        [
            ("g1", [("a", 1.0)]),
            ("g2", [("b", 4.0)]),
        ],
        width=8,
    )
    lines = art.splitlines()
    assert lines[0] == "g1"
    a_bar = lines[1].count("#")
    b_bar = lines[3].count("#")
    assert b_bar == 8 and a_bar == 2
