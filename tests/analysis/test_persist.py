"""Tests for JSON result persistence."""

import math

from repro.analysis.persist import load_results, save_results
from repro.experiments.figure6 import PairOutcome


def test_dataclass_round_trip(tmp_path):
    outcome = PairOutcome(
        app="DCT",
        throttle_size_us=19.0,
        scheduler="dfq",
        app_alone_us=100.0,
        app_concurrent_us=200.0,
        throttle_alone_us=19.0,
        throttle_concurrent_us=40.0,
    )
    path = tmp_path / "results.json"
    save_results([outcome], path, metadata={"seed": 0})
    loaded = load_results(path)
    assert loaded["metadata"] == {"seed": 0}
    row = loaded["results"][0]
    assert row["__dataclass__"] == "PairOutcome"
    assert row["app"] == "DCT"
    assert row["app_concurrent_us"] == 200.0


def test_nan_and_inf_round_trip(tmp_path):
    path = tmp_path / "odd.json"
    save_results(
        {"nan": float("nan"), "inf": float("inf"), "neg": float("-inf")}, path
    )
    loaded = load_results(path)["results"]
    assert math.isnan(loaded["nan"])
    assert loaded["inf"] == float("inf")
    assert loaded["neg"] == float("-inf")


def test_nested_structures(tmp_path):
    path = tmp_path / "nested.json"
    save_results({"rows": [(1, 2.5), (3, 4.5)], "tag": None}, path)
    loaded = load_results(path)["results"]
    assert loaded["rows"] == [[1, 2.5], [3, 4.5]]
    assert loaded["tag"] is None


def test_enum_leaves_become_strings(tmp_path):
    from repro.gpu.request import RequestKind

    path = tmp_path / "enum.json"
    save_results({"kind": RequestKind.COMPUTE}, path)
    loaded = load_results(path)["results"]
    assert loaded["kind"] == "RequestKind.COMPUTE"
