"""Tests for the paper-claim reference data."""

import pytest

from repro.analysis.reference import PAPER, check_claim, shape_report


def test_claims_have_valid_bands():
    for claim in PAPER.values():
        assert claim.low <= claim.high
        # The paper's own value always sits inside the acceptance band.
        assert claim.low <= claim.paper_value <= claim.high, claim.key


def test_check_claim():
    assert check_claim("dos_context_limit", 48.0)
    assert not check_claim("dos_context_limit", 47.0)


def test_unknown_claim_raises():
    with pytest.raises(KeyError):
        check_claim("no-such-claim", 1.0)


def test_shape_report_verdicts():
    report = shape_report(
        {"dos_context_limit": 48.0, "fig6_fair_pair_slowdown": 9.0}
    )
    assert "ok" in report
    assert "OUT OF BAND" in report


def test_shape_report_unknown_key():
    assert "UNKNOWN CLAIM" in shape_report({"bogus": 1.0})


def test_headline_claims_present():
    for key in (
        "fig7_dfq_mean_loss",
        "fig7_dfq_max_loss",
        "dos_context_limit",
        "gears_anomaly_disparity",
    ):
        assert key in PAPER
