"""The fleet policy layer is inside the neonlint boundary fence.

``repro.fleet.policies`` sits on the scheduler side of the interception
boundary: a global policy may consume only per-device digests distilled
from trace events.  These tests pin that the default config scopes the
boundary rules (NEON101/102) and the observation-API rule (NEON503)
over the fleet policy layer, using a fixture package with a seeded
``bad_fleet_policy`` that reaches into ``repro.gpu.device`` internals.
"""

from pathlib import Path

from repro.staticcheck import Config, analyze_paths
from repro.staticcheck.core import module_name_for
from repro.staticcheck.graph import ProjectModel
from repro.staticcheck.rules.wholeprogram import check_observation_api

from tests.staticcheck.conftest import FIXTURES, rule_locations

FLEET_PKG = FIXTURES / "fleet_pkg"
POLICIES = FLEET_PKG / "repro" / "fleet" / "policies"


def test_fleet_policy_layer_is_boundary_scoped():
    config = Config()
    assert config.is_boundary_module("repro.fleet.policies")
    assert config.is_boundary_module("repro.fleet.policies.bad_fleet_policy")
    assert config.is_observation_client_module("repro.fleet.policies")
    # The rest of the fleet package (registry, migration, tenants) runs
    # the machinery, not policy decisions — it stays out of scope.
    assert not config.is_boundary_module("repro.fleet.registry")
    assert not config.is_boundary_module("repro.fleet.migration")
    # Prefix matching, not substring matching.
    assert not config.is_boundary_module("repro.fleet.policiesque")


def test_fixture_tree_resolves_to_fleet_policy_module_names():
    assert module_name_for(POLICIES / "bad_fleet_policy.py") == (
        "repro.fleet.policies.bad_fleet_policy"
    )


def test_bad_fleet_policy_flags_each_seeded_violation():
    violations = analyze_paths([POLICIES / "bad_fleet_policy.py"], Config())
    assert rule_locations(violations) == [
        ("NEON101", 8),  # from repro.gpu import device
        ("NEON101", 9),  # import repro.gpu.device
        ("NEON102", 27),  # stack.device
        ("NEON102", 27),  # ...device.task_usage
        ("NEON102", 28),  # stack.device
        ("NEON102", 28),  # ...device.engines
    ]


def test_good_fleet_policy_is_clean():
    assert analyze_paths([POLICIES / "good_fleet_policy.py"], Config()) == []


def test_neon503_covers_fleet_policies():
    model = ProjectModel.build(paths=[FLEET_PKG])
    violations = list(check_observation_api(model, Config()))
    assert [v.rule_id for v in violations] == ["NEON503"]
    assert ".raw_channel_table" in violations[0].message
    assert violations[0].path.endswith("bad_fleet_policy.py")
    # The allowlisted neon.* calls in the same class are not flagged.
    assert violations[0].line == 21


def test_real_fleet_policy_module_is_clean():
    import repro.fleet.policies as policies

    path = Path(policies.__file__)
    assert analyze_paths([path], Config()) == []
