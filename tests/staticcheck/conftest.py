"""Shared fixtures for the neonlint test suite."""

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
#: The boundary fixtures mimic the real package layout so the default
#: config's module scoping applies unchanged.
BOUNDARY_PKG = FIXTURES / "boundary_pkg" / "repro" / "core"
#: The whole-program fixture project: a mini repro-shaped package with a
#: laundered boundary violation, RNG escapes, an off-API observation
#: client, dead registry entries, and unused imports — one per NEON5xx.
WHOLEPROG_PKG = FIXTURES / "wholeprog_pkg"


@pytest.fixture
def fixtures():
    return FIXTURES


@pytest.fixture
def boundary_pkg():
    return BOUNDARY_PKG


def rule_locations(violations):
    """Compress violations to comparable (rule_id, line) pairs."""
    return [(violation.rule_id, violation.line) for violation in violations]
