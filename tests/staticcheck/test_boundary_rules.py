"""Boundary rules (NEON101/NEON102): positives, negatives, and pragmas."""

from repro.staticcheck import Config, analyze_paths
from repro.staticcheck.core import module_name_for

from tests.staticcheck.conftest import rule_locations


def test_bad_boundary_fixture_flags_each_seeded_violation(boundary_pkg):
    violations = analyze_paths([boundary_pkg / "bad_boundary.py"], Config())
    assert rule_locations(violations) == [
        ("NEON101", 3),  # from repro.gpu.request import RequestKind
        ("NEON101", 4),  # import repro.osmodel.kernel
        ("NEON102", 8),  # channel.queue
        ("NEON102", 9),  # channel.refcounter
        ("NEON102", 10),  # kernel.device
        ("NEON102", 10),  # ...device.main_engine
    ]
    assert all(str(boundary_pkg) in violation.path for violation in violations)


def test_pragma_grants_audited_exception(boundary_pkg):
    violations = analyze_paths([boundary_pkg / "bad_boundary.py"], Config())
    # Line 15 dereferences channel.refcounter but carries
    # ``# neonlint: allow[NEON102]`` — it must not be reported.
    assert all(violation.line != 15 for violation in violations)


def test_clean_boundary_module_passes(boundary_pkg):
    assert analyze_paths([boundary_pkg / "good_boundary.py"], Config()) == []


def test_type_checking_imports_are_not_runtime_imports(boundary_pkg):
    # good_boundary.py imports repro.gpu.channel and repro.osmodel.task,
    # but only under TYPE_CHECKING; the checker must see the difference.
    source = (boundary_pkg / "good_boundary.py").read_text()
    assert "from repro.gpu.channel import" in source
    assert analyze_paths([boundary_pkg / "good_boundary.py"], Config()) == []


def test_fixture_tree_resolves_to_core_module_names(boundary_pkg):
    assert module_name_for(boundary_pkg / "bad_boundary.py") == (
        "repro.core.bad_boundary"
    )


def test_rules_scoped_to_boundary_modules_only(boundary_pkg):
    # With the boundary scope pointed elsewhere, the same file is clean:
    # the rules bind to the architecture, not to file contents.
    config = Config(boundary_modules=("somewhere.else",))
    assert analyze_paths([boundary_pkg / "bad_boundary.py"], config) == []


def test_repo_core_modules_are_in_scope():
    config = Config()
    assert config.is_boundary_module("repro.core.disengaged_fq")
    assert config.is_boundary_module("repro.core")
    assert not config.is_boundary_module("repro.neon.interception")
    assert not config.is_boundary_module("repro.corellia")  # prefix, not match
