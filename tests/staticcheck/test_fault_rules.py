"""Injection-point rules (NEON403/NEON404): positives, negatives, scoping."""

from repro.faults.registry import constant_names, registered_points
from repro.staticcheck import Config, analyze_paths
from repro.staticcheck.core import module_name_for

from tests.staticcheck.conftest import rule_locations


def faults_pkg(fixtures):
    return fixtures / "boundary_pkg" / "repro"


def test_bad_faults_fixture_flags_each_seeded_violation(fixtures):
    violations = analyze_paths([faults_pkg(fixtures) / "bad_faults.py"], Config())
    assert rule_locations(violations) == [
        ("NEON403", 7),   # literal "gpu.request_hang"
        ("NEON403", 8),   # literal point= kwarg
        ("NEON404", 9),   # MY_PRIVATE_POINT not registered
        ("NEON404", 10),  # fault_points.NOT_A_POINT not registered
        ("NEON403", 12),  # literal branch of the conditional point
        ("NEON403", 18),  # deep receiver self.device.faults.arm
    ]


def test_pragma_grants_audited_exception(fixtures):
    violations = analyze_paths([faults_pkg(fixtures) / "bad_faults.py"], Config())
    # Line 14 uses a literal point under ``# neonlint: allow[NEON403]``.
    assert all(violation.line != 14 for violation in violations)


def test_clean_faults_module_passes(fixtures):
    assert analyze_paths([faults_pkg(fixtures) / "good_faults.py"], Config()) == []


def test_fixture_resolves_to_in_scope_module_name(fixtures):
    module = module_name_for(faults_pkg(fixtures) / "bad_faults.py")
    assert module == "repro.bad_faults"
    assert Config().is_fault_arm_module(module)


def test_rules_scoped_to_configured_modules_only(fixtures):
    # Out-of-scope modules (tests, chaos harness doubles) arm freely.
    config = Config(fault_arm_modules=("somewhere.else",))
    assert analyze_paths([faults_pkg(fixtures) / "bad_faults.py"], config) == []


def test_registry_constants_cover_all_registered_points():
    # Every registered point is reachable through a module constant, so
    # NEON404's "use a registered constant" advice is always satisfiable.
    from repro.faults import registry as registry_module

    names = constant_names()
    values = {getattr(registry_module, name) for name in names}
    assert values == set(registered_points())
