"""Baseline fingerprinting, multiset matching, and the stale ratchet."""

from repro.staticcheck.baseline import (
    Baseline,
    discover_baseline,
    fingerprint,
)
from repro.staticcheck.core import Violation


def _violation(path, line, rule="NEON505", message="'json' is unused"):
    return Violation(path=str(path), line=line, col=0, rule_id=rule, message=message)


def test_fingerprint_survives_line_drift(tmp_path):
    before = tmp_path / "before.py"
    before.write_text("import json\n")
    drifted = tmp_path / "before.py"  # same file, edited above the finding
    old = fingerprint(_violation(before, 1))
    before.write_text("# a new comment pushed everything down\n\nimport json\n")
    new = fingerprint(_violation(drifted, 3))
    assert old == new


def test_fingerprint_distinguishes_rule_and_source(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("import json\nimport sys\n")
    assert fingerprint(_violation(path, 1)) != fingerprint(_violation(path, 2))
    assert fingerprint(_violation(path, 1)) != fingerprint(
        _violation(path, 1, rule="NEON202")
    )


def test_fingerprint_normalizes_embedded_line_numbers(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("import json\n")
    left = _violation(path, 1, message="created at rng.py:17 flows in")
    right = _violation(path, 1, message="created at rng.py:99 flows in")
    assert fingerprint(left) == fingerprint(right)


def test_apply_splits_new_suppressed_and_stale(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("import json\nimport sys\n")
    known = _violation(path, 1)
    gone = _violation(path, 2, message="'sys' is unused")
    baseline = Baseline.from_violations([known, gone])

    fresh = _violation(path, 2, rule="NEON202", message="brand new")
    result = baseline.apply([known, fresh])
    assert result.suppressed == [known]
    assert result.new == [fresh]
    assert list(result.stale.values()) == [1]  # the 'sys' entry no longer matches


def test_apply_consumes_entries_multiset_style(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("import json\n")
    violation = _violation(path, 1)
    one_entry = Baseline.from_violations([violation])
    result = one_entry.apply([violation, violation])
    # Two identical findings, one baseline entry: only one is grandfathered.
    assert len(result.suppressed) == 1
    assert len(result.new) == 1


def test_write_load_round_trip_and_discovery(tmp_path):
    path = tmp_path / "mod.py"
    path.write_text("import json\n")
    baseline = Baseline.from_violations([_violation(path, 1)])
    target = tmp_path / "neonlint-baseline.json"
    baseline.write(target)
    loaded = Baseline.load(target)
    assert loaded.entries == baseline.entries
    nested = tmp_path / "deep" / "deeper"
    nested.mkdir(parents=True)
    assert discover_baseline([nested]) == target


def test_discovery_stops_at_project_root(tmp_path):
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    inner = tmp_path / "src"
    inner.mkdir()
    # No baseline anywhere under the root: discovery must not wander up
    # past pyproject.toml into the surrounding filesystem.
    assert discover_baseline([inner]) is None
