"""CLI modes: --changed, baselines, --stats recording, --workers parity."""

import json
import subprocess
from textwrap import dedent

from repro.staticcheck import Config
from repro.staticcheck.cli import main as staticcheck_main
from repro.staticcheck.engine import run_analysis

CLEAN = "def ok():\n    return 1\n"
DIRTY = "import json\n\ndef ok():\n    return 1\n"


def _git(repo, *argv):
    subprocess.run(
        ["git", *argv],
        cwd=repo,
        check=True,
        capture_output=True,
        env={
            "GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
            "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
            "HOME": str(repo), "PATH": "/usr/bin:/bin:/usr/local/bin",
        },
    )


def _make_repo(tmp_path):
    repo = tmp_path / "repo"
    repo.mkdir()
    _git(repo, "init", "-b", "main")
    (repo / "committed.py").write_text(DIRTY)  # pre-existing violation
    _git(repo, "add", ".")
    _git(repo, "commit", "-m", "seed")
    return repo


def test_changed_reports_only_touched_files(tmp_path, monkeypatch, capsys):
    repo = _make_repo(tmp_path)
    (repo / "touched.py").write_text("import sys\n\ndef go():\n    return 2\n")
    monkeypatch.chdir(repo)
    code = staticcheck_main([str(repo), "--changed", "--no-baseline"])
    out = capsys.readouterr().out
    assert code == 1
    assert "touched.py" in out
    # committed.py's pre-existing NEON505 is outside the changed set.
    assert "committed.py" not in out


def test_changed_with_no_changes_is_clean(tmp_path, monkeypatch, capsys):
    repo = _make_repo(tmp_path)
    monkeypatch.chdir(repo)
    code = staticcheck_main([str(repo), "--changed", "--no-baseline"])
    assert code == 0
    assert "no changed python files" in capsys.readouterr().out


def test_changed_outside_git_is_usage_error(tmp_path, monkeypatch, capsys):
    plain = tmp_path / "plain"
    plain.mkdir()
    (plain / "mod.py").write_text(CLEAN)
    monkeypatch.chdir(plain)
    monkeypatch.setenv("GIT_DIR", str(plain / "nowhere"))
    code = staticcheck_main([str(plain), "--changed"])
    assert code == 2
    assert "--changed requires a git worktree" in capsys.readouterr().err


def test_baseline_ratchet_flow(tmp_path, capsys):
    project = tmp_path / "project"
    project.mkdir()
    (project / "mod.py").write_text(DIRTY)
    baseline = tmp_path / "neonlint-baseline.json"

    # 1. Grandfather the existing finding.
    assert staticcheck_main(
        [str(project), "--update-baseline", "--baseline", str(baseline)]
    ) == 0
    assert len(json.loads(baseline.read_text())["entries"]) == 1
    capsys.readouterr()

    # 2. Clean run against the baseline: suppressed, exit 0.
    assert staticcheck_main([str(project), "--baseline", str(baseline)]) == 0
    captured = capsys.readouterr()
    assert "suppressed by baseline" in captured.err

    # 3. A new finding fails even though the old one stays suppressed.
    (project / "fresh.py").write_text("import sys\n")
    assert staticcheck_main([str(project), "--baseline", str(baseline)]) == 1
    captured = capsys.readouterr()
    assert "fresh.py" in captured.out

    # 4. Paying down the debt makes the entry stale; --strict-baseline
    #    turns that into a failure so the baseline shrinks in the same PR.
    (project / "fresh.py").unlink()
    (project / "mod.py").write_text(CLEAN)
    assert staticcheck_main([str(project), "--baseline", str(baseline)]) == 0
    assert staticcheck_main(
        [str(project), "--baseline", str(baseline), "--strict-baseline"]
    ) == 1
    captured = capsys.readouterr()
    assert "stale baseline" in captured.err


def test_stats_are_recorded_in_the_run_store(tmp_path, capsys):
    project = tmp_path / "project"
    project.mkdir()
    (project / "mod.py").write_text(CLEAN)
    store_dir = tmp_path / "runs"
    code = staticcheck_main(
        [
            str(project), "--no-baseline", "--stats",
            "--store-dir", str(store_dir),
        ]
    )
    assert code == 0
    captured = capsys.readouterr()
    assert "neonlint stats:" in captured.err
    records = [
        json.loads(line)
        for line in (store_dir / "runs.jsonl").read_text().splitlines()
    ]
    assert len(records) == 1
    record = records[0]
    assert record["experiment"] == "staticcheck"
    assert record["run_id"] == "staticcheck-0001"
    assert record["params"]["files_checked"] == 1
    assert set(record["params"]["rule_wall_s"]) == {
        "NEON501", "NEON502", "NEON503", "NEON504", "NEON505",
    }


def test_workers_parity(tmp_path):
    project = tmp_path / "project"
    project.mkdir()
    for index in range(6):
        (project / f"mod{index}.py").write_text(
            dedent(f"""\
                import json

                def fn{index}():
                    import random
                    return random.random()
            """)
        )
    serial = run_analysis([project], Config(), workers=1)
    pooled = run_analysis([project], Config(), workers=4)
    assert serial.violations == pooled.violations
    assert serial.violations  # the fixture really produces findings


def test_sarif_format_from_cli(tmp_path, capsys):
    project = tmp_path / "project"
    project.mkdir()
    (project / "mod.py").write_text(DIRTY)
    code = staticcheck_main(
        [str(project), "--no-baseline", "--format", "sarif"]
    )
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == "2.1.0"
    assert payload["runs"][0]["results"][0]["ruleId"] == "NEON505"
