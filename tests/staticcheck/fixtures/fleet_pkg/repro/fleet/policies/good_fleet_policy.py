"""Fixture: a digest-only global policy — the sanctioned shape."""


def rebalance(digests):
    total = sum(digest.usage_us for digest in digests) or 1.0
    return {
        digest.device_id: digest.usage_us / total for digest in digests
    }
