"""Fixture: a global fleet policy cheating past the per-device digests.

Seeded violations (never imported): the fleet policy layer sits on the
scheduler side of the interception boundary, so every rule that fences
``repro.core`` off from GPU ground truth must bind here too.
"""

from repro.gpu import device
import repro.gpu.device


class FleetPeek:
    """Observation client straying off the declared ``neon.*`` API."""

    def __init__(self, neon):
        self.neon = neon

    def snoop(self):
        for channel in self.neon.live_channels():
            self.neon.mask_channel(channel)
        return self.neon.raw_channel_table


def rebalance(stacks):
    weights = {}
    for stack in stacks:
        for task, used in stack.device.task_usage.items():
            weights[task] = used / len(stack.device.engines)
    return weights, device.read_queue()
