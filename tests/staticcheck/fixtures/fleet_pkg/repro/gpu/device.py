"""Fixture: device-internal ground truth no fleet policy may reach."""


def read_queue():
    return ["ground", "truth"]
