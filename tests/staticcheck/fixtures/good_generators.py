"""Generator-discipline-clean module (neonlint fixture; never imported)."""


class CarefulScheduler:
    def _drain_all(self):
        yield 1.0

    def _episode(self):
        yield from self._drain_all()
        result = yield from self.neon.drain()
        flips = self.neon.engage_all()
        yield self.neon.flip_cost(flips)
        return result
