"""Fixture: workload code constructing its own RNG (NEON502 construction)."""

import random


def burst_sizes(count):
    stream = random.Random(99)
    return [stream.randrange(8) for _ in range(count)]
