"""Fixture: a miniature injection-point registry (NEON504)."""

_POINTS = []


def register_injection_point(name):
    _POINTS.append(name)
    return name


RELAY_STALL = register_injection_point("relay.stall")
NEVER_ARMED = register_injection_point("never.armed")
