"""Fixture: emit/arm sites that keep registry entries alive (NEON504)."""

from repro.faults import registry as fault_points
from repro.obs import events


class _Recorder:
    def emit(self, now, source, kind, **payload):
        return (now, source, kind, payload)


class _Injector:
    def arm(self, point, task=None):
        return (point, task)


trace = _Recorder()
faults = _Injector()


def run(now):
    trace.emit(
        now, "runtime", events.ROUND_DONE,
        task="t0",
    )
    faults.arm(fault_points.RELAY_STALL)
