"""Fixture: a re-export package (NEON505 whole-program awareness).

``probe`` is re-exported and imported through this package by
``repro.consumer`` — live.  ``harmless`` is listed in ``__all__`` —
live.  ``local_ok`` is neither — the one NEON505 finding here.
"""

from repro.helpers.relay import harmless, probe
from repro.helpers.shared_rng import local_ok

__all__ = ["harmless"]
