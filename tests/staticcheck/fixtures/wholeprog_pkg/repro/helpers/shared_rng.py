"""Fixture: a module-scope RNG stream (NEON502 escape)."""

import random

STREAM = random.Random(1)


def local_ok():
    # A generator that never leaves the function is not an escape.
    scratch = random.Random(2)
    return scratch.random()
