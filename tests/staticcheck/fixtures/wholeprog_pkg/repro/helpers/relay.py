"""Fixture: the laundering hop — a helper that touches device internals.

Imports ``repro.gpu`` legally (this is not a boundary module), which is
exactly what makes the per-file NEON1xx rules blind to the scheduler
that calls through it.
"""

from repro.gpu import device as gpu_device


def probe():
    return gpu_device.read_queue()


def harmless():
    return 42
