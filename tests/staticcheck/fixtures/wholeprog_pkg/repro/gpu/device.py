"""Fixture: device-internal state no scheduler may reach."""


def read_queue():
    return ["ground", "truth"]


def engine_load():
    return 0.75
