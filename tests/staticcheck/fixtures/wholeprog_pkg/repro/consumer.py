"""Fixture: imports through the re-export package, plus one dead import."""

import json

from repro.util import probe


def poke():
    return probe()
