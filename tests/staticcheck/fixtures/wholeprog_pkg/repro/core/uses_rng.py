"""Fixture: scheduler code importing an escaped global RNG (NEON502 flow)."""

from repro.helpers.shared_rng import STREAM


def jitter():
    return STREAM.random()
