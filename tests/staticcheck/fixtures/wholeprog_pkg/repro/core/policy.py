"""Fixture: an observation client straying off the declared API (NEON503)."""


class Policy:
    def __init__(self, neon):
        self.neon = neon

    def tick(self):
        for channel in self.neon.live_channels():
            self.neon.scan_channel(channel)
        return self.neon.device_secrets
