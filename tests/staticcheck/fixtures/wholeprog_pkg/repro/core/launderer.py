"""Fixture: a boundary module that launders ground truth through a helper.

No ``repro.gpu`` import appears here, so NEON101/102 pass; only the
whole-program call graph (NEON501) sees ``decide -> probe -> read_queue``.
"""

from repro.helpers import relay


def decide():
    return relay.probe()


def innocent():
    return relay.harmless()
