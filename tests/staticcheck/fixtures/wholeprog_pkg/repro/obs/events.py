"""Fixture: a miniature trace-event registry (NEON504)."""

_KINDS = []


def register_event_kind(name):
    _KINDS.append(name)
    return name


ROUND_DONE = register_event_kind("round.done")
NEVER_EMITTED = register_event_kind("never.emitted")
