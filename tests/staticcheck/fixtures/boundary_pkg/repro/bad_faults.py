"""Seeded NEON403/NEON404 violations (line numbers matter to the tests)."""

from repro.faults import registry as fault_points


def run(faults, channel):
    faults.arm("gpu.request_hang", channel.task.name)  # NEON403
    faults.arm(point="kernel.poll_stall")  # NEON403 (kwarg)
    faults.arm(MY_PRIVATE_POINT, channel.task.name)  # NEON404
    faults.arm(fault_points.NOT_A_POINT)  # NEON404
    faults.arm(
        fault_points.GPU_REQUEST_HANG if channel.dead else "gpu.request_slowdown",  # NEON403
    )
    faults.arm("audited")  # neonlint: allow[NEON403] test


def deep_receiver(self):
    self.device.faults.arm("neon.stale_scan")  # NEON403


MY_PRIVATE_POINT = "my_private_point"
