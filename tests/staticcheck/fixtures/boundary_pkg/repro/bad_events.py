"""Seeded NEON401/NEON402 violations (line numbers matter to the tests)."""

from repro.obs import events


def run(trace, sim, task):
    trace.emit(sim.now, "kernel", "fault", task=task.name)  # NEON401
    trace.emit(sim.now, "kernel", kind="task_exit")  # NEON401 (kwarg)
    trace.emit(sim.now, "kernel", MY_PRIVATE_KIND, task=task.name)  # NEON402
    trace.emit(sim.now, "kernel", events.NOT_A_KIND)  # NEON402
    trace.emit(
        sim.now,
        "gpu",
        events.REQUEST_ABORTED if task.dead else "request_complete",  # NEON401
    )
    trace.emit(sim.now, "kernel", "audited")  # neonlint: allow[NEON401] test


def deep_receiver(self):
    self.kernel.trace.emit(self.sim.now, "kernel", "fault")  # NEON401


MY_PRIVATE_KIND = "my_private_kind"
