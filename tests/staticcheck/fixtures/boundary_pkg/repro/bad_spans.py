"""Seeded NEON406 violations (line numbers matter to the tests)."""

from repro.obs import events


def run(trace, sim, task):
    trace.emit(sim.now, "scheduler", "barrier_begin", episode=1)  # NEON401+406
    trace.emit(sim.now, "scheduler", MY_PHASE_BEGIN, task=task.name)  # NEON406
    trace.emit(sim.now, "scheduler", kind=MY_PHASE_END)  # NEON406 (kwarg)
    trace.emit(
        sim.now,
        "scheduler",
        events.BARRIER_END if task.done else MY_PHASE_END,  # NEON406 branch
    )
    trace.emit(sim.now, "scheduler", events.BARRIER_BEGIN, episode=2)  # clean
    trace.emit(sim.now, "kernel", events.FAULT, task=task.name)  # clean
    trace.emit(sim.now, "scheduler", "my.phase_begin")  # neonlint: allow[NEON401,NEON406] test


MY_PHASE_BEGIN = "my.phase_begin"
MY_PHASE_END = "my.phase_end"
