"""A module whose emit sites all use registered event-kind constants."""

from repro.obs import events
from repro.obs.events import FAULT


def run(trace, sim, task, aborted):
    trace.emit(sim.now, "kernel", events.FAULT, task=task.name)
    trace.emit(sim.now, "kernel", FAULT, task=task.name)
    trace.emit(sim.now, "kernel", kind=events.TASK_EXIT)
    trace.emit(
        sim.now,
        "gpu",
        events.REQUEST_ABORTED if aborted else events.REQUEST_COMPLETE,
    )
    # Not a trace recorder: other receivers are out of scope.
    recorder = object()
    recorder.emit(sim.now, "kernel", "anything_goes")
