"""Seeded monitor-style emit violations (line numbers matter to tests).

Mimics the window-close fan-out in repro.obs.monitor: a watcher that
re-emits SLO transitions into the trace stream.  Every mistake here is
one a monitor author could plausibly make.
"""

from repro.obs import events

SLO_BREACHED = "slo.breached"  # unregistered look-alike kind


def window_closed(trace, snapshot, violated):
    trace.emit(snapshot.end_us, "monitor", "window.close")  # NEON401
    trace.emit(snapshot.end_us, "monitor", SLO_BREACHED)  # NEON402
    kind = events.SLO_VIOLATION if violated else events.SLO_RECOVERED
    trace.emit(snapshot.end_us, "monitor", kind)  # NEON402 (local variable)


def good_transition(trace, snapshot, violated):
    # The registered-constant conditional is the sanctioned idiom.
    trace.emit(
        snapshot.end_us,
        "monitor",
        events.SLO_VIOLATION if violated else events.SLO_RECOVERED,
    )
    trace.emit(snapshot.end_us, "monitor", events.WINDOW_CLOSE)
