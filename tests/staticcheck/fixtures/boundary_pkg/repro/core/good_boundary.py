"""Boundary-clean scheduler module (neonlint test fixture; never imported)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.neon.stats import ChannelKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.osmodel.task import Task


def decide(scheduler, channel: "Channel", task: "Task") -> bool:
    observation = scheduler.neon.observation(channel)
    quiet = scheduler.neon.task_quiet(task)
    return quiet and observation.channel_kind is ChannelKind.COMPUTE
