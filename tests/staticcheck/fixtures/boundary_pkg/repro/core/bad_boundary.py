"""Seeded boundary violations (neonlint test fixture; never imported)."""

from repro.gpu.request import RequestKind
import repro.osmodel.kernel


def ground_truth_peek(channel, kernel):
    backlog = len(channel.queue)
    counter = channel.refcounter
    engine = kernel.device.main_engine
    return backlog, counter, engine, RequestKind, repro.osmodel.kernel


def audited_peek(channel):
    return channel.refcounter  # neonlint: allow[NEON102] audited fixture exception
