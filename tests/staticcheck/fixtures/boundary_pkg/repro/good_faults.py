"""A module whose arm sites all use registered injection-point constants."""

from repro.faults import registry as fault_points
from repro.faults.registry import GPU_REQUEST_HANG


def run(faults, channel, graphics):
    faults.arm(fault_points.GPU_REQUEST_HANG, channel.task.name)
    faults.arm(GPU_REQUEST_HANG, channel.task.name)
    faults.arm(point=fault_points.KERNEL_POLL_STALL)
    faults.arm(
        fault_points.NEON_BARRIER_STALL
        if graphics
        else fault_points.NEON_STALE_SCAN,
    )
    # Not an injector: other receivers are out of scope.
    crossbow = object()
    crossbow.arm("anything_goes")
