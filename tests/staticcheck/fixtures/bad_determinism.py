"""Seeded determinism violations (neonlint test fixture; never imported)."""

import random
import time

import numpy as np


def wall_clock_stamp():
    return time.time()


def fresh_rng():
    return np.random.default_rng()


def global_draw():
    np.random.seed(7)
    return np.random.random(), random.random()


def pick_first(channels):
    ready = {channel for channel in channels}
    for channel in ready:
        return channel
