"""Seeded generator-discipline violations (neonlint fixture; never imported)."""


class LeakyScheduler:
    def _drain_all(self):
        yield 1.0

    def _episode(self):
        self._drain_all()
        self.neon.drain()
        yield self.neon.drain()
        self.neon.engage_all()
