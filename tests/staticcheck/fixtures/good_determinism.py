"""Determinism-clean module (neonlint test fixture; never imported)."""

import numpy as np


def seeded_rng(seed):
    # Explicitly seeded generators are fine outside repro.sim.rng.
    return np.random.default_rng(seed)


def pick_first(channels):
    ready = {channel for channel in channels}
    for channel in sorted(ready):
        return channel


def membership_only(channels, wanted):
    # Building and testing sets is fine; only *iteration* is ordered-unsafe.
    ready = {channel for channel in channels}
    return wanted in ready and len(ready) > 0
