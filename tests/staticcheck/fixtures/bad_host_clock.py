"""Host-clock discipline violations (neonlint test fixture; never imported).

A repro module outside the audited host-clock surface
(``repro.experiments.parallel``, ``repro.obs.profile``) must not read
the wall clock — simulation code takes time from the virtual clock, and
host-side code takes it from :func:`repro.obs.profile.host_clock`.
"""

import time
from time import perf_counter


def measure_phase():
    started = time.perf_counter()
    return time.perf_counter() - started


def aliased_clock():
    return perf_counter()


def stamp_run():
    return time.time()
