"""The tier-1 gate: the repo's own sources must be neonlint-clean.

Every future PR — schedulers, workloads, experiments — is automatically
checked against the paper's observability constraint (Section 3) by this
test.  If it fails, either route the new device knowledge through
``InterceptionManager`` or, for an audited exception, add an inline
``# neonlint: allow[RULE] reason`` pragma and document it in
docs/STATIC_ANALYSIS.md.
"""

from pathlib import Path

from repro.staticcheck import Config, analyze_paths, collect_files
from repro.staticcheck.cli import main as staticcheck_main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_repo_sources_are_violation_free():
    violations = analyze_paths([SRC], Config())
    assert violations == [], "\n".join(v.render() for v in violations)


def test_the_scan_actually_covers_the_tree():
    # Guard against the gate silently passing because nothing was scanned.
    files = collect_files([SRC])
    assert len(files) > 60
    assert any(f.name == "disengaged_fq.py" for f in files)


def test_cli_exits_zero_on_repo(capsys):
    assert staticcheck_main([str(SRC)]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_audited_exceptions_are_minimal():
    # The allowlist is two pragma lines: the dfq-hw vendor-statistics
    # ablation (the one scheduler the paper allows to read usage).  Grow
    # this number only with a documented audit.
    pragma_lines = []
    for path in collect_files([SRC]):
        if "staticcheck" in path.parts:
            continue  # the analyzer's own docs mention the pragma syntax
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if "neonlint: allow[" in line:
                pragma_lines.append((path.name, lineno))
    assert len(pragma_lines) == 2
    assert all(name == "disengaged_fq.py" for name, _ in pragma_lines)
