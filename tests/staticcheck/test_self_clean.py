"""The tier-1 gate: the repo's own sources must be neonlint-clean.

Every future PR — schedulers, workloads, experiments — is automatically
checked against the paper's observability constraint (Section 3) by this
test.  If it fails, either route the new device knowledge through
``InterceptionManager`` or, for an audited exception, add an inline
``# neonlint: allow[RULE] reason`` pragma and document it in
docs/STATIC_ANALYSIS.md.
"""

import json
from pathlib import Path

from repro.staticcheck import Config, analyze_paths, collect_files
from repro.staticcheck.baseline import Baseline, fingerprint
from repro.staticcheck.cli import main as staticcheck_main
from repro.staticcheck.engine import run_analysis

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"
BASELINE = REPO_ROOT / "neonlint-baseline.json"


def test_repo_sources_are_violation_free():
    violations = analyze_paths([SRC], Config())
    assert violations == [], "\n".join(v.render() for v in violations)


def test_repo_passes_the_whole_program_rules():
    # The NEON5xx layer: no laundered boundary taint, no escaped RNG
    # streams, observation clients on the declared API, no dead registry
    # entries, no unused imports — transitively, over the linked model.
    result = run_analysis([SRC], Config())
    baseline = Baseline.load(BASELINE) if BASELINE.is_file() else Baseline()
    matched = baseline.apply(result.violations)
    assert matched.new == [], "\n".join(v.render() for v in matched.new)


def test_committed_baseline_is_minimal():
    # The ratchet only ratchets if stale entries die with the debt they
    # grandfathered: every committed entry must match a live finding.
    entries = json.loads(BASELINE.read_text())["entries"]
    result = run_analysis([SRC], Config())
    source_cache = {}
    live = {fingerprint(v, source_cache) for v in result.violations}
    stale = [e for e in entries if e["fingerprint"] not in live]
    assert stale == [], f"stale baseline entries: {stale}"


def test_the_scan_actually_covers_the_tree():
    # Guard against the gate silently passing because nothing was scanned.
    files = collect_files([SRC])
    assert len(files) > 60
    assert any(f.name == "disengaged_fq.py" for f in files)


def test_cli_exits_zero_on_repo(capsys):
    assert staticcheck_main([str(SRC)]) == 0
    assert "0 violations" in capsys.readouterr().out


def test_audited_exceptions_are_minimal():
    # The allowlist is two pragma lines: the dfq-hw vendor-statistics
    # ablation (the one scheduler the paper allows to read usage).  Grow
    # this number only with a documented audit.
    pragma_lines = []
    for path in collect_files([SRC]):
        if "staticcheck" in path.parts:
            continue  # the analyzer's own docs mention the pragma syntax
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            if "neonlint: allow[" in line:
                pragma_lines.append((path.name, lineno))
    assert len(pragma_lines) == 2
    assert all(name == "disengaged_fq.py" for name, _ in pragma_lines)
