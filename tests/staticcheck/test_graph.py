"""Project-model tests: parsing, linking, and name resolution."""

from textwrap import dedent

from repro.staticcheck.graph import MODULE_NODE, ProjectModel


def _write_pkg(root, files):
    """Materialize ``{relative_path: source}`` as a package tree."""
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(source))
        parent = path.parent
        while parent != root:  # packages need __init__.py; the root is not one
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent
    return root


def _callees(model, qualname):
    return {site.callee for site in model.functions[qualname].calls if site.callee}


def test_from_import_call_resolves(tmp_path):
    _write_pkg(tmp_path, {
        "pkg/a.py": """
            from pkg.b import helper

            def caller():
                return helper()
        """,
        "pkg/b.py": """
            def helper():
                return 1
        """,
    })
    model = ProjectModel.build(paths=[tmp_path])
    assert "pkg.b.helper" in _callees(model, "pkg.a.caller")


def test_aliased_module_import_resolves(tmp_path):
    _write_pkg(tmp_path, {
        "pkg/a.py": """
            import pkg.b as bee

            def caller():
                return bee.helper()
        """,
        "pkg/b.py": """
            def helper():
                return 1
        """,
    })
    model = ProjectModel.build(paths=[tmp_path])
    assert "pkg.b.helper" in _callees(model, "pkg.a.caller")


def test_reexport_chain_resolves_through_package_init(tmp_path):
    _write_pkg(tmp_path, {
        "pkg/__init__.py": """
            from pkg.impl import worker
        """,
        "pkg/impl.py": """
            def worker():
                return 1
        """,
        "client.py": """
            from pkg import worker

            def use():
                return worker()
        """,
    })
    model = ProjectModel.build(paths=[tmp_path])
    assert "pkg.impl.worker" in _callees(model, "client.use")


def test_self_method_resolves_through_inheritance(tmp_path):
    _write_pkg(tmp_path, {
        "pkg/base.py": """
            class Base:
                def hook(self):
                    return 0
        """,
        "pkg/child.py": """
            from pkg.base import Base

            class Child(Base):
                def run(self):
                    return self.hook()
        """,
    })
    model = ProjectModel.build(paths=[tmp_path])
    assert "pkg.base.Base.hook" in _callees(model, "pkg.child.Child.run")


def test_instantiation_charges_the_constructor(tmp_path):
    _write_pkg(tmp_path, {
        "pkg/widget.py": """
            class Widget:
                def __init__(self):
                    self.size = 1
        """,
        "pkg/factory.py": """
            from pkg.widget import Widget

            def make():
                return Widget()
        """,
    })
    model = ProjectModel.build(paths=[tmp_path])
    assert "pkg.widget.Widget.__init__" in _callees(model, "pkg.factory.make")


def test_import_cycle_terminates_and_links_both_sides(tmp_path):
    _write_pkg(tmp_path, {
        "pkg/a.py": """
            import pkg.b

            def fa():
                return pkg.b.fb()
        """,
        "pkg/b.py": """
            import pkg.a

            def fb():
                return 2
        """,
    })
    model = ProjectModel.build(paths=[tmp_path])
    graph = model.import_graph()
    assert "pkg.b" in graph["pkg.a"]
    assert "pkg.a" in graph["pkg.b"]
    # Module nodes carry the import edges so taint can flow through them.
    assert f"pkg.b.{MODULE_NODE}" in _callees(model, f"pkg.a.{MODULE_NODE}")
    assert f"pkg.a.{MODULE_NODE}" in _callees(model, f"pkg.b.{MODULE_NODE}")


def test_reexport_cycle_in_resolution_returns_none(tmp_path):
    _write_pkg(tmp_path, {
        "pkg/a.py": """
            from pkg.b import ghost
        """,
        "pkg/b.py": """
            from pkg.a import ghost
        """,
    })
    model = ProjectModel.build(paths=[tmp_path])
    assert model.resolve_symbol("pkg.a.ghost") is None


def test_type_checking_imports_are_not_runtime(tmp_path):
    _write_pkg(tmp_path, {
        "pkg/a.py": """
            from typing import TYPE_CHECKING

            if TYPE_CHECKING:
                from pkg.b import Heavy

            def annotate(x: "Heavy"):
                return x
        """,
        "pkg/b.py": """
            class Heavy:
                pass
        """,
    })
    model = ProjectModel.build(paths=[tmp_path])
    info = model.modules["pkg.a"]
    assert "pkg.b" not in info.runtime_imports
    assert not info.bindings["Heavy"].runtime
    # ...but the quoted annotation still counts as a use (NEON505).
    assert "Heavy" in info.used_names


def test_unparsed_files_are_recorded_not_fatal(tmp_path):
    _write_pkg(tmp_path, {
        "pkg/good.py": """
            def ok():
                return 1
        """,
    })
    (tmp_path / "pkg" / "broken.py").write_text("def broken(:\n")
    model = ProjectModel.build(paths=[tmp_path])
    assert "pkg.good.ok" in model.functions
    assert any(p.name == "broken.py" for p in model.unparsed)
