"""Autofix: literal->constant rewrites, import pruning, idempotency."""

from textwrap import dedent

from repro.staticcheck import Config
from repro.staticcheck.engine import run_analysis
from repro.staticcheck.fix import apply_fixes


def _analyze(path):
    return run_analysis([path], Config(), whole_program=True)


def _fix_until_stable(path):
    result = _analyze(path)
    outcome = apply_fixes(result.violations)
    return result, outcome


def test_literal_event_kind_is_rewritten(tmp_path):
    # Module must live under a path that maps into trace_emit_modules
    # ("repro"): build a mini package named repro.
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    mod = pkg / "emitter.py"
    mod.write_text(dedent("""\
        def run(trace, now):
            trace.emit(now, "emitter", "fault", task="t")
    """))
    result, outcome = _fix_until_stable(tmp_path)
    assert any(v.rule_id == "NEON401" for v in result.violations)
    assert [v.rule_id for v in outcome.fixed] == ["NEON401"]
    text = mod.read_text()
    assert 'events.FAULT' in text
    assert "from repro.obs import events" in text
    assert '"fault"' not in text
    # The rewritten file is NEON401-clean.
    after = _analyze(tmp_path)
    assert not any(v.rule_id == "NEON401" for v in after.violations)


def test_literal_fault_point_is_rewritten(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    mod = pkg / "armer.py"
    mod.write_text(dedent("""\
        def plan(faults):
            faults.arm("gpu.request_hang", task="t")
    """))
    _, outcome = _fix_until_stable(tmp_path)
    assert [v.rule_id for v in outcome.fixed] == ["NEON403"]
    text = mod.read_text()
    assert "fault_points.GPU_REQUEST_HANG" in text
    assert "from repro.faults import registry as fault_points" in text


def test_unknown_literal_is_skipped_not_mangled(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    mod = pkg / "emitter.py"
    source = dedent("""\
        def run(trace, now):
            trace.emit(now, "emitter", "no.such.kind", task="t")
    """)
    mod.write_text(source)
    _, outcome = _fix_until_stable(tmp_path)
    assert outcome.fixed == []
    assert len(outcome.skipped) == 1
    assert mod.read_text() == source  # untouched


def test_unused_import_is_removed(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("import json\nimport sys\n\nprint(sys.path)\n")
    _, outcome = _fix_until_stable(tmp_path)
    assert [v.rule_id for v in outcome.fixed] == ["NEON505"]
    assert mod.read_text() == "import sys\n\nprint(sys.path)\n"


def test_unused_alias_is_pruned_from_multi_alias_import(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("from os.path import join, split\n\nprint(join('a'))\n")
    _fix_until_stable(tmp_path)
    assert mod.read_text() == "from os.path import join\n\nprint(join('a'))\n"


def test_fix_is_idempotent(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    mod = pkg / "emitter.py"
    mod.write_text(dedent("""\
        import json

        def run(trace, now):
            trace.emit(now, "emitter", "fault", task="t")
    """))
    _fix_until_stable(tmp_path)
    first_pass = mod.read_text()
    _, second = _fix_until_stable(tmp_path)
    assert second.files == []  # nothing left to rewrite
    assert mod.read_text() == first_pass
