"""Reporters and CLI: text/JSON shape, exit codes, subcommand wiring."""

import json

from repro.staticcheck import Config, analyze_paths
from repro.staticcheck.cli import main as staticcheck_main
from repro.staticcheck.report import format_json, format_text
from repro.staticcheck.rules import RULES

from tests.staticcheck.conftest import FIXTURES

BAD = FIXTURES / "bad_determinism.py"
GOOD = FIXTURES / "good_determinism.py"


def test_text_report_is_compiler_shaped():
    violations = analyze_paths([BAD], Config())
    text = format_text(violations, files_checked=1)
    lines = text.splitlines()
    assert lines[0] == (
        f"{BAD}:3:0: NEON202 stdlib random is process-global state; draw "
        "from a named seeded stream (repro.sim.rng.RngRegistry) instead"
    )
    assert any(line.startswith(f"{BAD}:10:11: NEON201 ") for line in lines)
    assert lines[-1].startswith("6 violation(s) in 1 file(s) checked")
    assert "NEON203 x3" in lines[-1]


def test_text_report_when_clean():
    assert format_text([], files_checked=4) == "clean: 4 file(s) checked, 0 violations"


def test_json_report_round_trips():
    violations = analyze_paths([BAD], Config())
    payload = json.loads(format_json(violations, files_checked=1))
    assert payload["files_checked"] == 1
    assert payload["violation_count"] == 6
    first = payload["violations"][0]
    assert first == {
        "path": str(BAD),
        "line": 3,
        "col": 0,
        "rule_id": "NEON202",
        "message": first["message"],
        "chain": [],
    }
    assert [v["rule_id"] for v in payload["violations"]] == [
        "NEON202", "NEON201", "NEON203", "NEON203", "NEON203", "NEON204",
    ]


def test_cli_exit_codes(capsys):
    assert staticcheck_main([str(GOOD)]) == 0
    assert "clean" in capsys.readouterr().out
    assert staticcheck_main([str(BAD)]) == 1
    assert "NEON204" in capsys.readouterr().out
    assert staticcheck_main(["definitely/not/a/path"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_cli_json_format(capsys):
    assert staticcheck_main([str(BAD), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["violation_count"] == 6


def test_cli_list_rules(capsys):
    assert staticcheck_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULES:
        assert rule_id in out


def test_cli_config_allowlist_suppresses(tmp_path, capsys):
    config = tmp_path / "neonlint.toml"
    config.write_text(
        'allow = [\n'
        '  "bad_determinism.py:*:NEON202",\n'
        '  "bad_determinism.py:10:NEON201",\n'
        ']\n'
    )
    assert staticcheck_main([str(BAD), "--config", str(config)]) == 1
    out = capsys.readouterr().out
    assert "NEON202" not in out
    assert "NEON201" not in out
    assert "NEON203" in out  # not allowlisted: still reported


def test_repro_cli_delegates_staticcheck_subcommand(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["staticcheck", str(GOOD)]) == 0
    assert "clean" in capsys.readouterr().out
    assert repro_main(["staticcheck", str(BAD)]) == 1
