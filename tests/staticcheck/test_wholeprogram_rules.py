"""NEON5xx whole-program rules over the wholeprog fixture project.

The centerpiece is the laundering acceptance test: a boundary module
that reaches device internals through a helper hop passes every per-file
NEON1xx rule but is caught by NEON501 with the full call chain attached.
"""

import inspect

import pytest

from repro.staticcheck import Config, analyze_paths
from repro.staticcheck.graph import ProjectModel
from repro.staticcheck.rules.wholeprogram import (
    check_boundary_taint,
    check_dead_registry,
    check_observation_api,
    check_rng_flow,
    check_unused_imports,
)

from tests.staticcheck.conftest import WHOLEPROG_PKG

LAUNDERER = WHOLEPROG_PKG / "repro" / "core" / "launderer.py"


@pytest.fixture(scope="module")
def model():
    return ProjectModel.build(paths=[WHOLEPROG_PKG])


@pytest.fixture(scope="module")
def config():
    return Config()


# ----------------------------------------------------------------------
# NEON501 — the laundering acceptance criterion
# ----------------------------------------------------------------------
def test_per_file_rules_pass_on_the_launderer():
    # The boundary module never imports repro.gpu, so NEON101/102 are
    # blind to it — exactly the gap NEON501 exists to close.
    violations = analyze_paths([LAUNDERER], Config())
    assert violations == [], "\n".join(v.render() for v in violations)


def test_neon501_catches_the_two_hop_laundering(model, config):
    violations = list(check_boundary_taint(model, config))
    assert violations, "NEON501 found nothing in the laundering fixture"
    chains = [
        [hop[0] for hop in violation.chain]
        for violation in violations
        if violation.path == str(LAUNDERER)
    ]
    assert [
        "repro.core.launderer.decide",
        "repro.helpers.relay.probe",
        "repro.gpu.device.read_queue",
    ] in chains


def test_neon501_anchors_at_the_boundary_call_site(model, config):
    decide = next(
        violation
        for violation in check_boundary_taint(model, config)
        if "decide" in violation.message
    )
    assert violation_line_text(decide) == "return relay.probe()"
    assert "repro.gpu.device.read_queue" in decide.message
    rendered = decide.render()
    assert "call chain:" in rendered
    assert "relay.py" in rendered


def violation_line_text(violation):
    from pathlib import Path

    return Path(violation.path).read_text().splitlines()[violation.line - 1].strip()


def test_neon501_does_not_flag_sanctioned_or_innocent_paths(model, config):
    violations = list(check_boundary_taint(model, config))
    assert not any("innocent" in v.message for v in violations)
    assert not any("harmless" in hop[0] for v in violations for hop in v.chain)


# ----------------------------------------------------------------------
# NEON502 — RNG-stream dataflow
# ----------------------------------------------------------------------
def test_neon502_flags_escape_construction_and_flow(model, config):
    violations = list(check_rng_flow(model, config))
    by_file = {v.path.rsplit("/", 1)[-1] for v in violations}
    assert by_file == {"shared_rng.py", "mixer.py", "uses_rng.py"}
    flow = next(v for v in violations if v.path.endswith("uses_rng.py"))
    assert "STREAM" in flow.message
    assert len(flow.chain) == 2  # creation site -> importing module
    local = [v for v in violations if v.path.endswith("shared_rng.py")]
    # Only the module-scope stream is flagged; the function-local one
    # in a non-client module is legitimate.
    assert len(local) == 1
    assert "STREAM" in local[0].message


# ----------------------------------------------------------------------
# NEON503 — observation-API isolation
# ----------------------------------------------------------------------
def test_neon503_flags_only_off_api_attributes(model, config):
    violations = list(check_observation_api(model, config))
    assert [v.rule_id for v in violations] == ["NEON503"]
    assert ".device_secrets" in violations[0].message
    assert violations[0].path.endswith("policy.py")


def test_observation_api_matches_interception_manager_surface():
    # The declarative allowlist in staticcheck.config must track the real
    # InterceptionManager public API — both directions.
    from repro.neon.interception import InterceptionManager

    public = {
        name
        for name, member in inspect.getmembers(InterceptionManager)
        if not name.startswith("_")
        and (inspect.isfunction(member) or isinstance(member, property))
    }
    assert Config().observation_api == frozenset(public)


# ----------------------------------------------------------------------
# NEON504 — dead registry entries
# ----------------------------------------------------------------------
def test_neon504_flags_exactly_the_dead_entries(model, config):
    violations = list(check_dead_registry(model, config))
    names = sorted(v.message.split("'")[1] for v in violations)
    assert names == ["NEVER_ARMED", "NEVER_EMITTED"]


def test_neon504_skips_partial_scans(config):
    # Scanning a subtree without the registry modules must not invent
    # "dead" entries for constants it cannot see the emit sites of.
    partial = ProjectModel.build(paths=[WHOLEPROG_PKG / "repro" / "core"])
    assert list(check_dead_registry(partial, config)) == []


# ----------------------------------------------------------------------
# NEON505 — unused imports, re-export aware
# ----------------------------------------------------------------------
def test_neon505_reexport_awareness(model, config):
    violations = list(check_unused_imports(model, config))
    flagged = sorted(
        (v.path.rsplit("/", 1)[-1], v.message.split("'")[1]) for v in violations
    )
    # util/__init__: probe survives (imported via the package by
    # consumer.py), harmless survives (__all__); local_ok is dead.
    # consumer.py: json is dead.
    assert flagged == [("__init__.py", "local_ok"), ("consumer.py", "json")]
