"""Trace-event rules (NEON401/NEON402): positives, negatives, scoping."""

from repro.obs.events import constant_names, registered_kinds
from repro.staticcheck import Config, analyze_paths
from repro.staticcheck.core import module_name_for

from tests.staticcheck.conftest import rule_locations

EVENTS_PKG_FILE = "bad_events.py"


def events_pkg(fixtures):
    return fixtures / "boundary_pkg" / "repro"


def test_bad_events_fixture_flags_each_seeded_violation(fixtures):
    violations = analyze_paths([events_pkg(fixtures) / "bad_events.py"], Config())
    assert rule_locations(violations) == [
        ("NEON401", 7),   # literal "fault"
        ("NEON401", 8),   # literal kind= kwarg
        ("NEON402", 9),   # MY_PRIVATE_KIND not registered
        ("NEON402", 10),  # events.NOT_A_KIND not registered
        ("NEON401", 14),  # literal branch of the conditional kind
        ("NEON401", 20),  # deep receiver self.kernel.trace.emit
    ]


def test_pragma_grants_audited_exception(fixtures):
    violations = analyze_paths([events_pkg(fixtures) / "bad_events.py"], Config())
    # Line 17 uses a literal kind under ``# neonlint: allow[NEON401]``.
    assert all(violation.line != 17 for violation in violations)


def test_clean_events_module_passes(fixtures):
    assert analyze_paths([events_pkg(fixtures) / "good_events.py"], Config()) == []


def test_fixture_resolves_to_in_scope_module_name(fixtures):
    module = module_name_for(events_pkg(fixtures) / "bad_events.py")
    assert module == "repro.bad_events"
    assert Config().is_trace_emit_module(module)


def test_rules_scoped_to_configured_modules_only(fixtures):
    # Out-of-scope modules (tests, scratch recorders) emit freely.
    config = Config(trace_emit_modules=("somewhere.else",))
    assert analyze_paths([events_pkg(fixtures) / "bad_events.py"], config) == []


def test_registry_constants_cover_all_registered_kinds():
    # Every registered kind is reachable through a module constant, so
    # NEON402's "use a registered constant" advice is always satisfiable.
    from repro.obs import events as events_module

    names = constant_names()
    values = {getattr(events_module, name) for name in names}
    assert values == set(registered_kinds())


# ----------------------------------------------------------------------
# Monitor-style emits (the slo.* / window.* observability kinds)
# ----------------------------------------------------------------------

def test_bad_monitor_fixture_flags_each_seeded_violation(fixtures):
    violations = analyze_paths(
        [events_pkg(fixtures) / "bad_monitor.py"], Config()
    )
    assert rule_locations(violations) == [
        ("NEON401", 14),  # literal "window.close"
        ("NEON402", 15),  # SLO_BREACHED look-alike not registered
        ("NEON402", 17),  # kind routed through a local variable
    ]


def test_registered_conditional_monitor_emit_passes(fixtures):
    # good_transition (the events.SLO_VIOLATION-if-else idiom used by the
    # real monitor) must be clean: all flagged lines sit in window_closed.
    violations = analyze_paths(
        [events_pkg(fixtures) / "bad_monitor.py"], Config()
    )
    assert all(violation.line < 19 for violation in violations)


def test_monitor_kinds_are_registered():
    from repro.obs import events as events_module

    kinds = set(registered_kinds())
    for name in ("WINDOW_CLOSE", "SLO_VIOLATION", "SLO_RECOVERED"):
        assert getattr(events_module, name) in kinds
