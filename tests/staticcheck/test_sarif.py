"""SARIF 2.1.0 export: structural conformance and chain rendering."""

import json

from repro.staticcheck.core import Violation
from repro.staticcheck.report import format_report
from repro.staticcheck.rules import RULES
from repro.staticcheck.sarif import SARIF_SCHEMA, SARIF_VERSION, to_sarif


def _chained(path):
    return Violation(
        path=str(path),
        line=11,
        col=4,
        rule_id="NEON501",
        message="call chain reaches device-internal code",
        chain=(
            ("repro.core.launderer.decide", str(path), 11),
            ("repro.helpers.relay.probe", str(path), 10),
            ("repro.gpu.device.read_queue", str(path), 4),
        ),
    )


def test_sarif_skeleton(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("x = 1\n")
    plain = Violation(str(mod), 1, 0, "NEON505", "'json' is unused")
    log = to_sarif([plain], RULES, root=tmp_path)
    assert log["version"] == SARIF_VERSION
    assert log["$schema"] == SARIF_SCHEMA
    run = log["runs"][0]
    assert run["tool"]["driver"]["name"] == "neonlint"
    ids = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert ids == sorted(RULES)
    result = run["results"][0]
    assert result["ruleId"] == "NEON505"
    assert result["level"] == "error"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "mod.py"  # repo-relative
    assert location["region"]["startLine"] == 1
    assert "neonlintFingerprint/v1" in result["partialFingerprints"]


def test_sarif_chain_becomes_code_flow(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("\n" * 12)
    log = to_sarif([_chained(mod)], RULES, root=tmp_path)
    result = log["runs"][0]["results"][0]
    related = result["relatedLocations"]
    assert [loc["message"]["text"] for loc in related] == [
        "repro.core.launderer.decide",
        "repro.helpers.relay.probe",
        "repro.gpu.device.read_queue",
    ]
    flow = result["codeFlows"][0]["threadFlows"][0]["locations"]
    assert len(flow) == 3
    assert flow[-1]["location"]["message"]["text"] == "repro.gpu.device.read_queue"


def test_sarif_is_json_serializable_and_dispatches(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("x = 1\n")
    plain = Violation(str(mod), 1, 0, "NEON000", "boom")
    text = format_report([plain], 1, "sarif", rules=RULES, root=tmp_path)
    parsed = json.loads(text)
    assert parsed["runs"][0]["results"][0]["ruleId"] == "NEON000"


def test_sarif_columns_are_one_based(tmp_path):
    mod = tmp_path / "mod.py"
    mod.write_text("x = 1\n")
    shifted = Violation(str(mod), 1, 4, "NEON505", "msg")
    log = to_sarif([shifted], RULES, root=tmp_path)
    region = log["runs"][0]["results"][0]["locations"][0]["physicalLocation"]["region"]
    assert region["startColumn"] == 5
