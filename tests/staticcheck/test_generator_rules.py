"""Generator-discipline rules (NEON301-NEON303): positives and negatives."""

from repro.staticcheck import Config, analyze_paths

from tests.staticcheck.conftest import rule_locations


def test_bad_generators_fixture_flags_each_seeded_violation(fixtures):
    violations = analyze_paths([fixtures / "bad_generators.py"], Config())
    assert rule_locations(violations) == [
        ("NEON301", 9),  # self._drain_all() discarded (local generator)
        ("NEON301", 10),  # self.neon.drain() discarded (known generator)
        ("NEON302", 11),  # yield self.neon.drain()
        ("NEON303", 12),  # self.neon.engage_all() flip count discarded
    ]


def test_clean_generator_module_passes(fixtures):
    assert analyze_paths([fixtures / "good_generators.py"], Config()) == []


def test_local_generator_detection_ignores_nested_scopes(tmp_path):
    # make() is NOT a generator: the yield belongs to the nested function.
    module = tmp_path / "nested.py"
    module.write_text(
        "def make():\n"
        "    def inner():\n"
        "        yield 1\n"
        "    return inner\n"
        "\n"
        "def run():\n"
        "    make()\n"
        "    inner()\n"
    )
    violations = analyze_paths([module], Config())
    # make() is no generator; inner() is one, and its bare call is flagged.
    assert rule_locations(violations) == [("NEON301", 8)]


def test_generator_passed_as_argument_is_not_flagged(tmp_path):
    # Spawning a process from a generator hands the object over; that is
    # the legitimate way to *not* yield from it.
    module = tmp_path / "spawned.py"
    module.write_text(
        "def loop():\n"
        "    yield 1\n"
        "\n"
        "def setup(sim):\n"
        "    sim.spawn(loop(), name='scheduler')\n"
    )
    assert analyze_paths([module], Config()) == []


def test_configured_generator_methods_extend_detection(tmp_path):
    module = tmp_path / "custom.py"
    module.write_text("def run(neon):\n    neon.settle()\n")
    assert analyze_paths([module], Config()) == []
    config = Config(generator_methods=("settle",))
    violations = analyze_paths([module], config)
    assert rule_locations(violations) == [("NEON301", 2)]
