"""Span-pair rule (NEON406): positives, negatives, autofix parity."""

from textwrap import dedent

from repro.obs.events import constant_names
from repro.obs.spans import span_constant_names, span_kinds
from repro.staticcheck import Config, analyze_paths
from repro.staticcheck.engine import run_analysis
from repro.staticcheck.fix import apply_fixes

from tests.staticcheck.conftest import rule_locations


def spans_fixture(fixtures):
    return fixtures / "boundary_pkg" / "repro" / "bad_spans.py"


def test_bad_spans_fixture_flags_each_seeded_violation(fixtures):
    violations = analyze_paths([spans_fixture(fixtures)], Config())
    assert rule_locations(violations) == [
        ("NEON401", 7),   # literal "barrier_begin" (both rules fire)
        ("NEON406", 7),
        ("NEON402", 8),   # MY_PHASE_BEGIN unregistered everywhere
        ("NEON406", 8),
        ("NEON402", 9),   # kwarg form
        ("NEON406", 9),
        ("NEON402", 13),  # non-span branch of the conditional kind
        ("NEON406", 13),
    ]


def test_pragma_grants_audited_exception(fixtures):
    violations = analyze_paths([spans_fixture(fixtures)], Config())
    # Line 18 carries ``# neonlint: allow[NEON401,NEON406]``.
    assert all(violation.line != 18 for violation in violations)


def test_registered_span_emits_pass(fixtures):
    # Lines 15-16 use registered pair constants / non-span kinds.
    violations = analyze_paths([spans_fixture(fixtures)], Config())
    assert all(violation.line not in (15, 16) for violation in violations)


def test_rule_scoped_to_configured_modules_only(fixtures):
    config = Config(trace_emit_modules=("somewhere.else",))
    assert analyze_paths([spans_fixture(fixtures)], config) == []


def test_span_constants_are_a_subset_of_event_constants():
    # NEON406's advice (use the paired constant) is always satisfiable
    # through the same events-module spelling NEON402 points at.
    assert span_constant_names() <= constant_names()
    from repro.obs import events as events_module

    resolved = {getattr(events_module, name) for name in span_constant_names()}
    assert resolved == set(span_kinds())


def test_every_boundary_named_constant_is_paired():
    # The production registry itself satisfies the rule: no *_BEGIN/_END
    # constant exists outside a registered pair.
    boundary = {
        name for name in constant_names()
        if name.endswith(("_BEGIN", "_END"))
    }
    assert boundary <= span_constant_names()


# ----------------------------------------------------------------------
# Autofix parity with NEON401/403
# ----------------------------------------------------------------------

def _fix_once(path):
    result = run_analysis([path], Config(), whole_program=True)
    return result, apply_fixes(result.violations)


def test_span_literal_is_rewritten_once(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    mod = pkg / "emitter.py"
    mod.write_text(dedent("""\
        def run(trace, now):
            trace.emit(now, "scheduler", "barrier_begin", episode=1)
    """))
    result, outcome = _fix_once(tmp_path)
    fired = sorted(v.rule_id for v in result.violations)
    assert "NEON401" in fired and "NEON406" in fired
    # Both findings count as fixed, through one edit.
    assert sorted(v.rule_id for v in outcome.fixed) == ["NEON401", "NEON406"]
    text = mod.read_text()
    assert text.count("events.BARRIER_BEGIN") == 1
    assert "from repro.obs import events" in text
    assert '"barrier_begin"' not in text
    after = run_analysis([tmp_path], Config(), whole_program=True)
    assert not any(
        v.rule_id in ("NEON401", "NEON406") for v in after.violations
    )


def test_unpaired_span_literal_is_skipped_not_mangled(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    mod = pkg / "emitter.py"
    source = dedent("""\
        def run(trace, now):
            trace.emit(now, "scheduler", "my.phase_begin", task="t")
    """)
    mod.write_text(source)
    _, outcome = _fix_once(tmp_path)
    assert outcome.fixed == []
    assert {v.rule_id for v in outcome.skipped} == {"NEON401", "NEON406"}
    assert mod.read_text() == source  # untouched
