"""Determinism rules (NEON201-NEON204): positives and negatives."""

from repro.staticcheck import Config, analyze_paths

from tests.staticcheck.conftest import rule_locations


def test_bad_determinism_fixture_flags_each_seeded_violation(fixtures):
    violations = analyze_paths([fixtures / "bad_determinism.py"], Config())
    assert rule_locations(violations) == [
        ("NEON202", 3),  # import random
        ("NEON201", 10),  # time.time()
        ("NEON203", 14),  # unseeded np.random.default_rng()
        ("NEON203", 18),  # np.random.seed(7)
        ("NEON203", 19),  # np.random.random()
        ("NEON204", 24),  # for channel in ready (a set)
    ]


def test_clean_determinism_module_passes(fixtures):
    assert analyze_paths([fixtures / "good_determinism.py"], Config()) == []


def test_rng_registry_module_is_exempt(tmp_path):
    # The same unseeded/global RNG calls are legal inside the module the
    # config designates as the seeded-stream registry.
    source = (
        "import numpy as np\n"
        "def make():\n"
        "    return np.random.default_rng()\n"
    )
    module = tmp_path / "rng.py"
    module.write_text(source)
    flagged = analyze_paths([module], Config())
    assert [v.rule_id for v in flagged] == ["NEON203"]
    exempt = analyze_paths([module], Config(rng_modules=("rng",)))
    assert exempt == []


def test_wall_clock_flagged_even_in_rng_module(tmp_path):
    # The rng exemption covers randomness, not clocks.
    module = tmp_path / "rng.py"
    module.write_text("import time\n\ndef stamp():\n    return time.time()\n")
    violations = analyze_paths([module], Config(rng_modules=("rng",)))
    assert [v.rule_id for v in violations] == ["NEON201"]


def test_wall_clock_reference_alias_flagged(tmp_path):
    # Stashing the function reference is as nondeterministic as calling it;
    # the alias must not slip past call-site matching.
    module = tmp_path / "aliased_clock.py"
    module.write_text(
        "import time\n"
        "from time import perf_counter\n"
        "def clocks():\n"
        "    a = time.perf_counter\n"
        "    b = perf_counter\n"
        "    return a, b\n"
    )
    violations = analyze_paths([module], Config())
    assert [(v.rule_id, v.line) for v in violations] == [
        ("NEON201", 4),
        ("NEON201", 5),
    ]


def test_host_clock_modules_exempt_from_wall_clock_rule(tmp_path):
    # Host-side orchestration (the parallel cell farm) legitimately
    # measures host wall time; the exemption is scoped per module.
    source = (
        "import time\n"
        "def stamp():\n"
        "    clock = time.perf_counter\n"
        "    return clock(), time.monotonic()\n"
    )
    module = tmp_path / "farm.py"
    module.write_text(source)
    flagged = analyze_paths([module], Config(host_clock_modules=()))
    assert {v.rule_id for v in flagged} == {"NEON201"}
    exempt = analyze_paths([module], Config(host_clock_modules=("farm",)))
    assert exempt == []


def test_default_config_exempts_audited_host_clock_surface_only():
    # Exactly two modules may read the host clock: the cell farm and the
    # phase profiler (everything else gets time via profile.host_clock).
    config = Config()
    assert config.is_host_clock_module("repro.experiments.parallel")
    assert config.is_host_clock_module("repro.obs.profile")
    assert not config.is_host_clock_module("repro.experiments.runner")
    assert not config.is_host_clock_module("repro.experiments.progress")
    assert not config.is_host_clock_module("repro.obs.store")
    assert not config.is_host_clock_module("repro.obs.perf")
    assert not config.is_host_clock_module("repro.sim.engine")


def test_bad_host_clock_fixture_flags_every_clock_read(fixtures):
    # perf_counter in a module outside the audited surface is NEON201 —
    # both dotted calls, the from-import alias, and time.time().
    violations = analyze_paths([fixtures / "bad_host_clock.py"], Config())
    assert rule_locations(violations) == [
        ("NEON201", 14),  # time.perf_counter() (start)
        ("NEON201", 15),  # time.perf_counter() (stop)
        ("NEON201", 19),  # aliased perf_counter()
        ("NEON201", 23),  # time.time()
    ]


def test_numpy_alias_tracking(tmp_path):
    module = tmp_path / "aliases.py"
    module.write_text(
        "from numpy.random import default_rng\n"
        "import numpy.random as npr\n"
        "def make():\n"
        "    return default_rng(), npr.default_rng()\n"
    )
    violations = analyze_paths([module], Config())
    assert [(v.rule_id, v.line) for v in violations] == [
        ("NEON203", 4),
        ("NEON203", 4),
    ]
