"""Shared fixtures: a bare simulator and a fully wired fast environment."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_env
from repro.osmodel.costs import CostParams
from repro.sim.engine import Simulator


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def quick_costs() -> CostParams:
    """Costs with short periods so integration tests converge quickly."""
    costs = CostParams()
    costs.timeslice_us = 5_000.0
    costs.sample_max_us = 1_000.0
    costs.max_request_us = 20_000.0
    return costs


@pytest.fixture
def env_factory():
    """Factory for wired environments with a chosen scheduler."""

    def factory(scheduler: str = "direct", seed: int = 0, **kwargs):
        return build_env(scheduler, seed=seed, **kwargs)

    return factory
