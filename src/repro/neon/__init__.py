"""NEON — the interception layer between kernel and device.

Models the paper's prototype (Section 4): the initialization-phase state
machine that discovers each channel's three virtual memory areas
(:mod:`~repro.neon.discovery`), engage/disengage control of channel
register pages, reference-counter scans after re-engagement, and the
barrier/drain machinery used by both disengaged schedulers
(:mod:`~repro.neon.interception`, :mod:`~repro.neon.barrier`).

Schedulers must obtain *all* device knowledge through this layer — faults,
scans, and polling — never from simulator ground truth.
"""

from repro.neon.barrier import DrainResult
from repro.neon.discovery import ChannelDiscovery, DiscoveryState, Vma, VmaKind
from repro.neon.interception import InterceptionManager
from repro.neon.stats import ChannelKind, ChannelObservations, RequestSizeEstimator

__all__ = [
    "ChannelDiscovery",
    "ChannelKind",
    "ChannelObservations",
    "DiscoveryState",
    "DrainResult",
    "InterceptionManager",
    "RequestSizeEstimator",
    "Vma",
    "VmaKind",
]
