"""Observed (not ground-truth) request statistics.

Everything here is built from events the interception layer can legally
see: fault-time submissions, polled completions, and ring-buffer scans.
The Disengaged Fair Queueing scheduler feeds sampling-period observations
into a :class:`RequestSizeEstimator` per channel and uses the resulting
averages as its resource-usage proxy (Section 3.3's software mechanism).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Optional


class ChannelKind(enum.Enum):
    """Engine class of a channel, as learned at discovery time.

    This is the *observation-level* twin of the device's request-kind
    enum: NEON's initialization state machine classifies each channel
    while mapping its three VMAs (Section 4), so the kind is legitimate
    scheduler knowledge.  Schedulers import this — never
    ``repro.gpu.request.RequestKind`` — keeping the disengagement
    boundary import-clean (enforced by neonlint rule NEON101).
    """

    COMPUTE = "compute"
    GRAPHICS = "graphics"
    DMA = "dma"


class RequestSizeEstimator:
    """Windowed average of observed request service times for one channel."""

    def __init__(self, window: int = 128) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        self._samples: deque[float] = deque(maxlen=window)
        self.total_observed = 0

    def record(self, service_us: float) -> None:
        if service_us < 0:
            raise ValueError("negative service time")
        self._samples.append(service_us)
        self.total_observed += 1

    @property
    def mean(self) -> Optional[float]:
        """Mean observed size, or None before any observation."""
        if not self._samples:
            return None
        return sum(self._samples) / len(self._samples)

    @property
    def sample_count(self) -> int:
        return len(self._samples)


class ObservedServiceMeter:
    """Estimates request service times from polled completion times.

    ``service ≈ observe_time − max(submit_time, previous observation on the
    same channel)`` — the same estimator DFQ sampling uses.  Shared by the
    engaged per-request baselines (SFQ, DRR, Credit), which watch every
    request's completion.
    """

    def __init__(self) -> None:
        self._last_observed: dict[int, float] = {}
        self._global_last = 0.0

    def measure(self, channel_id: int, submit_time: float, observe_time: float) -> float:
        # The main engine serializes requests, so any completion observed
        # on *any* watched channel bounds when this request can have
        # started — without it, time spent queued behind other channels
        # would be misattributed as service.
        busy_since = max(
            submit_time,
            self._global_last,
            self._last_observed.get(channel_id, 0.0),
        )
        self._last_observed[channel_id] = observe_time
        self._global_last = max(self._global_last, observe_time)
        return max(observe_time - busy_since, 0.05)


class ChannelObservations:
    """Everything the scheduler has legally observed about one channel."""

    def __init__(
        self,
        channel_id: int,
        kind: Optional[ChannelKind] = None,
        window: int = 128,
    ) -> None:
        self.channel_id = channel_id
        #: Engine class recorded by discovery (None if never classified).
        #: Named ``channel_kind`` — not ``kind`` — so it never collides
        #: with the device-side attribute neonlint forbids (NEON102).
        self.channel_kind = kind
        self.sizes = RequestSizeEstimator(window)
        #: Last submitted reference number seen at a re-engagement scan.
        self.last_scanned_ref = 0
        #: Reference counter value at the previous engagement, used to count
        #: how many requests completed during a free-run period.
        self.ref_at_last_engagement = 0

    def completed_since_last_engagement(self, refcounter: int) -> int:
        """Requests that finished since the previous engagement scan."""
        return max(0, refcounter - self.ref_at_last_engagement)

    def mark_engagement(self, refcounter: int) -> None:
        self.ref_at_last_engagement = refcounter
