"""The channel-discovery state machine (NEON's initialization phase).

NEON identifies, per channel, three virtual memory areas: the *command
buffer* (where requests are constructed), the *ring buffer* (pointers to
consecutive requests), and the *channel register* (the doorbell).  Only
when all three are known is the channel marked "active" and eligible for
interception.  The state machine here mirrors that protocol; the kernel
runs it on the mmap events of channel setup.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass


class VmaKind(enum.Enum):
    COMMAND_BUFFER = "command_buffer"
    RING_BUFFER = "ring_buffer"
    CHANNEL_REGISTER = "channel_register"


class DiscoveryState(enum.Enum):
    INIT = "init"
    PARTIAL = "partial"
    ACTIVE = "active"


_vma_addresses = itertools.count(0x7F00_0000_0000, 0x1000)


@dataclass(frozen=True)
class Vma:
    """One mapped virtual memory area of a channel."""

    kind: VmaKind
    channel_id: int
    address: int

    @classmethod
    def fresh(cls, kind: VmaKind, channel_id: int) -> "Vma":
        return cls(kind, channel_id, next(_vma_addresses))


class ChannelDiscovery:
    """Tracks mmap events for one channel until all three VMAs are known."""

    def __init__(self, channel_id: int) -> None:
        self.channel_id = channel_id
        self.state = DiscoveryState.INIT
        self.vmas: dict[VmaKind, Vma] = {}

    def observe_mmap(self, vma: Vma) -> DiscoveryState:
        """Feed one mmap event; returns the resulting state.

        Duplicate mappings of the same kind replace the previous one (the
        driver occasionally remaps); mappings for other channels are
        rejected.
        """
        if vma.channel_id != self.channel_id:
            raise ValueError(
                f"VMA for channel {vma.channel_id} fed to discovery of "
                f"channel {self.channel_id}"
            )
        self.vmas[vma.kind] = vma
        if len(self.vmas) == len(VmaKind):
            self.state = DiscoveryState.ACTIVE
        else:
            self.state = DiscoveryState.PARTIAL
        return self.state

    def observe_munmap(self, kind: VmaKind) -> DiscoveryState:
        """An unmap invalidates the channel until the VMA reappears."""
        self.vmas.pop(kind, None)
        if not self.vmas:
            self.state = DiscoveryState.INIT
        else:
            self.state = DiscoveryState.PARTIAL
        return self.state

    @property
    def active(self) -> bool:
        return self.state is DiscoveryState.ACTIVE

    def run_full_setup(self) -> None:
        """Observe the standard three-mmap setup sequence."""
        for kind in (
            VmaKind.COMMAND_BUFFER,
            VmaKind.RING_BUFFER,
            VmaKind.CHANNEL_REGISTER,
        ):
            self.observe_mmap(Vma.fresh(kind, self.channel_id))
