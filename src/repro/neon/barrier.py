"""Barrier and drain results.

A drain waits — through the polling service, at polling granularity — for
every watched channel's reference counter to catch up with its last
submitted reference number.  A timeout identifies channels whose requests
appear stuck (runaway-request detection)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel


@dataclass
class DrainResult:
    """Outcome of a drain operation."""

    drained: bool
    #: Channels still holding unfinished requests at timeout.
    offenders: list["Channel"] = field(default_factory=list)
    #: Virtual time spent waiting for the drain.
    waited_us: float = 0.0

    @property
    def timed_out(self) -> bool:
        return not self.drained
