"""Barrier and drain results.

A drain waits — through the polling service, at polling granularity — for
every watched channel's reference counter to catch up with its last
submitted reference number.  A timeout identifies channels whose requests
appear stuck (runaway-request detection)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs import events

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.sim.trace import TraceRecorder


@dataclass
class DrainResult:
    """Outcome of a drain operation."""

    drained: bool
    #: Channels still holding unfinished requests at timeout.
    offenders: list["Channel"] = field(default_factory=list)
    #: Virtual time spent waiting for the drain.
    waited_us: float = 0.0

    @property
    def timed_out(self) -> bool:
        return not self.drained

    def emit_stall(self, trace: "TraceRecorder", now: float) -> None:
        """Record the drain's stall on the trace (one event per drain)."""
        if not trace.enabled:
            return
        trace.emit(
            now,
            "neon.drain",
            events.DRAIN_STALL,
            waited_us=self.waited_us,
            drained=self.drained,
            channels=len(self.offenders),
            offenders=sorted(channel.channel_id for channel in self.offenders),
        )
