"""The interception manager — NEON's kernel-internal interface.

Everything a scheduler may legally do to learn about or control the device
goes through this object:

* flip channel-register pages between mapped (direct access) and protected
  (faulting) — engagement control;
* scan a channel's command queue for its last submitted reference number
  (charged the paper's re-engagement status-update cost);
* drain channels by watching reference counters through the polling
  service (at polling granularity, with optional timeout for runaway
  detection);
* accumulate per-channel observed statistics from sampled requests.

Methods that consume virtual time are generators meant to be driven from a
scheduler's own process via ``yield from``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.faults import registry as fault_points
from repro.neon.barrier import DrainResult
from repro.neon.stats import ChannelKind, ChannelObservations
from repro.obs import events
from repro.obs.engagement import EngagementLedger
from repro.sim.events import AnyOf

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.osmodel.kernel import Kernel
    from repro.osmodel.task import Task


class InterceptionManager:
    """Tracks active channels and mediates all scheduler-device contact."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.costs = kernel.costs
        self.polling = kernel.polling
        self.trace = kernel.trace
        self.faults = kernel.faults
        self.channels: dict[int, "Channel"] = {}
        self.observations: dict[int, ChannelObservations] = {}
        #: Per-task engaged/disengaged channel-time, fed by page flips.
        self.engagement = EngagementLedger()

    # ------------------------------------------------------------------
    # Channel tracking
    # ------------------------------------------------------------------
    def track(self, channel: "Channel") -> ChannelObservations:
        """Begin tracking a newly active channel.

        The engine class is classified here — discovery just finished
        mapping the channel's VMAs — and recorded at observation level so
        schedulers never touch the device-side kind enum.
        """
        self.channels[channel.channel_id] = channel
        observation = ChannelObservations(
            channel.channel_id, ChannelKind(channel.kind.value)
        )
        self.observations[channel.channel_id] = observation
        self.engagement.track(
            channel.channel_id,
            channel.task.name,
            channel.register_page.protected,
            self.sim.now,
        )
        return observation

    def untrack(self, channel: "Channel") -> None:
        self.channels.pop(channel.channel_id, None)
        self.observations.pop(channel.channel_id, None)
        self.engagement.untrack(channel.channel_id, self.sim.now)

    def live_channels(self) -> list["Channel"]:
        return [
            channel for channel in self.channels.values() if not channel.dead
        ]

    def channels_of(self, task: "Task") -> list["Channel"]:
        return [
            channel
            for channel in self.channels.values()
            if not channel.dead and channel.task is task
        ]

    def observation(self, channel: "Channel") -> ChannelObservations:
        return self.observations[channel.channel_id]

    def release_task(self, task: "Task") -> None:
        """Drop every channel of an exited task, dead or alive.

        Unlike :meth:`channels_of` (live channels only), task teardown
        must also finalize dead channels' engagement accounting, so the
        sweep lives here rather than in scheduler code — schedulers never
        iterate the raw channel table.
        """
        for channel in list(self.channels.values()):
            if channel.task is task:
                self.untrack(channel)

    # ------------------------------------------------------------------
    # Engagement control (page protection)
    # ------------------------------------------------------------------
    def engage_channel(self, channel: "Channel") -> int:
        """Protect one register page; returns the number of flips (0/1)."""
        if channel.register_page.protected:
            return 0
        channel.register_page.protect()
        self.engagement.set_state(channel.channel_id, True, self.sim.now)
        if self.trace.enabled:
            self.trace.emit(
                self.sim.now, "neon", events.CHANNEL_ENGAGED,
                task=channel.task.name, channel=channel.channel_id,
            )
        return 1

    def disengage_channel(self, channel: "Channel") -> int:
        """Restore direct mapping; returns the number of flips (0/1)."""
        if not channel.register_page.protected:
            return 0
        channel.register_page.unprotect()
        self.engagement.set_state(channel.channel_id, False, self.sim.now)
        if self.trace.enabled:
            self.trace.emit(
                self.sim.now, "neon", events.CHANNEL_DISENGAGED,
                task=channel.task.name, channel=channel.channel_id,
            )
        return 1

    def engage_task(self, task: "Task") -> int:
        return sum(self.engage_channel(c) for c in self.channels_of(task))

    def disengage_task(self, task: "Task") -> int:
        return sum(self.disengage_channel(c) for c in self.channels_of(task))

    def engage_all(self) -> int:
        """Barrier: stop new request submission in every task."""
        return sum(self.engage_channel(c) for c in self.live_channels())

    def flip_cost(self, flips: int) -> float:
        """Page-table update cost for ``flips`` protection changes (µs)."""
        cost = flips * self.costs.page_flip_us
        if flips > 0 and self.faults is not None:
            stall = self.faults.arm(fault_points.NEON_BARRIER_STALL)
            if stall is not None:
                cost += stall.magnitude_us
        return cost

    # ------------------------------------------------------------------
    # Runlist masking (requires hardware preemption support, §6.2)
    # ------------------------------------------------------------------
    def mask_channel(self, channel: "Channel") -> None:
        """Remove one channel from the hardware runlist."""
        channel.masked = True

    def unmask_channel(self, channel: "Channel") -> None:
        """Reinstate one channel on the runlist."""
        channel.masked = False
        self.kernel.device._engine_for(channel.kind).notify()

    # ------------------------------------------------------------------
    # Scans (the post-re-engagement status update, Section 4)
    # ------------------------------------------------------------------
    def scan_channel(self, channel: "Channel"):
        """Read the channel's last submitted reference number.

        A generator: yields the scan cost, then returns the value.  Also
        records it in the channel's observation log.  Under a stale-scan
        fault the scan returns the previous scan's value instead of the
        current one — the ring-buffer walk raced a concurrent update.
        """
        yield self.costs.reengage_scan_us
        observation = self.observations.get(channel.channel_id)
        value = channel.last_submitted_ref
        if self.faults is not None and observation is not None:
            stale = self.faults.arm(
                fault_points.NEON_STALE_SCAN, channel.task.name
            )
            if stale is not None:
                value = observation.last_scanned_ref
        if observation is not None:
            observation.last_scanned_ref = value
        return value

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def drain(
        self,
        channels: Optional[Iterable["Channel"]] = None,
        timeout_us: Optional[float] = None,
    ):
        """Wait until every given channel's submitted requests complete.

        A generator returning a :class:`DrainResult`.  Completion is
        observed through the polling service, so the wait resolves at
        polling granularity.  With ``timeout_us``, channels still busy at
        the deadline are reported as offenders (runaway detection).

        Callers wanting barrier semantics must :meth:`engage_all` first so
        no new requests slip in while draining.
        """
        start = self.sim.now
        targets = list(channels) if channels is not None else self.live_channels()
        pending: list["Channel"] = []
        target_refs: dict[int, int] = {}
        for channel in targets:
            # The drain target is the *scanned* reference number — all the
            # software can know.  Unfaulted it equals the true last
            # submitted ref; a stale scan can under-drain.
            scanned = yield from self.scan_channel(channel)
            if channel.refcounter < scanned:
                pending.append(channel)
                target_refs[channel.channel_id] = scanned
        if not pending:
            return self._drain_done(DrainResult(True, [], self.sim.now - start))

        remaining = len(pending)
        all_done = self.sim.event()

        def on_channel_drained(_channel: "Channel") -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0 and not all_done.triggered:
                all_done.trigger()

        watch_ids = [
            self.polling.watch(
                channel, target_refs[channel.channel_id], on_channel_drained
            )
            for channel in pending
        ]

        if timeout_us is None:
            yield all_done
            return self._drain_done(DrainResult(True, [], self.sim.now - start))

        deadline = self.sim.event()
        timer = self.sim.schedule(timeout_us, deadline.trigger)
        first = yield AnyOf(self.sim, [all_done, deadline])
        if first is all_done:
            timer.cancel()
            return self._drain_done(DrainResult(True, [], self.sim.now - start))
        for watch_id in watch_ids:
            self.polling.cancel(watch_id)
        offenders = [
            channel
            for channel in pending
            if channel.refcounter < target_refs[channel.channel_id]
        ]
        return self._drain_done(DrainResult(False, offenders, self.sim.now - start))

    def _drain_done(self, result: DrainResult) -> DrainResult:
        result.emit_stall(self.trace, self.sim.now)
        return result

    # ------------------------------------------------------------------
    # Hardware preemption and runlist masking (§6.2 extensions)
    # ------------------------------------------------------------------
    @property
    def preemption_available(self) -> bool:
        """Whether the device documents preemption + runlist control."""
        return self.kernel.device.params.preemption_supported

    def preempt_task(self, task: "Task") -> bool:
        """Preempt the task's running request, if any (needs hardware
        support).  The remainder is saved and resumes when the channel is
        next unmasked and served."""
        if not self.preemption_available:
            return False
        preempted = False
        for context in task.contexts:
            for engine in self.kernel.device.engines:
                preempted = engine.preempt_current(context) or preempted
        return preempted

    def mask_task(self, task: "Task") -> None:
        """Remove the task's channels from the hardware runlist."""
        for channel in self.channels_of(task):
            self.mask_channel(channel)

    def unmask_task(self, task: "Task") -> None:
        """Reinstate the task's channels on the runlist."""
        for channel in self.channels_of(task):
            self.unmask_channel(channel)

    # ------------------------------------------------------------------
    # Runaway identification (the Section 6.2 hardware assist)
    # ------------------------------------------------------------------
    def identify_running_task(self):
        """Which task's request is currently executing on the main engine.

        The paper's prototype cannot see this and notes that "simple
        documentation of existing mechanisms to identify ... the currently
        running context would enable full protection for schedulers like
        Disengaged Fair Queueing" (Section 6.2).  We model that documented
        query; it is the one sanctioned device read outside reference
        counters, used only to attribute a stuck drain to its culprit.
        """
        channel = self.kernel.device.main_engine.current_channel
        if channel is None:
            return None
        return channel.task

    # ------------------------------------------------------------------
    # Observed statistics
    # ------------------------------------------------------------------
    def mark_engagement(self, channel: "Channel") -> None:
        """Snapshot the channel's reference counter as this engagement's
        activity baseline.  The counter page is kernel-mapped (the polling
        thread reads it continuously), so the read is free."""
        self.observation(channel).mark_engagement(channel.refcounter)

    def task_quiet(self, task: "Task") -> bool:
        """Nothing outstanding on any of the task's channels.

        Judged purely from legal observations: during a sampling window
        every submission faults (so the last submitted reference number is
        known exactly), and completions come from the kernel-mapped
        reference counters.
        """
        return all(
            channel.refcounter >= channel.last_submitted_ref
            for channel in self.channels_of(task)
        )

    def record_sampled_service(self, channel: "Channel", service_us: float) -> None:
        """Feed one sampled request-size observation for a channel."""
        observation = self.observations.get(channel.channel_id)
        if observation is not None:
            observation.sizes.record(service_us)

    def estimated_request_size(self, channel: "Channel") -> Optional[float]:
        """Mean observed request size for the channel, if any samples."""
        observation = self.observations.get(channel.channel_id)
        if observation is None:
            return None
        return observation.sizes.mean
