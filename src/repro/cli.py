"""Command-line interface: ``repro <experiment> [--duration-ms N] [--seed N]``.

Runs any paper experiment and prints its table.  ``repro list`` shows the
catalog; ``repro all`` regenerates everything (slow).  ``repro staticcheck``
runs the neonlint static analyzer (see docs/STATIC_ANALYSIS.md).
``repro trace`` records, summarizes, filters, exports, and diffs
structured traces; ``repro perf`` records, tabulates, diffs, and gates
cross-run performance records; ``repro monitor`` runs any experiment
with streaming windowed metrics and SLO monitors over the live trace
stream (see docs/OBSERVABILITY.md); ``repro why`` attributes tail
latency (or a fired SLO) to its dominant delay component and the
interfering tenants via reconstructed lifecycle spans.

Cell-farm experiments (the figure drivers) accept ``--workers N`` to fan
independent simulation cells out over a process pool, and share a
content-keyed result cache so solo baselines are computed once per
invocation (``repro all`` reuses them across figures).  ``--no-cache``
disables sharing; ``--cache-dir DIR`` persists results across
invocations.  Tables on stdout are byte-identical regardless of worker
count or caching; the per-cell wall-time summary goes to stderr.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.experiments.parallel import (
    CellTiming,
    ResultCache,
    format_cell_timings,
)

from repro.experiments import (
    ablations,
    cpu_contention,
    overhead_breakdown,
    preemption,
    sensitivity,
    figure2,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    figure10,
    protection,
    section3_throughput,
    section6_dos,
    table1,
)

EXPERIMENTS: dict[str, tuple[Callable[..., str], str]] = {
    "table1": (table1.main, "benchmark characteristics (round/request sizes)"),
    "figure2": (figure2.main, "request inter-arrival and service CDFs"),
    "section3": (
        section3_throughput.main,
        "direct-access vs trap-per-request throughput",
    ),
    "figure4": (figure4.main, "standalone slowdown per app per scheduler"),
    "figure5": (figure5.main, "standalone Throttle slowdown vs request size"),
    "figure6": (figure6.main, "pairwise fairness (app vs Throttle)"),
    "figure7": (figure7.main, "pairwise concurrency efficiency"),
    "figure8": (figure8.main, "four-way fairness and efficiency"),
    "figure9": (figure9.main, "nonsaturating fairness"),
    "figure10": (figure10.main, "nonsaturating efficiency"),
    "protection": (protection.main, "infinite-loop kill and greedy batcher"),
    "section6": (section6_dos.main, "channel-exhaustion DoS and quota defense"),
    "ablations": (ablations.main, "vendor stats, free-run multiplier, baselines"),
    "preemption": (
        preemption.main,
        "section 6.2 what-if: hardware preemption + runlist masking",
    ),
    "breakdown": (
        overhead_breakdown.main,
        "where DFQ's overhead goes (drain wait vs sampling)",
    ),
    "cpu": (
        cpu_contention.main,
        "single-core host: management CPU load (section 5.2 claim)",
    ),
    "sensitivity": (
        sensitivity.main,
        "configuration-parameter sensitivity (section 5.2 claim)",
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the Disengaged Scheduling (ASPLOS 2014) evaluation.",
    )
    parser.add_argument(
        "experiment",
        help="experiment name, 'list', or 'all'",
    )
    parser.add_argument(
        "--duration-ms",
        type=float,
        default=None,
        help="simulated duration per run in milliseconds (default: per-experiment)",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size for experiments built on the cell farm "
        "(default: 1 = serial; output is identical either way)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the shared result cache (every cell recomputes)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="persist cell results as JSON under this directory and reuse "
        "them across invocations",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="live per-cell status on stderr while the cell farm runs "
        "(plain lines when stderr is not a TTY); stdout is unchanged",
    )
    return parser


def _call_experiment(
    runner: Callable[..., str],
    args: argparse.Namespace,
    cache: Optional[ResultCache],
    timings: list[CellTiming],
) -> None:
    """Invoke a driver, passing only the keywords its signature accepts.

    Non-cell experiments (table1, protection, …) simply never see the
    farm parameters.
    """
    kwargs: dict = {"seed": args.seed}
    if args.duration_ms is not None:
        kwargs["duration_us"] = args.duration_ms * 1000.0
    accepted = inspect.signature(runner).parameters
    if "workers" in accepted:
        kwargs["workers"] = args.workers
        kwargs["cache"] = cache
        kwargs["timings"] = timings
    runner(**kwargs)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "staticcheck":
        # Delegate to the neonlint CLI, which owns its own flags
        # (--format, --config, --list-rules) and exit-code contract.
        from repro.staticcheck.cli import main as staticcheck_main

        return staticcheck_main(argv[1:])
    if argv and argv[0] == "trace":
        # Likewise the trace analysis CLI (record/summary/export/diff).
        from repro.obs.cli import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] == "perf":
        # And the cross-run telemetry CLI (record/history/compare/gate).
        from repro.obs.perf import main as perf_main

        return perf_main(argv[1:])
    if argv and argv[0] == "monitor":
        # Streaming windowed metrics + SLO monitors over a live run.
        from repro.obs.monitor import main as monitor_main

        return monitor_main(argv[1:])
    if argv and argv[0] == "chaos":
        # And the fault-injection chaos matrix (matrix/run/plans); it is
        # deliberately not part of EXPERIMENTS so ``repro all`` output
        # stays byte-identical with the fault subsystem merged.
        from repro.experiments.chaos import cli_main as chaos_main

        return chaos_main(argv[1:])
    if argv and argv[0] == "why":
        # Root-cause attribution from reconstructed lifecycle spans:
        # ``repro why`` (tail latency) and ``repro why compare`` (runs).
        from repro.obs.why import main as why_main

        return why_main(argv[1:])
    if argv and argv[0] == "fleet":
        # Multi-GPU fleet scenarios (run/chaos/policies/placements); like
        # chaos, kept out of EXPERIMENTS so ``repro all`` is unchanged.
        from repro.fleet.cli import main as fleet_main

        return fleet_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:12s} {description}")
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; try 'repro list'",
            file=sys.stderr,
        )
        return 2
    # One cache for the whole invocation: ``repro all`` shares the solo
    # direct-access baselines across figure4/5, figure6/7, and figure9/10.
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.progress:
        from contextlib import ExitStack

        from repro.experiments.progress import CellProgress, progressing

        stack = ExitStack()
        stack.enter_context(progressing(CellProgress()))
    else:
        stack = None
    try:
        for name in names:
            runner, _ = EXPERIMENTS[name]
            print(f"== {name} ==")
            timings: list[CellTiming] = []
            _call_experiment(runner, args, cache, timings)
            if timings:
                print(f"[{name}] {format_cell_timings(timings)}", file=sys.stderr)
            print()
    finally:
        if stack is not None:
            stack.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
