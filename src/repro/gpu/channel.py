"""Channels — the user-mapped request queues of the device.

Each channel bundles the three virtual memory areas NEON's initialization
phase identifies (Section 4): the *command buffer* where requests are
constructed, the *ring buffer* holding pointers to consecutive requests,
and the *channel register* (doorbell) whose page can be protected for
interception.  For scheduling purposes the command and ring buffers
collapse into an ordered queue of :class:`~repro.gpu.request.Request`
objects plus the metadata a kernel-side scan can recover: the reference
number of the last submitted request and the reference counter the
hardware bumps on each completion.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.gpu.request import Request, RequestKind
from repro.osmodel.pagetable import RegisterPage

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import GpuContext
    from repro.osmodel.task import Task

_channel_ids = itertools.count(1)


class Channel:
    """One hardware request queue owned by a single context/task."""

    def __init__(self, context: "GpuContext", kind: RequestKind) -> None:
        self.channel_id = next(_channel_ids)
        self.context = context
        self.kind = kind
        self.register_page = RegisterPage(self.channel_id)
        #: Requests submitted but not yet started by the engine.
        self.queue: deque[Request] = deque()
        #: Reference number assigned to the most recently submitted request;
        #: recoverable by the kernel via a command-buffer scan.
        self.last_submitted_ref = 0
        #: Reference counter the hardware writes on completion; readable by
        #: anyone who maps the page (user library, kernel polling thread).
        self.refcounter = 0
        self.submitted_count = 0
        self.completed_count = 0
        #: The request currently executing on an engine, if any.
        self.running: Optional[Request] = None
        self.dead = False
        #: Runlist masking (requires hardware preemption support): a masked
        #: channel's queued work is invisible to the engine until unmasked.
        self.masked = False
        #: Polling services with at least one active watch on this channel;
        #: every refcounter advance notifies them so quiescent channels can
        #: be skipped by their passes (see repro.osmodel.polling).
        self._pollers: list = []

    @property
    def task(self) -> "Task":
        return self.context.task

    @property
    def pending(self) -> int:
        """Requests submitted but not completed (queued + running)."""
        return len(self.queue) + (1 if self.running is not None else 0)

    @property
    def drained(self) -> bool:
        """True when every submitted request has completed.

        This is exactly the reference-counter test NEON performs after
        re-engagement: the counter has caught up with the last submitted
        reference number.
        """
        return self.refcounter >= self.last_submitted_ref

    def enqueue(self, request: Request, now: float) -> None:
        """Append a request to the ring buffer (hardware-side effect)."""
        if self.dead:
            raise RuntimeError(f"submit on dead channel {self.channel_id}")
        if request.kind is not self.kind:
            raise ValueError(
                f"{request.kind.value} request on {self.kind.value} channel"
            )
        self.last_submitted_ref += 1
        self.submitted_count += 1
        request.channel = self
        request.ref = self.last_submitted_ref
        request.submit_time = now
        self.queue.append(request)

    def complete(self, request: Request) -> None:
        """Hardware completion: bump the reference counter."""
        ref = request.ref
        if ref is None:  # pragma: no cover - defensive
            raise RuntimeError("completing a request that was never enqueued")
        if ref > self.refcounter:
            self.refcounter = ref
            for poller in self._pollers:
                poller.mark_dirty(self)
        self.completed_count += 1

    def discard_queued(self) -> list[Request]:
        """Drop all queued requests (context kill); returns the casualties.

        The reference counter is advanced past the dropped requests so the
        channel reads as drained — modeling the driver's exit protocol
        returning the channel to a clean state.
        """
        casualties = list(self.queue)
        self.queue.clear()
        for request in casualties:
            request.aborted = True
        if self.running is None:
            self.advance_refcounter(self.last_submitted_ref)
        return casualties

    def advance_refcounter(self, value: int) -> None:
        """Move the reference counter forward (hardware-side write).

        All counter writes funnel through here (or :meth:`complete`'s
        inlined equivalent) so watching polling services learn the channel
        has progressed; the counter never moves backwards.
        """
        if value > self.refcounter:
            self.refcounter = value
            for poller in self._pollers:
                poller.mark_dirty(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Channel(#{self.channel_id}, {self.kind.value}, "
            f"task={self.task.name}, pending={self.pending})"
        )
