"""Device model parameters.

Defaults approximate the paper's Nvidia GTX670 ("Kepler") test platform.
Where the paper gives concrete numbers we use them; otherwise values are
chosen to reproduce the paper's qualitative behaviour and are documented
here and in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class GpuParams:
    """Tunable characteristics of the modeled accelerator."""

    #: Cost of switching the main engine between channels of *different*
    #: contexts (µs).  Kepler context switching is fast; this cost is what
    #: drives direct-access concurrency efficiency below 1.0 for
    #: small-request workloads (Figure 7 discussion).
    context_switch_us: float = 4.0

    #: Cost of switching between channels within the same context (µs).
    channel_switch_us: float = 0.3

    #: Non-uniform graphics arbitration: after a graphics request is served
    #: while compute work is competing, the graphics channel becomes
    #: ineligible for this long.  Models the paper's observation that
    #: "glxgears requests complete at almost one third the rate that
    #: Throttle requests do" during shared free-run (Section 5.3).
    #: 0 disables the penalty (uniform round-robin).
    graphics_penalty_gap_us: float = 55.0

    #: How recently a non-graphics request must have been served for the
    #: graphics penalty to apply ("competition" detection window).
    graphics_competition_window_us: float = 500.0

    #: Total number of channels the device supports.  The paper found that
    #: 48 contexts, each holding one compute and one DMA channel, exhaust
    #: the GTX670 (Section 6.3) — hence 96.
    total_channels: int = 96

    #: Maximum number of simultaneously open contexts (GTX670: 48).
    max_contexts: int = 48

    #: Engine-busy time consumed by cleaning up a killed context (µs).
    #: Models the "normal exit protocol, returning occupied resources back
    #: to the available pool" of Section 3.1.
    context_cleanup_us: float = 250.0

    #: Whether DMA requests run on a separate copy engine, overlapping
    #: compute.  The paper cites DMA/compute overlap as the reason
    #: direct-access concurrency efficiency can exceed 1.0.
    separate_copy_engine: bool = True

    #: Hardware preemption support (Section 6.2's wished-for feature):
    #: the engine can save the running request's state, requeue it, and
    #: later resume it.  Also enables channel masking (runlist control),
    #: which exclusivity requires once preempted work can linger in queues.
    preemption_supported: bool = False

    #: Engine time to save or restore a preempted request's state (µs).
    preemption_save_restore_us: float = 25.0

    #: Onboard memory in MiB (GTX670: 2048).  Used only by the resource
    #: protection extension experiments.
    memory_mib: int = 2048

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        if self.context_switch_us < 0 or self.channel_switch_us < 0:
            raise ValueError("switch costs must be non-negative")
        if self.graphics_penalty_gap_us < 0:
            raise ValueError("graphics_penalty_gap_us must be non-negative")
        if self.graphics_competition_window_us < 0:
            raise ValueError("graphics_competition_window_us must be non-negative")
        if self.total_channels < 1:
            raise ValueError("total_channels must be positive")
        if self.max_contexts < 1:
            raise ValueError("max_contexts must be positive")
        if self.context_cleanup_us < 0:
            raise ValueError("context_cleanup_us must be non-negative")
        if self.preemption_save_restore_us < 0:
            raise ValueError("preemption_save_restore_us must be non-negative")
