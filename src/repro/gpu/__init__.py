"""GPU device model.

Models the accelerator exactly at the abstraction level the paper's
schedulers care about: **channels** (user-mapped request queues backed by a
ring buffer and a reference counter), **contexts** (per-task address
spaces grouping channels), and **execution engines** that pull requests
round-robin from pending channels, paying a context-switch cost when
crossing context boundaries.

The device keeps *ground-truth* per-task usage accounting.  Schedulers may
not read it (they must estimate through the interception layer); it exists
for metrics and for the "vendor-provided statistics" ablations the paper
calls for in Sections 3.3 and 6.1.
"""

from repro.gpu.channel import Channel
from repro.gpu.context import GpuContext
from repro.gpu.device import GpuDevice, OutOfResourcesError
from repro.gpu.engine import ExecutionEngine
from repro.gpu.memory import GpuMemory
from repro.gpu.params import GpuParams
from repro.gpu.request import Request, RequestKind

__all__ = [
    "Channel",
    "ExecutionEngine",
    "GpuContext",
    "GpuDevice",
    "GpuMemory",
    "GpuParams",
    "OutOfResourcesError",
    "Request",
    "RequestKind",
]
