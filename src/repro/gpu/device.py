"""The accelerator device: contexts, channels, engines, and accounting."""

from __future__ import annotations

import math
from collections import defaultdict
from typing import TYPE_CHECKING, Optional

from repro.errors import OutOfResourcesError
from repro.faults import registry as fault_points
from repro.gpu.channel import Channel
from repro.gpu.context import GpuContext
from repro.gpu.engine import ExecutionEngine
from repro.gpu.memory import GpuMemory
from repro.gpu.params import GpuParams
from repro.gpu.request import Request, RequestKind
from repro.obs import events
from repro.obs.metrics import MetricsRegistry
from repro.sim.events import Event
from repro.sim.trace import NullRecorder, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.osmodel.task import Task
    from repro.sim.engine import Simulator


class GpuDevice:
    """The modeled accelerator.

    Exposes the hardware-software interface the paper's schedulers rely on
    (channels with ring buffers and reference counters) and keeps
    ground-truth usage accounting for metrics and for the vendor-statistics
    ablations.  Scheduler implementations must go through the
    :mod:`repro.neon` interception layer instead of reading ground truth;
    see DESIGN.md's observability discipline.
    """

    def __init__(
        self,
        sim: "Simulator",
        params: Optional[GpuParams] = None,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults=None,
    ) -> None:
        self.sim = sim
        self.params = params or GpuParams()
        self.params.validate()
        self.trace = trace if trace is not None else NullRecorder()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Optional fault injector (repro.faults); None means no plan is
        #: installed and every injection site is a single attribute check.
        self.faults = faults
        # Hot-path instruments, resolved once (submit/retire run per request).
        self._submits = self.metrics.counter("submits")
        self.latency_histogram = self.metrics.histogram("request_latency_us")
        main_kinds = {RequestKind.COMPUTE, RequestKind.GRAPHICS}
        if not self.params.separate_copy_engine:
            main_kinds.add(RequestKind.DMA)
        self.main_engine = ExecutionEngine(
            sim, "main", self.params, frozenset(main_kinds), self
        )
        self.copy_engine: Optional[ExecutionEngine] = None
        if self.params.separate_copy_engine:
            self.copy_engine = ExecutionEngine(
                sim, "copy", self.params, frozenset({RequestKind.DMA}), self
            )
        self.contexts: list[GpuContext] = []
        self.channels: dict[int, Channel] = {}
        self.memory = GpuMemory(self.params.memory_mib)
        #: Ground-truth per-task engine microseconds (metrics/ablations only).
        self._usage: dict[int, float] = defaultdict(float)
        self._usage_by_kind: dict[tuple[int, RequestKind], float] = defaultdict(float)

    # ------------------------------------------------------------------
    # Resource allocation (the Section 6.3 protection surface)
    # ------------------------------------------------------------------
    def create_context(self, task: "Task") -> GpuContext:
        """Open a device context for ``task``.

        Raises :class:`OutOfResourcesError` when the device-wide context
        limit is reached — the channel-exhaustion DoS of Section 6.3.
        """
        if self.live_context_count >= self.params.max_contexts:
            raise OutOfResourcesError(
                f"device supports at most {self.params.max_contexts} contexts"
            )
        context = GpuContext(task)
        self.contexts.append(context)
        task.contexts.append(context)
        return context

    def create_channel(self, context: GpuContext, kind: RequestKind) -> Channel:
        """Open a channel of the given kind inside ``context``."""
        if context.dead:
            raise RuntimeError("cannot create a channel in a dead context")
        if self.live_channel_count >= self.params.total_channels:
            raise OutOfResourcesError(
                f"device supports at most {self.params.total_channels} channels"
            )
        channel = Channel(context, kind)
        context.add_channel(channel)
        self.channels[channel.channel_id] = channel
        self._engine_for(kind).register_channel(channel)
        return channel

    @property
    def live_context_count(self) -> int:
        return sum(1 for context in self.contexts if not context.dead)

    @property
    def live_channel_count(self) -> int:
        return sum(1 for channel in self.channels.values() if not channel.dead)

    # ------------------------------------------------------------------
    # Request path
    # ------------------------------------------------------------------
    def submit(self, channel: Channel, request: Request) -> Event:
        """Hardware-side submission: enqueue and kick the engine.

        Returns the completion event the submitter (or the scheduler) may
        wait on.  This models the doorbell write having reached the device;
        all software-side costs (MMIO write, faults) are charged by the
        kernel model before calling this.
        """
        self._enqueue_one(channel, request)
        self._engine_for(channel.kind).notify()
        return request.completion

    def submit_batch(self, channel: Channel, requests: list[Request]) -> list[Event]:
        """Enqueue back-to-back requests on one channel, kicking the engine
        once.

        The batched doorbell path: all requests land on the ring buffer at
        the current instant and the engine is notified with a *single*
        wake event, instead of one notify per request.  Returns the
        completion events in submission order.
        """
        for request in requests:
            self._enqueue_one(channel, request)
        if requests:
            self._engine_for(channel.kind).notify()
        return [request.completion for request in requests]

    def _enqueue_one(self, channel: Channel, request: Request) -> None:
        """Shared per-request hardware-side submission (no engine kick)."""
        request.completion = self.sim.event()
        if self.faults is not None:
            if self.faults.arm(fault_points.GPU_REQUEST_HANG, channel.task.name):
                # The engine will start this request and never finish it.
                request.size_us = math.inf
                request.remaining_us = math.inf
        channel.enqueue(request, self.sim.now)
        if self.faults is not None:
            if self.faults.arm(
                fault_points.GPU_SPURIOUS_COMPLETION, channel.task.name
            ):
                # The counter jumps past work still in flight, so scans
                # and drains observe completions that never happened.
                channel.advance_refcounter(channel.last_submitted_ref)
        self._submits.inc(channel.task.name)
        if self.trace.enabled:
            self.trace.emit(
                self.sim.now,
                "gpu.device",
                events.REQUEST_SUBMIT,
                task=channel.task.name,
                channel=channel.channel_id,
                ref=request.ref,
                size_us=request.size_us,
                request_kind=request.kind.value,
            )

    def _engine_for(self, kind: RequestKind) -> ExecutionEngine:
        if kind is RequestKind.DMA and self.copy_engine is not None:
            return self.copy_engine
        return self.main_engine

    # ------------------------------------------------------------------
    # Context kill (the Section 3.1 protection mechanism)
    # ------------------------------------------------------------------
    def kill_context(self, context: GpuContext) -> None:
        """Abort and clean up a context (runaway-request protection).

        Models the driver's exit protocol: the running request (if any) is
        aborted, queued requests are discarded, channels are closed, and the
        engine stalls for the cleanup cost.
        """
        if context.dead:
            return
        context.dead = True
        for engine in self.engines:
            engine.abort_current(context)
        for channel in context.channels:
            casualties = channel.discard_queued()
            channel.dead = True
            channel.advance_refcounter(channel.last_submitted_ref)
            self._engine_for(channel.kind).unregister_channel(channel)
            for request in casualties:
                if request.completion is not None and not request.completion.triggered:
                    request.completion.trigger(request)
        self.memory.release_context(context)
        self.main_engine.inject_stall(self.params.context_cleanup_us)
        if self.trace.enabled:
            self.trace.emit(
                self.sim.now, "gpu.device", events.CONTEXT_KILLED,
                task=context.task.name,
            )

    # ------------------------------------------------------------------
    # Status and accounting
    # ------------------------------------------------------------------
    @property
    def engines(self) -> list[ExecutionEngine]:
        if self.copy_engine is not None:
            return [self.main_engine, self.copy_engine]
        return [self.main_engine]

    @property
    def idle(self) -> bool:
        """Ground-truth idleness (metrics only; schedulers must poll)."""
        return all(engine.idle for engine in self.engines)

    def charge(self, task: "Task", service_us: float, kind: RequestKind) -> None:
        """Record ground-truth usage (called by engines on retirement)."""
        self._usage[task.task_id] += service_us
        self._usage_by_kind[(task.task_id, kind)] += service_us

    def task_usage(self, task: "Task") -> float:
        """Ground-truth cumulative engine time consumed by ``task`` (µs)."""
        return self._usage[task.task_id]

    def task_usage_by_kind(self, task: "Task", kind: RequestKind) -> float:
        return self._usage_by_kind[(task.task_id, kind)]

    @property
    def total_busy_us(self) -> float:
        return sum(engine.busy_us for engine in self.engines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GpuDevice(contexts={self.live_context_count}, "
            f"channels={self.live_channel_count})"
        )
