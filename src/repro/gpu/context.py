"""GPU contexts — per-task device address spaces grouping channels."""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.osmodel.task import Task

_context_ids = itertools.count(1)


class GpuContext:
    """A device context.

    Channels in the same context may carry causally related requests, so
    (as NEON does) schedulers must never reorder requests within a context.
    The device serializes context cleanup when a context is killed.
    """

    def __init__(self, task: "Task") -> None:
        self.context_id = next(_context_ids)
        self.task = task
        self.channels: list["Channel"] = []
        self.dead = False

    def add_channel(self, channel: "Channel") -> None:
        self.channels.append(channel)

    @property
    def pending_requests(self) -> int:
        """Total queued-but-unfinished requests across the context."""
        return sum(channel.pending for channel in self.channels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.dead else "live"
        return (
            f"GpuContext(#{self.context_id}, task={self.task.name}, "
            f"{len(self.channels)} channels, {state})"
        )
