"""The device execution engine.

Serves pending channels round-robin — the service discipline the paper's
reverse engineering observed — paying a context-switch cost when crossing
context boundaries.  Two behaviours matter for reproducing the paper's
results:

* **Request-granularity arbitration.**  The engine alternates between
  channels *per request*, so a channel with larger requests receives a
  proportionally larger share of device time.  This is the root cause of
  the unfairness of direct device access (Figure 6, leftmost column).

* **Non-uniform graphics arbitration.**  When graphics and compute channels
  compete, graphics channels are served once per
  ``graphics_service_penalty`` opportunities, modeling the paper's
  observation that glxgears requests complete at roughly one third the
  rate of concurrent compute requests (Section 5.3's anomaly).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.faults import registry as fault_points
from repro.gpu.channel import Channel
from repro.gpu.request import Request, RequestKind
from repro.obs import events
from repro.sim.events import AnyOf, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.device import GpuDevice
    from repro.gpu.params import GpuParams
    from repro.sim.engine import Simulator

#: Outcome tags delivered through the per-request outcome event.  A single
#: event replaces the earlier finished/abort/preempt trio plus AnyOf: the
#: first cause to occur triggers it with its tag (and cancels the completion
#: timer), so one request costs one event and one wakeup.
FINISHED = "finished"
ABORTED = "aborted"
PREEMPTED = "preempted"


class ExecutionEngine:
    """One execution engine (main compute/graphics, or the copy engine)."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        params: "GpuParams",
        kinds: frozenset[RequestKind],
        device: "GpuDevice",
    ) -> None:
        self.sim = sim
        self.name = name
        self.params = params
        self.kinds = kinds
        self.device = device
        self._channels: list[Channel] = []
        self._cursor = 0
        self._wake: Optional[Event] = None
        self._outcome: Optional[Event] = None
        self._timer = None
        self._pending_stall = 0.0
        self.preemptions = 0
        #: Wake events actually fired (coalesced notifies are not counted).
        self.wakeups = 0
        self.current: Optional[Request] = None
        self.current_channel: Optional[Channel] = None
        self._last_context = None
        self._last_channel: Optional[Channel] = None
        self._last_nongraphics_end = -1e18
        #: Cumulative engine-busy microseconds (service + switching + stalls).
        self.busy_us = 0.0
        #: Cumulative switching overhead alone.
        self.switch_us = 0.0
        self.completed_requests = 0
        self.process = sim.spawn(self._run(), name=f"gpu.{name}")

    # ------------------------------------------------------------------
    # Channel registration
    # ------------------------------------------------------------------
    def register_channel(self, channel: Channel) -> None:
        if channel.kind not in self.kinds:
            raise ValueError(f"{channel.kind.value} channel on engine {self.name}")
        self._channels.append(channel)
        channel._graphics_earliest = 0.0  # arbitration-penalty cooldown

    def unregister_channel(self, channel: Channel) -> None:
        try:
            self._channels.remove(channel)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # External control
    # ------------------------------------------------------------------
    def notify(self) -> None:
        """Wake the engine: new work may be available.

        Idempotent within an instant: the first notify of an idle period
        triggers the wake event, later ones are free.  Batched submission
        (``GpuDevice.submit_batch``) relies on this — a burst of enqueues
        costs one wake; ``wakeups`` counts the wakes that actually fired.
        """
        wake = self._wake
        if wake is not None and not wake.triggered:
            self.wakeups += 1
            wake.trigger()

    def abort_current(self, context) -> bool:
        """Abort the running request if it belongs to ``context``."""
        if (
            self.current is not None
            and self.current_channel is not None
            and self.current_channel.context is context
            and self._outcome is not None
            and not self._outcome.triggered
        ):
            self._settle(ABORTED)
            return True
        return False

    def preempt_current(self, context=None) -> bool:
        """Preempt the running request (hardware preemption, §6.2).

        The request's state is saved, the remainder requeued at the head
        of its channel, and the engine moves on after the save cost.  With
        ``context`` given, only a request of that context is preempted.
        Returns True if a preemption was initiated.
        """
        if not self.params.preemption_supported:
            return False
        if self.current is None or self.current_channel is None:
            return False
        if context is not None and self.current_channel.context is not context:
            return False
        if self._outcome is None or self._outcome.triggered:
            return False
        self._settle(PREEMPTED)
        return True

    def _settle(self, tag: str) -> None:
        """Resolve the in-flight request's wait with ``tag``, withdrawing
        the completion timer so it cannot fire a second outcome later."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._outcome.trigger(tag)

    def inject_stall(self, duration_us: float) -> None:
        """Consume engine time outside any request (context cleanup)."""
        self._pending_stall += duration_us
        self.notify()

    @property
    def idle(self) -> bool:
        """True when nothing is running and no servable work is queued."""
        if self.current is not None or self._pending_stall > 0:
            return False
        return not any(
            channel.queue
            for channel in self._channels
            if not channel.masked and not channel.dead
        )

    # ------------------------------------------------------------------
    # Arbitration
    # ------------------------------------------------------------------
    def _pick(self) -> tuple[Optional[Channel], Optional[float]]:
        """Choose the next channel (round-robin with the graphics penalty).

        Returns ``(channel, None)`` to serve, ``(None, delay)`` when only
        penalized graphics channels are pending (re-arbitrate after the
        cooldown), or ``(None, None)`` when nothing is pending.
        """
        live = self._channels
        count = len(live)
        if count == 0:
            return None, None
        now = self.sim.now
        graphics = RequestKind.GRAPHICS
        earliest_blocked: Optional[float] = None
        any_pending = False
        index = self._cursor % count
        for _ in range(count):
            channel = live[index]
            index += 1
            if index == count:
                index = 0
            if channel.dead or channel.masked or not channel.queue:
                continue
            any_pending = True
            if channel.kind is graphics and channel._graphics_earliest > now:
                if (
                    earliest_blocked is None
                    or channel._graphics_earliest < earliest_blocked
                ):
                    earliest_blocked = channel._graphics_earliest
                continue
            self._cursor = index
            return channel, None
        if not any_pending:
            return None, None
        return None, max(earliest_blocked - now, 0.01)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            if self._pending_stall > 0:
                stall = self._pending_stall
                self._pending_stall = 0.0
                yield stall
                self.busy_us += stall
                continue

            channel, retry_delay = self._pick()
            if channel is None:
                # Nothing servable right now.  Wait for new work; when only
                # penalized graphics channels are pending, also re-arbitrate
                # once their cooldown expires (non-work-conserving hardware
                # arbitration).
                self._wake = self.sim.event()
                if retry_delay is not None:
                    cooldown = self.sim.event()
                    timer = self.sim.schedule(retry_delay, cooldown.trigger)
                    first = yield AnyOf(self.sim, [cooldown, self._wake])
                    if first is not cooldown:
                        timer.cancel()
                else:
                    yield self._wake
                self._wake = None
                continue

            switch_cost = self._switch_cost(channel)
            faults = self.device.faults
            if faults is not None and switch_cost > 0:
                spike = faults.arm(
                    fault_points.GPU_CONTEXT_SWITCH_SPIKE, channel.task.name
                )
                if spike is not None:
                    switch_cost += spike.magnitude_us
            if switch_cost > 0:
                yield switch_cost
                self.busy_us += switch_cost
                self.switch_us += switch_cost
                # The queue may have changed (e.g. the context died) while
                # we were switching; re-arbitrate from scratch.
                if channel.dead or not channel.queue:
                    self._last_context = None
                    self._last_channel = None
                    continue
            self._last_context = channel.context
            self._last_channel = channel

            request = channel.queue.popleft()
            channel.running = request
            if request.preemptions > 0:
                # Restore the saved execution state before resuming.
                restore = self.params.preemption_save_restore_us
                yield restore
                self.busy_us += restore
                self.switch_us += restore
            if request.start_time is None:
                request.start_time = self.sim.now
                faults = self.device.faults
                if faults is not None and not request.never_completes:
                    slow = faults.arm(
                        fault_points.GPU_REQUEST_SLOWDOWN, channel.task.name
                    )
                    if slow is not None:
                        # Hardware runs slow; the submitter's declared
                        # size_us is unchanged — it believes the request
                        # is still small.
                        request.remaining_us *= slow.factor
            sim = self.sim
            segment_start = sim.now
            self.current = request
            self.current_channel = channel
            outcome = self._outcome = Event(sim)
            if not request.never_completes:
                self._timer = sim.schedule(
                    request.remaining_us, outcome.trigger, FINISHED
                )
            if self.device.trace.enabled:
                self.device.trace.emit(
                    segment_start, f"gpu.{self.name}", events.EXEC_BEGIN,
                    task=channel.task.name, channel=channel.channel_id,
                    ref=request.ref,
                )
            tag = yield outcome
            self._outcome = None
            self._timer = None

            if tag is PREEMPTED:
                yield from self._suspend(channel, request, segment_start)
            else:
                self._retire(channel, request, tag is ABORTED, segment_start)

    def _switch_cost(self, channel: Channel) -> float:
        if self._last_context is None:
            return 0.0
        if self._last_context is not channel.context:
            return self.params.context_switch_us
        if self._last_channel is not channel:
            return self.params.channel_switch_us
        return 0.0

    def _suspend(self, channel: Channel, request: Request, segment_start: float):
        """Preemption path: charge the executed segment, save state, and
        requeue the remainder at the head of the channel."""
        now = self.sim.now
        executed = now - segment_start
        request.remaining_us = max(0.0, request.remaining_us - executed)
        request.preemptions += 1
        self.preemptions += 1
        self.busy_us += executed
        self.device.charge(channel.task, executed, request.kind)
        channel.running = None
        channel.queue.appendleft(request)
        self.current = None
        self.current_channel = None
        save = self.params.preemption_save_restore_us
        yield save
        self.busy_us += save
        self.switch_us += save
        if self.device.trace.enabled:
            self.device.trace.emit(
                now, f"gpu.{self.name}", events.REQUEST_PREEMPTED,
                task=channel.task.name, channel=channel.channel_id,
                ref=request.ref, remaining_us=request.remaining_us,
            )

    def _retire(
        self,
        channel: Channel,
        request: Request,
        aborted: bool,
        segment_start: Optional[float] = None,
    ) -> None:
        now = self.sim.now
        request.finish_time = now
        if segment_start is None:
            segment_start = (
                request.start_time if request.start_time is not None else now
            )
        service = now - segment_start
        request.remaining_us = 0.0
        self.busy_us += service
        self.device.charge(channel.task, service, request.kind)
        if request.kind is not RequestKind.GRAPHICS:
            self._last_nongraphics_end = now
        elif (
            self.params.graphics_penalty_gap_us > 0
            and now - self._last_nongraphics_end
            <= self.params.graphics_competition_window_us
        ):
            # Competing compute work ran recently: the hardware arbiter
            # holds this graphics channel back for a cooldown (the paper's
            # observed non-uniform graphics/compute scheduling).
            channel._graphics_earliest = now + self.params.graphics_penalty_gap_us
        channel.running = None
        self.current = None
        self.current_channel = None
        if not aborted:
            faults = self.device.faults
            if faults is not None:
                stall = faults.arm(
                    fault_points.GPU_REFCOUNTER_STALL, channel.task.name
                )
                if stall is not None and stall.magnitude_us > 0:
                    # The hardware finished (engine time is charged above)
                    # but the counter write — and with it every software
                    # observation of completion — lands late.
                    self.sim.schedule(
                        stall.magnitude_us,
                        self._publish_completion, channel, request, service,
                        False,
                    )
                    return
        self._publish_completion(channel, request, service, aborted)

    def _publish_completion(
        self,
        channel: Channel,
        request: Request,
        service: float,
        aborted: bool,
    ) -> None:
        """Make a retired request's completion visible to software: bump
        the reference counter, account it, and trigger waiters.  Runs
        immediately on retirement, or late under a refcounter-stall fault."""
        now = self.sim.now
        latency_us: Optional[float] = None
        if aborted:
            request.aborted = True
            # The kill path resets the channel's counters; nothing to do.
        else:
            if not channel.dead:
                channel.complete(request)
            self.completed_requests += 1
            if request.submit_time is not None:
                latency_us = now - request.submit_time
                self.device.latency_histogram.observe(
                    channel.task.name, latency_us
                )
        trace = self.device.trace
        if trace.enabled:
            payload = dict(
                task=channel.task.name,
                channel=channel.channel_id,
                ref=request.ref,
                service_us=service,
            )
            if latency_us is not None:
                payload["latency_us"] = latency_us
            trace.emit(
                now,
                f"gpu.{self.name}",
                events.REQUEST_ABORTED if aborted else events.REQUEST_COMPLETE,
                **payload,
            )
        if request.completion is not None and not request.completion.triggered:
            request.completion.trigger(request)
