"""Acceleration requests — the unit of work submitted to a channel."""

from __future__ import annotations

import enum
import itertools
import math
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.sim.events import Event


class RequestKind(enum.Enum):
    """The engine class a request executes on."""

    COMPUTE = "compute"
    GRAPHICS = "graphics"
    DMA = "dma"


_request_ids = itertools.count(1)


class Request:
    """One request as seen at the hardware/software interface.

    ``size_us`` is the GPU service time the request will consume;
    ``math.inf`` models a malicious/buggy request that never completes
    (Section 3.1's denial-of-service scenario).

    A request's ``ref`` is the per-channel reference-counter value the
    hardware writes upon its completion — the completion-detection handle
    both the user-level library and the NEON polling service rely on.
    """

    __slots__ = (
        "request_id",
        "kind",
        "size_us",
        "remaining_us",
        "blocking",
        "channel",
        "ref",
        "submit_time",
        "start_time",
        "finish_time",
        "aborted",
        "preemptions",
        "completion",
    )

    def __init__(
        self,
        kind: RequestKind,
        size_us: float,
        blocking: bool = True,
    ) -> None:
        if size_us < 0:
            raise ValueError(f"request size must be non-negative: {size_us}")
        self.request_id = next(_request_ids)
        self.kind = kind
        self.size_us = float(size_us)
        #: Unserved work; shrinks across preempted execution segments.
        self.remaining_us = float(size_us)
        self.blocking = blocking
        self.preemptions = 0
        # Assigned at submission:
        self.channel: Optional["Channel"] = None
        self.ref: Optional[int] = None
        self.submit_time: Optional[float] = None
        # Assigned at service:
        self.start_time: Optional[float] = None
        self.finish_time: Optional[float] = None
        self.aborted = False
        self.completion: Optional["Event"] = None

    @property
    def never_completes(self) -> bool:
        """True for infinite (runaway) requests."""
        return math.isinf(self.size_us)

    @property
    def service_time(self) -> Optional[float]:
        """Actual engine time consumed, once finished or aborted."""
        if self.start_time is None or self.finish_time is None:
            return None
        return self.finish_time - self.start_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f"ch{self.channel.channel_id}" if self.channel else "unsubmitted"
        return (
            f"Request(#{self.request_id}, {self.kind.value}, "
            f"{self.size_us:.1f}us, {where})"
        )
