"""Device memory accounting (§6.3, "Protection of Other Resources").

The paper notes that an erroneous or malicious application could exhaust
the GPU's onboard RAM (2 GB on the GTX670) and prevent normal use by
others, and that an OS-level framework could prevent this by accounting
for per-application memory use and blocking excessive consumption.  This
module provides the device-side allocator; the kernel applies the
:class:`~repro.osmodel.kernel.MemoryQuotaPolicy` on top.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import OutOfResourcesError

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import GpuContext


class GpuMemory:
    """Onboard-RAM bookkeeping, charged per context."""

    def __init__(self, total_mib: float) -> None:
        if total_mib <= 0:
            raise ValueError("total memory must be positive")
        self.total_mib = float(total_mib)
        self._allocated: dict[int, float] = {}

    @property
    def used_mib(self) -> float:
        return sum(self._allocated.values())

    @property
    def free_mib(self) -> float:
        return self.total_mib - self.used_mib

    def context_usage(self, context: "GpuContext") -> float:
        return self._allocated.get(context.context_id, 0.0)

    def allocate(self, context: "GpuContext", mib: float) -> None:
        """Carve out ``mib`` for the context; raises when exhausted."""
        if mib <= 0:
            raise ValueError("allocation size must be positive")
        if context.dead:
            raise RuntimeError("allocation on a dead context")
        if mib > self.free_mib:
            raise OutOfResourcesError(
                f"device memory exhausted: requested {mib:.0f} MiB, "
                f"{self.free_mib:.0f} MiB free"
            )
        self._allocated[context.context_id] = (
            self._allocated.get(context.context_id, 0.0) + mib
        )

    def free(self, context: "GpuContext", mib: float) -> None:
        """Return ``mib`` previously allocated by the context."""
        held = self._allocated.get(context.context_id, 0.0)
        if mib > held + 1e-9:
            raise ValueError(
                f"context {context.context_id} frees {mib:.0f} MiB "
                f"but holds {held:.0f} MiB"
            )
        remaining = held - mib
        if remaining <= 1e-9:
            self._allocated.pop(context.context_id, None)
        else:
            self._allocated[context.context_id] = remaining

    def release_context(self, context: "GpuContext") -> float:
        """Free everything the context holds (exit/kill protocol)."""
        return self._allocated.pop(context.context_id, 0.0) or 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GpuMemory({self.used_mib:.0f}/{self.total_mib:.0f} MiB used)"
