"""Tasks — the resource principals the schedulers arbitrate among."""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.context import GpuContext
    from repro.sim.process import Process

_task_ids = itertools.count(1)


class TaskState(enum.Enum):
    RUNNING = "running"
    BLOCKED = "blocked"  # delayed inside the fault handler by the scheduler
    DEAD = "dead"


class Task:
    """An OS process (or VM) using the accelerator.

    The schedulers see tasks only as opaque principals; all per-scheduler
    state lives in the scheduler's own tables keyed by ``task_id``.
    """

    def __init__(self, name: str) -> None:
        self.task_id = next(_task_ids)
        self.name = name
        self.state = TaskState.RUNNING
        self.contexts: list["GpuContext"] = []
        #: The simulation process running the task's workload body; set by
        #: the workload when it starts.
        self.process: Optional["Process"] = None
        #: Reason string recorded when the kernel kills the task.
        self.kill_reason: Optional[str] = None
        #: Free-form slot for workload models to attach themselves.
        self.workload: Any = None

    @property
    def alive(self) -> bool:
        return self.state is not TaskState.DEAD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task(#{self.task_id} {self.name}, {self.state.value})"
