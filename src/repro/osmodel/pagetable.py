"""Page-table protection model for channel-register pages.

In the real system, NEON marks the page holding a channel's doorbell
register "non-present"; a user-space store to it then raises a page fault
that the kernel routes to the GPU scheduler.  We model exactly that state:
a :class:`RegisterPage` is either mapped (stores go straight to the device)
or protected (stores fault).
"""

from __future__ import annotations



class RegisterPage:
    """The protection state of one channel-register page."""

    __slots__ = ("channel_id", "protected", "_protect_count", "_fault_count")

    def __init__(self, channel_id: int, protected: bool = False) -> None:
        self.channel_id = channel_id
        self.protected = protected
        self._protect_count = 0
        self._fault_count = 0

    def protect(self) -> None:
        """Mark the page non-present so the next store faults."""
        if not self.protected:
            self.protected = True
            self._protect_count += 1

    def unprotect(self) -> None:
        """Restore the direct mapping; stores no longer fault."""
        self.protected = False

    def record_fault(self) -> None:
        self._fault_count += 1

    @property
    def fault_count(self) -> int:
        """Total faults taken on this page (for overhead accounting)."""
        return self._fault_count

    @property
    def protect_count(self) -> int:
        """Number of mapped→protected transitions (engagement episodes)."""
        return self._protect_count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "protected" if self.protected else "mapped"
        return f"RegisterPage(ch{self.channel_id}, {state}, faults={self._fault_count})"
