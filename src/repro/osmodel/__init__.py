"""Operating-system model.

Provides the pieces of the OS the paper's kernel module interacts with:
tasks (the resource principals), the page-table protection model for
channel-register pages, the request-submission paths (direct MMIO write
vs. trapped/faulting write), the kernel polling service that detects
request completions, and the cost parameters governing all of the above.
"""

from repro.osmodel.costs import CostParams
from repro.osmodel.kernel import ChannelQuotaPolicy, Kernel, MemoryQuotaPolicy
from repro.osmodel.pagetable import RegisterPage
from repro.osmodel.polling import PollingService
from repro.osmodel.task import Task, TaskState

__all__ = [
    "ChannelQuotaPolicy",
    "CostParams",
    "Kernel",
    "MemoryQuotaPolicy",
    "PollingService",
    "RegisterPage",
    "Task",
    "TaskState",
]
