"""The kernel polling-thread service.

NEON cannot receive completion interrupts, so a kernel thread periodically
reads the reference counters of watched channels and reports progress to
the scheduler.  The polling period (1 ms by default) bounds how quickly the
scheduler learns of completions — the paper's stated source of draining
idleness ("the principal source of extra overhead is idleness during
draining, due to the granularity of polling").

The service runs on its own CPU core, so its per-check cost does not slow
application tasks; it is still accounted (``cpu_us``) for completeness.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.faults import registry as fault_points
from repro.sim.events import AnyOf, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.osmodel.costs import CostParams
    from repro.sim.engine import Simulator

_watch_ids = itertools.count(1)


class _Watch:
    __slots__ = ("watch_id", "channel", "target_ref", "callback", "cancelled")

    def __init__(
        self,
        channel: "Channel",
        target_ref: int,
        callback: Callable[["Channel"], None],
    ) -> None:
        self.watch_id = next(_watch_ids)
        self.channel = channel
        self.target_ref = target_ref
        self.callback = callback
        self.cancelled = False

    @property
    def satisfied(self) -> bool:
        return self.channel.refcounter >= self.target_ref


class PollingService:
    """Periodic reference-counter polling with scheduler prompting."""

    def __init__(
        self, sim: "Simulator", costs: "CostParams", cpu=None, faults=None
    ) -> None:
        self.sim = sim
        self.costs = costs
        self.interval_us = costs.poll_interval_us
        #: Optional finite CPU pool; when set, polling passes consume a
        #: core instead of being free (the §5.2 single-CPU question).
        self.cpu = cpu
        #: Optional fault injector (repro.faults); None = no plan installed.
        self.faults = faults
        self._watches: dict[int, _Watch] = {}
        self._prompt: Optional[Event] = None
        #: Cumulative CPU time consumed by polling passes.
        self.cpu_us = 0.0
        self.passes = 0
        self.process = sim.spawn(self._run(), name="polling-service")

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def watch(
        self,
        channel: "Channel",
        target_ref: int,
        callback: Callable[["Channel"], None],
    ) -> int:
        """Invoke ``callback(channel)`` once ``refcounter >= target_ref``.

        The condition is only checked at polling passes, never continuously
        — that is the point of the model.  Returns a watch id usable with
        :meth:`cancel`.
        """
        watch = _Watch(channel, target_ref, callback)
        self._watches[watch.watch_id] = watch
        return watch.watch_id

    def cancel(self, watch_id: int) -> None:
        watch = self._watches.pop(watch_id, None)
        if watch is not None:
            watch.cancelled = True

    def set_interval(self, interval_us: float) -> None:
        """Change the polling period.

        Engaged per-request schedulers (SFQ/DRR/Credit) need fine-grained
        completion observation — the role interrupts play in the systems
        the paper cites — and pay the correspondingly higher CPU cost.
        """
        if interval_us <= 0:
            raise ValueError("polling interval must be positive")
        self.interval_us = interval_us
        self.prompt()

    def prompt(self) -> None:
        """Request an immediate extra polling pass ("at the scheduler's
        prompt", Section 5.2)."""
        if self._prompt is not None and not self._prompt.triggered:
            self._prompt.trigger()

    @property
    def watch_count(self) -> int:
        return len(self._watches)

    # ------------------------------------------------------------------
    # The polling loop
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            self._prompt = self.sim.event()
            interval = self.sim.event()
            timer = self.sim.schedule(self.interval_us, interval.trigger)
            yield AnyOf(self.sim, [interval, self._prompt])
            timer.cancel()
            if self.faults is not None:
                stall = self.faults.arm(fault_points.KERNEL_POLL_STALL)
                if stall is not None and stall.magnitude_us > 0:
                    yield stall.magnitude_us
            if self.cpu is not None:
                pass_cost = self.costs.poll_check_us * len(self._watches)
                yield from self.cpu.execute(pass_cost, "polling")
            self._pass()

    def _pass(self) -> None:
        self.passes += 1
        self.cpu_us += self.costs.poll_check_us * len(self._watches)
        fired = [
            watch
            for watch in self._watches.values()
            if not watch.cancelled and watch.satisfied
        ]
        for watch in fired:
            self._watches.pop(watch.watch_id, None)
        for watch in fired:
            watch.callback(watch.channel)
