"""The kernel polling-thread service.

NEON cannot receive completion interrupts, so a kernel thread periodically
reads the reference counters of watched channels and reports progress to
the scheduler.  The polling period (1 ms by default) bounds how quickly the
scheduler learns of completions — the paper's stated source of draining
idleness ("the principal source of extra overhead is idleness during
draining, due to the granularity of polling").

The service runs on its own CPU core, so its per-check cost does not slow
application tasks; it is still accounted (``cpu_us``) for completeness.

Passes are *slotted*: watches are grouped per channel, and a channel is
only examined when it is **dirty** — its reference counter advanced since
the last pass (the channel notifies us via ``Channel._pollers``), or a
watch was registered on it since then.  Quiescent channels cost nothing.
The *modeled* pass cost is unchanged — the simulated kernel thread still
reads every watched counter, so ``poll_check_us * len(watches)`` is
charged exactly as before; only the host-side work is skipped.  Fired
callbacks run in ascending watch-id order, which is byte-for-byte the
order the previous full-scan implementation produced.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.faults import registry as fault_points
from repro.sim.events import AnyOf, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.osmodel.costs import CostParams
    from repro.sim.engine import Simulator


class _Watch:
    __slots__ = ("watch_id", "channel", "target_ref", "callback", "cancelled")

    def __init__(
        self,
        watch_id: int,
        channel: "Channel",
        target_ref: int,
        callback: Callable[["Channel"], None],
    ) -> None:
        self.watch_id = watch_id
        self.channel = channel
        self.target_ref = target_ref
        self.callback = callback
        self.cancelled = False

    @property
    def satisfied(self) -> bool:
        return self.channel.refcounter >= self.target_ref


class PollingService:
    """Periodic reference-counter polling with scheduler prompting."""

    def __init__(
        self, sim: "Simulator", costs: "CostParams", cpu=None, faults=None
    ) -> None:
        self.sim = sim
        self.costs = costs
        self.interval_us = costs.poll_interval_us
        #: Optional finite CPU pool; when set, polling passes consume a
        #: core instead of being free (the §5.2 single-CPU question).
        self.cpu = cpu
        #: Optional fault injector (repro.faults); None = no plan installed.
        self.faults = faults
        #: Watch ids are per-service (an earlier revision used a module
        #: global, so two kernels' polling threads interleaved their id
        #: spaces and fresh simulations saw different ids run to run).
        self._watch_ids = itertools.count(1)
        self._watches: dict[int, _Watch] = {}
        #: Per-channel watch slots (the calendar of the polling thread).
        self._slots: dict["Channel", dict[int, _Watch]] = {}
        #: Channels whose refcounter advanced — or gained a watch — since
        #: the last pass.  Only these are examined.
        self._dirty: dict["Channel", None] = {}
        self._prompt: Optional[Event] = None
        #: Cumulative CPU time consumed by polling passes.
        self.cpu_us = 0.0
        self.passes = 0
        self.process = sim.spawn(self._run(), name="polling-service")

    # ------------------------------------------------------------------
    # Scheduler interface
    # ------------------------------------------------------------------
    def watch(
        self,
        channel: "Channel",
        target_ref: int,
        callback: Callable[["Channel"], None],
    ) -> int:
        """Invoke ``callback(channel)`` once ``refcounter >= target_ref``.

        The condition is only checked at polling passes, never continuously
        — that is the point of the model.  Returns a watch id usable with
        :meth:`cancel`.
        """
        watch_id = next(self._watch_ids)
        watch = _Watch(watch_id, channel, target_ref, callback)
        self._watches[watch_id] = watch
        slot = self._slots.get(channel)
        if slot is None:
            self._slots[channel] = {watch_id: watch}
            channel._pollers.append(self)
        else:
            slot[watch_id] = watch
        # A fresh watch may already be satisfied; examine the channel on
        # the next pass regardless of counter movement.
        self._dirty[channel] = None
        return watch_id

    def cancel(self, watch_id: int) -> None:
        watch = self._watches.pop(watch_id, None)
        if watch is not None:
            # The flag — not dict membership — is what a mid-pass firing
            # loop rechecks, so a callback cancelling a sibling watch
            # reliably suppresses it (see _pass).
            watch.cancelled = True
            self._drop_slot(watch)

    def _drop_slot(self, watch: _Watch) -> None:
        channel = watch.channel
        slot = self._slots.get(channel)
        if slot is None:
            return
        slot.pop(watch.watch_id, None)
        if not slot:
            del self._slots[channel]
            try:
                channel._pollers.remove(self)
            except ValueError:  # pragma: no cover - defensive
                pass

    def mark_dirty(self, channel: "Channel") -> None:
        """Channel-side notification: the reference counter advanced."""
        self._dirty[channel] = None

    def set_interval(self, interval_us: float) -> None:
        """Change the polling period.

        Engaged per-request schedulers (SFQ/DRR/Credit) need fine-grained
        completion observation — the role interrupts play in the systems
        the paper cites — and pay the correspondingly higher CPU cost.
        """
        if interval_us <= 0:
            raise ValueError("polling interval must be positive")
        self.interval_us = interval_us
        self.prompt()

    def prompt(self) -> None:
        """Request an immediate extra polling pass ("at the scheduler's
        prompt", Section 5.2)."""
        if self._prompt is not None and not self._prompt.triggered:
            self._prompt.trigger()

    @property
    def watch_count(self) -> int:
        return len(self._watches)

    # ------------------------------------------------------------------
    # The polling loop
    # ------------------------------------------------------------------
    def _run(self):
        while True:
            self._prompt = self.sim.event()
            interval = self.sim.event()
            timer = self.sim.schedule(self.interval_us, interval.trigger)
            yield AnyOf(self.sim, [interval, self._prompt])
            timer.cancel()
            if self.faults is not None:
                stall = self.faults.arm(fault_points.KERNEL_POLL_STALL)
                if stall is not None and stall.magnitude_us > 0:
                    yield stall.magnitude_us
            if self.cpu is not None:
                pass_cost = self.costs.poll_check_us * len(self._watches)
                yield from self.cpu.execute(pass_cost, "polling")
            self._pass()

    def _pass(self) -> None:
        self.passes += 1
        # The simulated thread reads every watched counter; the host only
        # touches dirty channels.  The modeled cost must not change.
        self.cpu_us += self.costs.poll_check_us * len(self._watches)
        dirty = self._dirty
        if not dirty:
            return
        self._dirty = {}
        fired: list[_Watch] = []
        slots = self._slots
        for channel in dirty:
            slot = slots.get(channel)
            if not slot:
                continue
            refcounter = channel.refcounter
            for watch in slot.values():
                if not watch.cancelled and refcounter >= watch.target_ref:
                    fired.append(watch)
        if not fired:
            return
        # Ascending watch id == registration order == the order the old
        # full scan fired them in.
        fired.sort(key=lambda watch: watch.watch_id)
        for watch in fired:
            # A callback that ran earlier this pass may have cancelled
            # this watch; it must not fire.  Watches are removed one at a
            # time, just before their callback, so cancel() can still find
            # (and flag) any watch that has not fired yet.
            if watch.cancelled:
                continue
            self._watches.pop(watch.watch_id, None)
            self._drop_slot(watch)
            watch.callback(watch.channel)
