"""Host CPU model.

By default the simulation assumes one core per runnable entity (the
paper's 4-core Xeon against at most four tasks), so CPU time is charged
as plain virtual-time delays.  Setting ``CostParams.cpu_cores`` to a
positive number instead routes CPU work — application think time, fault
handler execution, polling passes — through a finite :class:`CpuPool`,
making kernel-side management load visible as application slowdown.
This is what lets us test the paper's §5.2 claim that the polling thread
is "not enough to impose a noticeable load even for single-CPU systems".
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.events import Event


class CpuPool:
    """A fixed number of cores shared by tasks and kernel services."""

    def __init__(self, sim: "Simulator", cores: int) -> None:
        if cores < 1:
            raise ValueError("a CPU pool needs at least one core")
        self.sim = sim
        self.cores = cores
        self._in_use = 0
        self._waiters: deque["Event"] = deque()
        #: Cumulative CPU microseconds per owner label.
        self.usage_us: dict[str, float] = {}
        #: Total time spent waiting for a core (queueing delay).
        self.contention_wait_us = 0.0

    @property
    def idle_cores(self) -> int:
        return self.cores - self._in_use

    def execute(self, duration_us: float, owner: str = "anon"):
        """Run ``duration_us`` of CPU work (generator; ``yield from`` it).

        Waits for a free core first; the wait is accounted as contention.
        The core is released even if the caller is killed mid-execution.
        """
        if duration_us < 0:
            raise ValueError("negative CPU work")
        wait_start = self.sim.now
        while self._in_use >= self.cores:
            event = self.sim.event()
            self._waiters.append(event)
            yield event
        self.contention_wait_us += self.sim.now - wait_start
        self._in_use += 1
        started = self.sim.now
        try:
            if duration_us > 0:
                yield duration_us
        finally:
            executed = self.sim.now - started
            self.usage_us[owner] = self.usage_us.get(owner, 0.0) + executed
            self._in_use -= 1
            while self._waiters and self._in_use < self.cores:
                waiter = self._waiters.popleft()
                if not waiter.triggered:
                    waiter.trigger()
                    break

    def owner_usage(self, owner: str) -> float:
        return self.usage_us.get(owner, 0.0)
