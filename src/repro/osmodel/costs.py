"""Cost parameters of the OS/interception path.

Values marked *paper* come directly from the paper's measurements on its
2.27 GHz Xeon E5520 + GTX670 platform; the rest are chosen within the
ranges the paper quotes ("thousands of CPU cycles" per kernel trap) and are
recorded here so every efficiency number in EXPERIMENTS.md is traceable to
an explicit assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Host CPU frequency used to convert the paper's cycle counts (paper).
CPU_GHZ = 2.27


@dataclass
class CostParams:
    """Costs (µs) and policy parameters of the modeled kernel."""

    #: Direct doorbell write via the memory-mapped interface: 305 cycles on
    #: the paper's GTX670 system (paper, Section 3).
    direct_submit_us: float = 305 / (CPU_GHZ * 1000)

    #: User/kernel mode switch including cache pollution and lost user-mode
    #: IPC — "thousands of CPU cycles" (paper, Section 3); ~3.4k cycles.
    trap_us: float = 1.5

    #: Page-fault handler work beyond the bare trap: scanning channel
    #: buffers for the reference counter, mapping it into kernel space,
    #: invoking the scheduler (paper, Section 4).
    fault_handle_us: float = 2.0

    #: Single-stepping the faulting store and re-protecting the page.
    singlestep_us: float = 0.8

    #: Scheduler bookkeeping to unblock a previously delayed task.
    unblock_us: float = 0.5

    #: Polling-thread period (paper: woken "at 1ms intervals").
    poll_interval_us: float = 1000.0

    #: CPU work per watched channel per polling pass.
    poll_check_us: float = 0.2

    #: Post-re-engagement status update: scan the command queue, build
    #: temporary kernel mappings, walk page tables to read the last
    #: submitted reference value (paper, Section 4).  Per channel.
    reengage_scan_us: float = 4.0

    #: Page-table update cost to protect/unprotect one channel's register
    #: page (token passing, barriers).
    page_flip_us: float = 1.0

    #: Timeslice length (paper: 30 ms).
    timeslice_us: float = 30_000.0

    #: Disengaged Fair Queueing sampling window: at most this long
    #: (paper: 5 ms) ...
    sample_max_us: float = 5_000.0

    #: ... or until this many requests were observed, whichever is first
    #: (paper: 32; raised to 96 for combined compute/graphics apps).
    sample_max_requests: int = 32

    #: Free-run period length as a multiple of the preceding engagement
    #: episode (paper: 5x).
    freerun_multiplier: float = 5.0

    #: A sampling window ends early once the sampled task has been idle
    #: (nothing outstanding, nothing submitted) for this long — "as many
    #: requests as can be observed" (Section 3.3): an idle task offers
    #: none, and waiting out the full window would idle the device.
    sample_idle_end_us: float = 300.0

    #: Polling period while a task is being *sampled* by Disengaged Fair
    #: Queueing.  The paper wakes the polling thread "when the scheduler
    #: decides"; fine-grained polling during the short sampling window is
    #: what lets request-size estimates land within ~5% of profiling tools
    #: (Section 5.1).
    sampling_poll_interval_us: float = 20.0

    #: Host CPU cores backing a finite :class:`~repro.osmodel.cpu.CpuPool`.
    #: 0 (default) models the paper's uncontended case (one core per
    #: runnable entity); a positive value makes application think time,
    #: fault-handler work, and polling passes contend for cores.
    cpu_cores: int = 0

    #: Documented limit on how long any single request may run before the
    #: submitting task is killed (paper: "a (documented) limit on the
    #: maximum time that any request is permitted to run").
    max_request_us: float = 1_000_000.0

    #: Drain-watchdog hardening (repro.core.hardening): how many times a
    #: stuck-but-unattributable drain is retried with a backed-off timeout
    #: before the watchdog degrades the offending task to engaged mode
    #: (and, on a repeat offense, kills it).  Only reachable when device
    #: or kernel misbehavior — fault injection — makes drain observations
    #: contradict the engine state; a genuine runaway is attributed and
    #: killed on the first timeout exactly as before.
    watchdog_max_retries: int = 2

    #: Timeout multiplier applied at each watchdog retry.
    watchdog_backoff: float = 2.0

    #: Charged at the source device's engagement boundary when a tenant
    #: migrates between fleet devices (repro.fleet.migration): context
    #: teardown on the source, state copy, and context re-creation on the
    #: target.  Never reached in single-device runs.
    migration_cost_us: float = 500.0

    #: Per-request syscall cost of the trap-per-request comparison stack of
    #: Section 3 (AMD-Catalyst-style submission).  Calibrated so direct
    #: access gains ~30% for 10 µs requests, matching the paper's 8–35%
    #: range over 10–100 µs.
    syscall_us: float = 3.2

    #: Additional "nontrivial processing in GPU driver routines" per
    #: request; with it, direct access gains up to ~170% (paper: 48–170%).
    driver_work_us: float = 14.0

    def validate(self) -> None:
        """Raise ``ValueError`` on nonsensical settings."""
        numeric_fields = (
            self.direct_submit_us,
            self.trap_us,
            self.fault_handle_us,
            self.singlestep_us,
            self.unblock_us,
            self.poll_interval_us,
            self.poll_check_us,
            self.reengage_scan_us,
            self.page_flip_us,
            self.timeslice_us,
            self.sample_max_us,
            self.freerun_multiplier,
            self.max_request_us,
            self.migration_cost_us,
            self.syscall_us,
            self.driver_work_us,
        )
        if any(value < 0 for value in numeric_fields):
            raise ValueError("cost parameters must be non-negative")
        if self.poll_interval_us <= 0:
            raise ValueError("poll_interval_us must be positive")
        if self.timeslice_us <= 0:
            raise ValueError("timeslice_us must be positive")
        if self.sample_max_requests < 1:
            raise ValueError("sample_max_requests must be >= 1")
        if self.freerun_multiplier <= 0:
            raise ValueError("freerun_multiplier must be positive")
        if self.cpu_cores < 0:
            raise ValueError("cpu_cores must be non-negative (0 = unlimited)")
        if self.watchdog_max_retries < 0:
            raise ValueError("watchdog_max_retries must be non-negative")
        if self.watchdog_backoff < 1.0:
            raise ValueError("watchdog_backoff must be >= 1.0")

    @property
    def intercept_us(self) -> float:
        """Total per-request interception cost when engaged."""
        return self.trap_us + self.fault_handle_us + self.singlestep_us
