"""The OS kernel model: request paths, task lifecycle, protection hooks.

The kernel owns the only two ways a request can reach the device:

* a **direct store** to the channel register (cost: one MMIO write), when
  the register page is mapped; or
* a **trapped store** when the page is protected: the fault handler runs,
  the scheduler is consulted (and may block the task *inside the handler*,
  exactly as NEON sleeps the faulting process in process context), then the
  store is single-stepped.

Workload code submits with ``completion = yield from kernel.submit(...)``,
paying the appropriate costs in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.errors import OutOfResourcesError
from repro.faults import registry as fault_points
from repro.neon.discovery import ChannelDiscovery
from repro.obs import events
from repro.obs.metrics import MetricsRegistry
from repro.osmodel.costs import CostParams
from repro.osmodel.cpu import CpuPool
from repro.osmodel.polling import PollingService
from repro.osmodel.task import Task, TaskState
from repro.sim.trace import NullRecorder, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.gpu.context import GpuContext
    from repro.gpu.device import GpuDevice
    from repro.gpu.request import Request, RequestKind
    from repro.sim.engine import Simulator


@dataclass
class ChannelQuotaPolicy:
    """The Section 6.3 defense against channel-exhaustion DoS.

    Limits each task to ``channels_per_task`` channels (the constant *C*)
    and admits at most ``total_channels // C`` distinct tasks (the *D/C*
    rule), so no single task can starve others of channels.
    """

    channels_per_task: int = 4

    def admit_channel(self, kernel: "Kernel", task: Task) -> None:
        """Raise :class:`OutOfResourcesError` if the allocation violates
        the quota."""
        own = kernel.live_channels_of(task)
        if len(own) >= self.channels_per_task:
            raise OutOfResourcesError(
                f"task {task.name} exceeds quota of "
                f"{self.channels_per_task} channels"
            )
        holders = kernel.tasks_holding_channels()
        max_tasks = kernel.device.params.total_channels // self.channels_per_task
        if task not in holders and len(holders) >= max_tasks:
            raise OutOfResourcesError(
                f"device admits at most {max_tasks} tasks under quota"
            )


@dataclass
class MemoryQuotaPolicy:
    """§6.3's memory-protection extension: block excessive consumption.

    Caps any single task at ``max_fraction`` of device memory, so no one
    application can exhaust the onboard RAM and lock everyone else out.
    """

    max_fraction: float = 0.5

    def admit_allocation(
        self, kernel: "Kernel", task: Task, mib: float
    ) -> None:
        limit = self.max_fraction * kernel.device.params.memory_mib
        held = kernel.task_memory_usage(task)
        if held + mib > limit:
            raise OutOfResourcesError(
                f"task {task.name} would exceed its {limit:.0f} MiB "
                f"device-memory quota"
            )


class Kernel:
    """The protected-domain resource manager."""

    def __init__(
        self,
        sim: "Simulator",
        device: "GpuDevice",
        costs: Optional[CostParams] = None,
        trace: Optional[TraceRecorder] = None,
        quota: Optional[ChannelQuotaPolicy] = None,
        memory_quota: Optional["MemoryQuotaPolicy"] = None,
        metrics: Optional[MetricsRegistry] = None,
        faults=None,
    ) -> None:
        self.sim = sim
        self.device = device
        self.costs = costs or CostParams()
        self.costs.validate()
        self.trace = trace if trace is not None else NullRecorder()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Resolved once: the fault path runs per intercepted request.
        self._faults = self.metrics.counter("faults")
        #: Optional fault injector (repro.faults); None = no plan installed.
        self.faults = faults
        self.quota = quota
        self.memory_quota = memory_quota
        self.cpu: Optional[CpuPool] = (
            CpuPool(sim, self.costs.cpu_cores) if self.costs.cpu_cores > 0 else None
        )
        self.polling = PollingService(sim, self.costs, cpu=self.cpu, faults=faults)
        self.scheduler = None  # attached below; import cycle avoidance
        self.tasks: list[Task] = []
        #: Channel-discovery state machines, keyed by channel id.
        self.discoveries: dict[int, ChannelDiscovery] = {}
        self.fault_count = 0
        self.fault_count_by_task: dict[int, int] = {}
        self.submit_count = 0

    # ------------------------------------------------------------------
    # Scheduler attachment
    # ------------------------------------------------------------------
    def attach_scheduler(self, scheduler) -> None:
        """Couple a scheduler to the fault/polling interface."""
        self.scheduler = scheduler
        scheduler.attach(self)

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def create_task(self, name: str) -> Task:
        task = Task(name)
        self.tasks.append(task)
        if self.scheduler is not None:
            self.scheduler.on_task_start(task)
        return task

    def exit_task(self, task: Task) -> None:
        """Normal exit: release device resources, tell the scheduler."""
        if task.state is TaskState.DEAD:
            return
        task.state = TaskState.DEAD
        for context in task.contexts:
            self.device.kill_context(context)
        if self.scheduler is not None:
            self.scheduler.on_task_exit(task)
        if self.trace.enabled:
            self.trace.emit(self.sim.now, "kernel", events.TASK_EXIT,
                            task=task.name)

    def kill_task(self, task: Task, reason: str) -> None:
        """Protective kill (Section 3.1): terminate the OS process and let
        the driver's exit protocol reclaim device resources."""
        if task.state is TaskState.DEAD:
            return
        task.state = TaskState.DEAD
        task.kill_reason = reason
        for context in task.contexts:
            self.device.kill_context(context)
        if task.process is not None:
            task.process.kill(reason)
        if self.scheduler is not None:
            self.scheduler.on_task_exit(task)
        self.metrics.inc("task_kills", task.name)
        if self.trace.enabled:
            self.trace.emit(
                self.sim.now, "kernel", events.TASK_KILLED,
                task=task.name, reason=reason,
            )

    # ------------------------------------------------------------------
    # Setup syscalls (the ioctl/mmap path of Figure 1)
    # ------------------------------------------------------------------
    def open_context(self, task: Task) -> "GpuContext":
        """Create a device context (initialization-phase syscall)."""
        return self.device.create_context(task)

    def open_channel(self, task: Task, context: "GpuContext", kind: RequestKind):
        """Create a channel; applies the quota policy and runs NEON's
        channel-discovery state machine before marking it active.

        The three mmap events of channel setup (command buffer, ring
        buffer, channel register) drive the discovery machine; only once
        it reaches ACTIVE is the scheduler told about the channel — NEON
        cannot intercept what it has not located.
        """
        if self.quota is not None:
            self.quota.admit_channel(self, task)
        channel = self.device.create_channel(context, kind)
        discovery = ChannelDiscovery(channel.channel_id)
        self.discoveries[channel.channel_id] = discovery
        if self.faults is not None:
            corrupted = self.faults.arm(
                fault_points.NEON_DISCOVERY_CORRUPTION, task.name
            )
            if corrupted is not None:
                # The setup mmaps were misread: the channel stays
                # untracked (and unschedulable by NEON) until discovery
                # is retried after the repair delay.
                self.sim.schedule(
                    corrupted.magnitude_us, self._repair_discovery, channel
                )
                return channel
        discovery.run_full_setup()
        if discovery.active and self.scheduler is not None:
            self.scheduler.on_channel_active(channel)
        return channel

    def _repair_discovery(self, channel: "Channel") -> None:
        """Retry a corrupted channel discovery (fault-injection recovery)."""
        if channel.dead:
            return
        discovery = self.discoveries.get(channel.channel_id)
        if discovery is None or discovery.active:
            return
        discovery.run_full_setup()
        if discovery.active and self.scheduler is not None:
            self.scheduler.on_channel_active(channel)

    def allocate_memory(self, task: Task, context: "GpuContext", mib: float) -> None:
        """Allocate device memory on behalf of a task (mmap/ioctl path),
        applying the memory quota when one is configured."""
        if context.task is not task:
            raise ValueError("allocation on another task's context")
        if self.memory_quota is not None:
            self.memory_quota.admit_allocation(self, task, mib)
        self.device.memory.allocate(context, mib)

    def free_memory(self, task: Task, context: "GpuContext", mib: float) -> None:
        if context.task is not task:
            raise ValueError("free on another task's context")
        self.device.memory.free(context, mib)

    def task_memory_usage(self, task: Task) -> float:
        """Device memory currently held by a task, across its contexts."""
        return sum(
            self.device.memory.context_usage(context)
            for context in task.contexts
        )

    def live_channels_of(self, task: Task) -> list["Channel"]:
        return [
            channel
            for channel in self.device.channels.values()
            if not channel.dead and channel.task is task
        ]

    def tasks_holding_channels(self) -> set[Task]:
        return {
            channel.task
            for channel in self.device.channels.values()
            if not channel.dead
        }

    def cpu_time(self, duration_us: float, owner: str):
        """Consume CPU time (a generator): through the finite pool when
        one is configured, as a plain delay otherwise."""
        if self.cpu is not None:
            yield from self.cpu.execute(duration_us, owner)
        else:
            yield duration_us

    # ------------------------------------------------------------------
    # The request-submission path
    # ------------------------------------------------------------------
    def submit(self, task: Task, channel: "Channel", request: Request):
        """Submit a request from ``task`` (a generator; ``yield from`` it).

        Returns the completion event.  Charges the direct-write cost, plus
        the full interception cost if the register page is protected; the
        scheduler may hold the task blocked inside the handler arbitrarily
        long (or forever, if the task gets killed while waiting).
        """
        page = channel.register_page
        if self.faults is not None:
            lag = self.faults.arm(fault_points.KERNEL_SUBMIT_LATENCY, task.name)
            if lag is not None:
                yield lag.magnitude_us
        yield self.costs.direct_submit_us
        observed = False
        if page.protected:
            observed = True
            page.record_fault()
            self.fault_count += 1
            self.fault_count_by_task[task.task_id] = (
                self.fault_count_by_task.get(task.task_id, 0) + 1
            )
            self._faults.inc(task.name)
            if self.trace.enabled:
                self.trace.emit(
                    self.sim.now, "kernel", events.FAULT,
                    task=task.name, channel=channel.channel_id, ref=request.ref,
                )
            if self.faults is not None:
                dropped = self.faults.arm(
                    fault_points.KERNEL_FAULT_DROP, task.name
                )
                if dropped is not None:
                    # The first trap is lost: its CPU cost is paid for
                    # nothing and the store re-executes after the retry
                    # delay, trapping again below.
                    yield from self.cpu_time(self.costs.trap_us, task.name)
                    yield dropped.magnitude_us
                delayed = self.faults.arm(
                    fault_points.KERNEL_FAULT_DELAY, task.name
                )
                if delayed is not None:
                    yield delayed.magnitude_us
            yield from self.cpu_time(
                self.costs.trap_us + self.costs.fault_handle_us, task.name
            )
            wait_begin: Optional[float] = None
            while True:
                verdict = self.scheduler.on_fault(task, channel, request)
                if verdict is None:
                    break
                if wait_begin is None:
                    # Lazy: zero-wait faults (scheduler admits immediately)
                    # produce no wait span at all.
                    wait_begin = self.sim.now
                    if self.trace.enabled:
                        self.trace.emit(
                            wait_begin, "kernel", events.SCHED_WAIT_BEGIN,
                            task=task.name, channel=channel.channel_id,
                        )
                task.state = TaskState.BLOCKED
                yield verdict
                task.state = TaskState.RUNNING
                yield from self.cpu_time(self.costs.unblock_us, task.name)
            if wait_begin is not None and self.trace.enabled:
                self.trace.emit(
                    self.sim.now, "kernel", events.SCHED_WAIT_END,
                    task=task.name, channel=channel.channel_id,
                    waited_us=self.sim.now - wait_begin,
                )
            yield from self.cpu_time(self.costs.singlestep_us, task.name)
        if channel.dead or not task.alive:
            # Our context was torn down while we were blocked; the pending
            # ProcessKilled will arrive momentarily — wait for it.
            yield self.sim.event()
        completion = self.device.submit(channel, request)
        self.submit_count += 1
        if observed and self.scheduler is not None:
            self.scheduler.on_submit(task, channel, request)
        return completion

    def submit_batch(self, task: Task, channel: "Channel", requests: list[Request]):
        """Submit back-to-back requests in one kick (a generator).

        The user library's batched doorbell path: on an *unprotected*
        channel the stores are issued consecutively — one combined
        direct-write cost, then a single hardware enqueue burst and one
        engine wake (``GpuDevice.submit_batch``).  On a protected channel
        every store faults individually, so the batch degrades to the
        per-request interception path; batching never bypasses the
        scheduler.  Returns the completion events in submission order.
        """
        if not requests:
            return []
        if channel.register_page.protected:
            completions = []
            for request in requests:
                completions.append(
                    (yield from self.submit(task, channel, request))
                )
            return completions
        if self.faults is not None:
            lag = self.faults.arm(fault_points.KERNEL_SUBMIT_LATENCY, task.name)
            if lag is not None:
                yield lag.magnitude_us
        yield self.costs.direct_submit_us * len(requests)
        if channel.dead or not task.alive:
            # Torn down while paying the submit cost; wait for the kill.
            yield self.sim.event()
        completions = self.device.submit_batch(channel, requests)
        self.submit_count += len(requests)
        return completions

    def submit_via_syscall(
        self, task: Task, channel: "Channel", request: Request, driver_work: bool
    ):
        """The Section 3 comparison stack: every request traps to the kernel
        (AMD-Catalyst-style), optionally with nontrivial driver-routine
        processing.  No scheduling — pure cost model."""
        cost = self.costs.syscall_us
        if driver_work:
            cost += self.costs.driver_work_us
        yield cost
        completion = self.device.submit(channel, request)
        self.submit_count += 1
        return completion
