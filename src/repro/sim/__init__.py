"""Deterministic discrete-event simulation kernel.

This package provides the substrate on which the GPU device model, the OS
model, and the schedulers are built.  It is intentionally small and
dependency-free: a time-ordered event heap (:class:`~repro.sim.engine.Simulator`),
one-shot :class:`~repro.sim.events.Event` objects, generator-based
:class:`~repro.sim.process.Process` coroutines, named seeded random streams
(:mod:`repro.sim.rng`), and a structured trace recorder
(:mod:`repro.sim.trace`).

Time is measured in floating-point **microseconds**.  All simultaneous
events are ordered by insertion sequence, so runs are reproducible
bit-for-bit given the same seed.
"""

from repro.sim.engine import Simulator, TimerHandle
from repro.sim.events import AnyOf, Event
from repro.sim.process import Process, ProcessCrashed, ProcessKilled
from repro.sim.rng import RngRegistry
from repro.sim.trace import NullRecorder, TraceRecord, TraceRecorder

__all__ = [
    "AnyOf",
    "Event",
    "NullRecorder",
    "Process",
    "ProcessCrashed",
    "ProcessKilled",
    "RngRegistry",
    "Simulator",
    "TimerHandle",
    "TraceRecord",
    "TraceRecorder",
]
