"""Structured trace recording.

Components emit :class:`TraceRecord` entries (time, source, kind, payload)
into a shared :class:`TraceRecorder`.  Traces power the CDF analyses of
Figure 2, the observability subsystem (:mod:`repro.obs`), and are
invaluable when debugging scheduler interleavings.

Recording is cheap and bounded:

* a *kind filter* drops uninteresting records at emission time;
* a *ring-buffer cap* (``max_records``) evicts the oldest records once
  the buffer is full, counting evictions in :attr:`TraceRecorder.dropped`
  so analyses know the trace is partial;
* the :attr:`TraceRecorder.enabled` flag lets hot paths skip payload
  construction entirely when tracing is off (:class:`NullRecorder`).

Consumers that need the *stream* rather than the *buffer* register a
live sink with :meth:`TraceRecorder.add_sink`: every record that passes
the kind filter is delivered to each sink as it is emitted, before (and
independent of) ring-buffer retention, so a sink sees the complete
stream even when ``max_records`` evicts.  This is what the streaming
observability engine (:mod:`repro.obs.windows`) subscribes through.
Recorders built with ``retain=False`` skip buffering entirely and act as
pure stream fan-out points for unbounded horizons.

Event *kinds* are typed constants registered in :mod:`repro.obs.events`;
neonlint rule NEON401/NEON402 rejects emit sites using unregistered
string literals.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Optional

#: Default ring-buffer capacity used by tracing entry points that record
#: every kind (the ``repro trace`` CLI, ``build_env(trace=...)`` helpers).
DEFAULT_TRACE_CAP = 1_000_000


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    source: str
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Bounded store of trace records with simple querying.

    Parameters
    ----------
    kinds:
        If given, only records whose ``kind`` is in this set are kept;
        everything else is dropped at emission time (not counted as
        *dropped* — they were never wanted).
    max_records:
        Ring-buffer capacity.  Once full, each new record evicts the
        oldest one and bumps :attr:`dropped`.  ``None`` (the default)
        keeps every record — callers recording long runs should pass a
        cap (the observability CLI defaults to
        :data:`DEFAULT_TRACE_CAP`).
    retain:
        When False, nothing is buffered at all (``len`` stays 0 and
        :attr:`dropped` never advances); the recorder only fans records
        out to its sinks.  Use for unbounded streaming consumers.
    """

    def __init__(
        self,
        kinds: Optional[Iterable[str]] = None,
        max_records: Optional[int] = None,
        retain: bool = True,
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be >= 1")
        self._records: deque[TraceRecord] = deque(maxlen=max_records)
        self._kinds: Optional[frozenset[str]] = (
            frozenset(kinds) if kinds is not None else None
        )
        self._retain = bool(retain)
        #: Live consumers; each is called with every record that passes
        #: the kind filter, in emission order, before buffering.
        self._sinks: list[Callable[[TraceRecord], None]] = []
        #: Records evicted by the ring buffer (oldest-first), NOT records
        #: rejected by the kind filter.
        self.dropped = 0
        #: Hot paths may consult this before building an expensive
        #: payload; :class:`NullRecorder` sets it False.
        self.enabled = True

    @property
    def max_records(self) -> Optional[int]:
        return self._records.maxlen

    @property
    def retain(self) -> bool:
        return self._retain

    # ------------------------------------------------------------------
    # Live sinks
    # ------------------------------------------------------------------
    def add_sink(
        self, sink: Callable[[TraceRecord], None]
    ) -> Callable[[TraceRecord], None]:
        """Subscribe a live consumer to the record stream.

        ``sink`` is called once per record (after the kind filter, before
        ring-buffer retention), in emission order.  Delivery is
        independent of ``max_records`` eviction: a sink sees the complete
        stream even when the buffer drops.  Sinks may re-enter
        :meth:`emit` (e.g. the streaming monitor records ``window.close``
        events); re-entrant records are delivered to sinks too.

        Returns ``sink`` so callers can keep the handle for
        :meth:`remove_sink`.
        """
        if not callable(sink):
            raise TypeError("trace sink must be callable")
        self._sinks.append(sink)
        return sink

    def remove_sink(self, sink: Callable[[TraceRecord], None]) -> None:
        """Unsubscribe a sink; unknown sinks are ignored."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    @property
    def sinks(self) -> tuple[Callable[[TraceRecord], None], ...]:
        return tuple(self._sinks)

    def emit(self, time: float, source: str, kind: str, **payload: Any) -> None:
        """Record an event if its kind passes the filter."""
        if self._kinds is not None and kind not in self._kinds:
            return
        record = TraceRecord(time, source, kind, payload)
        if self._sinks:
            for sink in self._sinks:
                sink(record)
        if not self._retain:
            return
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self.dropped += 1
        records.append(record)

    def append(self, record: TraceRecord) -> None:
        """Insert an existing record (trace import path); same bounds."""
        if self._kinds is not None and record.kind not in self._kinds:
            return
        if self._sinks:
            for sink in self._sinks:
                sink(record)
        if not self._retain:
            return
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self.dropped += 1
        records.append(record)

    def records(
        self,
        kind: Optional[str] = None,
        source: Optional[str] = None,
        kinds: Optional[Iterable[str]] = None,
        start_us: Optional[float] = None,
        end_us: Optional[float] = None,
    ) -> Iterator[TraceRecord]:
        """Iterate records, optionally filtered.

        ``kind`` matches one kind exactly; ``kinds`` matches any of a
        set; ``source`` matches the emitting component; ``start_us`` /
        ``end_us`` bound the (inclusive) time window.  Lazy, so large
        traces can be scanned without materializing copies.
        """
        wanted: Optional[frozenset[str]] = None
        if kinds is not None:
            wanted = frozenset(kinds)
        for record in self._records:
            if kind is not None and record.kind != kind:
                continue
            if wanted is not None and record.kind not in wanted:
                continue
            if source is not None and record.source != source:
                continue
            if start_us is not None and record.time < start_us:
                continue
            if end_us is not None and record.time > end_us:
                continue
            yield record

    def kind_counts(self) -> dict[str, int]:
        """Record count per kind, sorted by kind name."""
        counts: dict[str, int] = {}
        for record in self._records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return dict(sorted(counts.items()))

    @property
    def span_us(self) -> tuple[float, float]:
        """(first, last) record time; (0, 0) when empty."""
        if not self._records:
            return (0.0, 0.0)
        return (self._records[0].time, self._records[-1].time)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()
        self.dropped = 0


class NullRecorder(TraceRecorder):
    """A recorder that drops everything; the default when tracing is off."""

    def __init__(self) -> None:
        super().__init__(kinds=())
        self.enabled = False

    def emit(self, time: float, source: str, kind: str, **payload: Any) -> None:
        return


class DeviceTraceView:
    """A per-device view of a shared recorder (repro.fleet).

    Every record emitted through the view carries a ``device`` payload
    field identifying the fleet device its stack belongs to; everything
    else delegates to the underlying recorder.  Single-device runs never
    construct a view, so their traces carry no ``device`` field and stay
    byte-identical with the fleet subsystem merged.
    """

    __slots__ = ("_base", "device_id")

    def __init__(self, base: TraceRecorder, device_id: int) -> None:
        self._base = base
        self.device_id = device_id

    @property
    def enabled(self) -> bool:
        return self._base.enabled

    @property
    def base(self) -> TraceRecorder:
        return self._base

    def emit(self, time: float, source: str, kind: str, **payload: Any) -> None:
        if "device" not in payload:
            payload["device"] = self.device_id
        self._base.emit(time, source, kind, **payload)

    def append(self, record: TraceRecord) -> None:
        if "device" in record.payload:
            self._base.append(record)
            return
        payload = dict(record.payload)
        payload["device"] = self.device_id
        self._base.append(
            TraceRecord(record.time, record.source, record.kind, payload)
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)

    def __len__(self) -> int:
        return len(self._base)
