"""Structured trace recording.

Components emit :class:`TraceRecord` entries (time, source, kind, payload)
into a shared :class:`TraceRecorder`.  Traces power the CDF analyses of
Figure 2 and are invaluable when debugging scheduler interleavings.
Recording is cheap and can be filtered by kind to bound memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry."""

    time: float
    source: str
    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


class TraceRecorder:
    """Append-only store of trace records with simple querying.

    Parameters
    ----------
    kinds:
        If given, only records whose ``kind`` is in this set are kept;
        everything else is dropped at emission time.
    """

    def __init__(self, kinds: Optional[Iterable[str]] = None) -> None:
        self._records: list[TraceRecord] = []
        self._kinds: Optional[frozenset[str]] = (
            frozenset(kinds) if kinds is not None else None
        )

    def emit(self, time: float, source: str, kind: str, **payload: Any) -> None:
        """Record an event if its kind passes the filter."""
        if self._kinds is not None and kind not in self._kinds:
            return
        self._records.append(TraceRecord(time, source, kind, payload))

    def records(
        self, kind: Optional[str] = None, source: Optional[str] = None
    ) -> Iterator[TraceRecord]:
        """Iterate records, optionally filtered by kind and/or source."""
        for record in self._records:
            if kind is not None and record.kind != kind:
                continue
            if source is not None and record.source != source:
                continue
            yield record

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        self._records.clear()


class NullRecorder(TraceRecorder):
    """A recorder that drops everything; the default when tracing is off."""

    def __init__(self) -> None:
        super().__init__(kinds=())

    def emit(self, time: float, source: str, kind: str, **payload: Any) -> None:
        return
