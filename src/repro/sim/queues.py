"""Event-queue backends for the simulator core.

The simulator stores scheduled callbacks as plain tuples::

    (time, seq, handle, fn, args)

ordered by the total order ``(time, seq)`` — ``seq`` is the global
scheduling sequence number, so callbacks scheduled for the same instant
fire in FIFO order.  ``handle`` is a :class:`~repro.sim.engine.TimerHandle`
for cancellable entries and ``None`` for the internal fast path (event
callbacks, process wakeups) that nothing ever cancels.  Tuple entries keep
every ordering comparison inside the C tuple-compare path; ``seq`` values
are unique, so the comparison never reaches the non-orderable tail.

Two interchangeable backends implement the same pop order:

``HeapEventQueue``
    The classic single binary heap (``heapq``).  Simple, allocation-free,
    and the reference implementation the property tests compare against.

``CalendarEventQueue``
    A bucketed calendar queue: entries hash into fixed-width time buckets
    (small per-bucket heaps) indexed by a heap of non-empty bucket ids,
    plus a dedicated FIFO lane for entries scheduled at exactly the
    current instant.  Zero-delay callbacks — the bulk of all scheduling
    (event triggers, process wakeups) — bypass heap ordering entirely:
    within one instant they are FIFO by construction.  Pop compares the
    FIFO head with the head of the earliest bucket, so the merged order
    is exactly the heap backend's ``(time, seq)`` order.

Both backends own the cancelled-entry bookkeeping: cancelling marks the
handle and bumps a counter; once cancelled entries are the majority (and
at least ``COMPACT_MIN_CANCELLED`` of them exist) the queue compacts,
bounding memory under schedule/cancel churn (watchdog timeout patterns).
Compaction cannot reorder live entries — the order is total.
"""

from __future__ import annotations

from collections import deque
from heapq import heapify, heappop, heappush
from typing import Any, Optional

#: Never compact below this many cancelled entries (tiny queues are cheap
#: to scan); only once cancelled entries are the majority is the O(n)
#: rebuild amortized.
COMPACT_MIN_CANCELLED = 64

Entry = tuple  # (time, seq, handle_or_None, fn, args)


class HeapEventQueue:
    """Single binary-heap backend (the reference implementation)."""

    __slots__ = ("_heap", "_cancelled")

    name = "heap"

    def __init__(self) -> None:
        self._heap: list[Entry] = []
        self._cancelled = 0

    # -- scheduling ----------------------------------------------------
    def push(self, entry: Entry) -> None:
        heappush(self._heap, entry)

    #: Entries at exactly the current instant take the same path here;
    #: the calendar backend overrides this with a FIFO lane.
    push_now = push

    # -- popping -------------------------------------------------------
    def pop_live(self, limit: Optional[float] = None) -> Optional[Entry]:
        """Pop the earliest live entry; discard cancelled ones en route.

        With ``limit`` given, an entry scheduled after ``limit`` is left
        in place and ``None`` is returned.
        """
        heap = self._heap
        while heap:
            head = heap[0]
            handle = head[2]
            if handle is not None and handle._cancelled:
                heappop(heap)
                handle._popped = True
                self._cancelled -= 1
                continue
            if limit is not None and head[0] > limit:
                return None
            return heappop(heap)
        return None

    # -- cancellation bookkeeping --------------------------------------
    def note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= len(self._heap)
        ):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors."""
        live = []
        for entry in self._heap:
            handle = entry[2]
            if handle is not None and handle._cancelled:
                handle._popped = True
            else:
                live.append(entry)
        heapify(live)
        self._heap = live
        self._cancelled = 0

    # -- accounting ----------------------------------------------------
    def __len__(self) -> int:
        """Live (non-cancelled) entries."""
        return len(self._heap) - self._cancelled

    @property
    def allocated(self) -> int:
        """Total stored entries, cancelled ones included."""
        return len(self._heap)


class CalendarEventQueue:
    """Bucketed calendar-queue backend with a current-instant FIFO lane."""

    __slots__ = (
        "_width_inv",
        "_buckets",
        "_bucket_ids",
        "_fifo",
        "_cancelled",
        "_head",
        "_head_id",
    )

    name = "calendar"

    #: Default bucket width (µs).  Wide enough that a typical pending set
    #: (tens of events over a few ms) spreads over few-entry buckets;
    #: narrow enough that per-bucket heaps stay nearly sorted lists.
    DEFAULT_BUCKET_US = 16.0

    def __init__(self, bucket_us: float = DEFAULT_BUCKET_US) -> None:
        if bucket_us <= 0:
            raise ValueError("bucket width must be positive")
        self._width_inv = 1.0 / bucket_us
        #: bucket id -> small heap of entries whose time falls in
        #: [id * width, (id + 1) * width).
        self._buckets: dict[int, list[Entry]] = {}
        #: Min-heap of (possibly stale) non-empty bucket ids.
        self._bucket_ids: list[int] = []
        #: FIFO of entries scheduled at exactly the current instant; their
        #: seq numbers exceed every same-time entry already bucketed, so
        #: FIFO order is (time, seq) order within the lane.
        self._fifo: deque[Entry] = deque()
        self._cancelled = 0
        #: Cache of the earliest non-empty bucket (and its id), so runs of
        #: pops against one bucket skip the id-heap scan.  While cached,
        #: every other bucket has a strictly larger id; creating a bucket
        #: below the cached id invalidates the cache.
        self._head: Optional[list[Entry]] = None
        self._head_id: Optional[int] = None

    # -- scheduling ----------------------------------------------------
    def push(self, entry: Entry) -> None:
        bucket_id = int(entry[0] * self._width_inv)
        bucket = self._buckets.get(bucket_id)
        if bucket is None:
            self._buckets[bucket_id] = [entry]
            heappush(self._bucket_ids, bucket_id)
            head_id = self._head_id
            if head_id is not None and bucket_id < head_id:
                self._head = None
                self._head_id = None
        else:
            heappush(bucket, entry)

    def push_now(self, entry: Entry) -> None:
        """Append an entry scheduled at exactly the current instant."""
        self._fifo.append(entry)

    # -- popping -------------------------------------------------------
    def pop_live(self, limit: Optional[float] = None) -> Optional[Entry]:
        """Pop the earliest live entry across the FIFO lane and buckets.

        With ``limit`` given, an entry scheduled after ``limit`` is left
        in place and ``None`` is returned.
        """
        fifo = self._fifo
        while True:
            # Locate the earliest non-empty bucket: the cached head when
            # still valid, otherwise rescan the id heap, dropping stale
            # ids (a bucket emptied by popping leaves its id behind until
            # the scan reaches it again).
            bucket = self._head
            if not bucket:
                buckets = self._buckets
                ids = self._bucket_ids
                bucket = None
                head_id = None
                while ids:
                    head_id = ids[0]
                    bucket = buckets.get(head_id)
                    if bucket:
                        break
                    heappop(ids)
                    if bucket is not None:
                        del buckets[head_id]
                    bucket = None
                self._head = bucket
                self._head_id = head_id if bucket is not None else None
            # The earlier of bucket head and FIFO head is the global
            # minimum: the FIFO holds current-instant entries, and a
            # bucketed entry at that same time always has a lower seq
            # (it was scheduled before the clock reached that instant) —
            # so comparing times alone decides, ties going to the bucket.
            from_fifo = False
            if fifo:
                if bucket is not None and bucket[0][0] <= fifo[0][0]:
                    head = bucket[0]
                else:
                    head = fifo[0]
                    from_fifo = True
            elif bucket is not None:
                head = bucket[0]
            else:
                return None
            handle = head[2]
            if handle is not None and handle._cancelled:
                if from_fifo:
                    fifo.popleft()
                else:
                    heappop(bucket)
                handle._popped = True
                self._cancelled -= 1
                continue
            if limit is not None and head[0] > limit:
                return None
            return fifo.popleft() if from_fifo else heappop(bucket)

    # -- cancellation bookkeeping --------------------------------------
    def note_cancelled(self) -> None:
        self._cancelled += 1
        if (
            self._cancelled >= COMPACT_MIN_CANCELLED
            and self._cancelled * 2 >= self.allocated
        ):
            self.compact()

    def compact(self) -> None:
        """Drop cancelled entries; rebuild buckets and the id heap."""
        survivors: dict[int, list[Entry]] = {}
        for bucket in self._buckets.values():
            for entry in bucket:
                handle = entry[2]
                if handle is not None and handle._cancelled:
                    handle._popped = True
                    continue
                survivors.setdefault(int(entry[0] * self._width_inv), []).append(entry)
        for bucket in survivors.values():
            heapify(bucket)
        self._buckets = survivors
        self._bucket_ids = list(survivors)
        heapify(self._bucket_ids)
        self._head = None
        self._head_id = None
        live_fifo = deque()
        for entry in self._fifo:
            handle = entry[2]
            if handle is not None and handle._cancelled:
                handle._popped = True
            else:
                live_fifo.append(entry)
        self._fifo = live_fifo
        self._cancelled = 0

    # -- accounting ----------------------------------------------------
    def __len__(self) -> int:
        """Live (non-cancelled) entries."""
        return self.allocated - self._cancelled

    @property
    def allocated(self) -> int:
        """Total stored entries, cancelled ones included."""
        return sum(map(len, self._buckets.values())) + len(self._fifo)


QUEUE_BACKENDS = {
    HeapEventQueue.name: HeapEventQueue,
    CalendarEventQueue.name: CalendarEventQueue,
}


def make_queue(backend: str) -> Any:
    """Instantiate an event-queue backend by name."""
    try:
        factory = QUEUE_BACKENDS[backend]
    except KeyError:
        known = ", ".join(sorted(QUEUE_BACKENDS))
        raise ValueError(
            f"unknown event-queue backend {backend!r}; known: {known}"
        ) from None
    return factory()
