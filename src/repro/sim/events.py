"""One-shot events and composite wait conditions."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Event:
    """A one-shot event that processes can wait on.

    An event starts untriggered.  Calling :meth:`trigger` records a value,
    marks the event triggered, and schedules all registered callbacks to run
    at the current simulation time.  Callbacks added after triggering are
    scheduled immediately.  Triggering twice raises ``RuntimeError``.
    """

    __slots__ = ("sim", "triggered", "value", "_callbacks", "_name")

    def __init__(self, sim: "Simulator", name: Optional[str] = None) -> None:
        self.sim = sim
        self.triggered = False
        self.value: Any = None
        self._callbacks: list[Callable[["Event"], None]] = []
        self._name = name

    def trigger(self, value: Any = None) -> "Event":
        """Fire the event, delivering ``value`` to all waiters."""
        if self.triggered:
            raise RuntimeError(f"event {self!r} triggered twice")
        self.triggered = True
        self.value = value
        callbacks = self._callbacks
        if callbacks:
            self._callbacks = []
            # Equivalent to sim.schedule_now per callback, inlined: the
            # trigger fan-out is the hottest dispatch site in the core.
            sim = self.sim
            queue = sim._queue
            now = sim.now
            seq = sim._seq
            for callback in callbacks:
                # Process waiters register as (resume, token) pairs — the
                # fast path that skips building a wakeup closure per wait.
                if callback.__class__ is tuple:
                    queue.push_now(
                        (now, seq, None, callback[0], (callback[1], value, None))
                    )
                else:
                    queue.push_now((now, seq, None, callback, (self,)))
                seq += 1
            sim._seq = seq
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Register ``callback(event)`` to run once the event triggers."""
        if self.triggered:
            self.sim.schedule_now(callback, self)
        else:
            self._callbacks.append(callback)

    def add_waiter(self, waiter: tuple) -> None:
        """Register a process waiter as a ``(resume, token)`` pair.

        Equivalent to ``add_callback`` with a closure calling
        ``resume(token, event.value, None)``, minus the closure: the
        trigger path dispatches the pair directly.  Same scheduling
        semantics, same FIFO position, one allocation less per wait.
        """
        if self.triggered:
            self.sim.schedule_now(waiter[0], waiter[1], self.value, None)
        else:
            self._callbacks.append(waiter)

    def discard_callback(self, callback: Callable[["Event"], None]) -> None:
        """Remove a previously registered callback if still pending."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self._name or "anonymous"
        state = "triggered" if self.triggered else "pending"
        return f"Event({label}, {state})"


class AnyOf:
    """Composite condition satisfied when any member event triggers.

    Yielded from a process as ``first = yield AnyOf(sim, [a, b])``; the
    resume value is the member :class:`Event` that fired first (earliest
    trigger wins deterministically; later triggers are ignored).
    """

    __slots__ = ("sim", "events", "_proxy")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        self.sim = sim
        self.events = list(events)
        if not self.events:
            raise ValueError("AnyOf requires at least one event")
        self._proxy = Event(sim, name="AnyOf")
        for event in self.events:
            event.add_callback(self._on_member)

    def _on_member(self, event: Event) -> None:
        if self._proxy.triggered:
            return
        # Withdraw from the losing members immediately: long-lived events
        # (task exits, watchdogs) would otherwise accumulate one stale
        # closure per historical wait.
        for other in self.events:
            if other is not event:
                other.discard_callback(self._on_member)
        self._proxy.trigger(event)

    def detach(self, callback: Optional[Callable[[Event], None]] = None) -> None:
        """Withdraw all member registrations (and ``callback`` from the proxy).

        Called when a waiter abandons the composite wait (e.g. the waiting
        process is killed) so that no member event keeps a reference to
        this condition, and no eventual member trigger schedules a dead
        wakeup through the proxy.
        """
        if callback is not None:
            self._proxy.discard_callback(callback)
        for event in self.events:
            event.discard_callback(self._on_member)

    @property
    def proxy(self) -> Event:
        """The internal one-shot event that fires on the first member."""
        return self._proxy
