"""Named, seeded random streams.

Every stochastic component draws from its own named stream so that adding
or removing one component never perturbs the draws seen by another.  All
streams derive from a single root seed through ``numpy.random.SeedSequence``
spawning, keyed by a stable hash of the stream name.
"""

from __future__ import annotations

import zlib

import numpy as np


class BatchedNormals:
    """Standard-normal draws served from a vectorized-ahead buffer.

    ``Generator.standard_normal(n)`` consumes the underlying bit stream
    exactly as ``n`` scalar calls would, so refilling in batches changes
    host-side cost only — the sequence of draws is bit-identical to
    drawing one at a time, and ``loc + scale * z`` reproduces
    ``Generator.normal(loc, scale)`` exactly.  The one caveat: the wrapped
    generator's state runs *ahead* of the draws handed out, so a stream
    must not be read both through a batcher and directly.
    """

    __slots__ = ("_generator", "_batch", "_buffer", "_index")

    def __init__(self, generator: np.random.Generator, batch: int = 512) -> None:
        if batch < 1:
            raise ValueError("batch size must be positive")
        self._generator = generator
        self._batch = batch
        self._buffer: list[float] = []
        self._index = 0

    def draw(self) -> float:
        """The next standard-normal variate in stream order."""
        index = self._index
        buffer = self._buffer
        if index >= len(buffer):
            buffer = self._buffer = self._generator.standard_normal(
                self._batch
            ).tolist()
            index = 0
        self._index = index + 1
        return buffer[index]


class RngRegistry:
    """A factory of independent, reproducible ``numpy`` generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._normals: dict[str, BatchedNormals] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identical stream,
        independent of creation order.
        """
        generator = self._streams.get(name)
        if generator is None:
            key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def normals(self, name: str, batch: int = 512) -> BatchedNormals:
        """A :class:`BatchedNormals` view of the named stream (cached).

        The batcher takes over the stream's normal draws; mixing it with
        direct reads of :meth:`stream` for the same name would interleave
        two consumers on one bit stream.
        """
        batched = self._normals.get(name)
        if batched is None:
            batched = BatchedNormals(self.stream(name), batch)
            self._normals[name] = batched
        return batched

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
