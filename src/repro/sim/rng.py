"""Named, seeded random streams.

Every stochastic component draws from its own named stream so that adding
or removing one component never perturbs the draws seen by another.  All
streams derive from a single root seed through ``numpy.random.SeedSequence``
spawning, keyed by a stable hash of the stream name.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngRegistry:
    """A factory of independent, reproducible ``numpy`` generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identical stream,
        independent of creation order.
        """
        generator = self._streams.get(name)
        if generator is None:
            key = zlib.crc32(name.encode("utf-8"))
            sequence = np.random.SeedSequence(entropy=self.seed, spawn_key=(key,))
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self.seed}, streams={sorted(self._streams)})"
