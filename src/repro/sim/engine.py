"""The discrete-event simulator core.

A :class:`Simulator` owns the virtual clock and a queue of scheduled
callbacks.  Callbacks scheduled for the same instant fire in the order they
were scheduled (FIFO tie-breaking by a monotonically increasing sequence
number), which makes every simulation deterministic.

Two event-queue backends implement that order (see
:mod:`repro.sim.queues`): the default bucketed calendar queue, and the
classic single binary heap selectable with ``Simulator(queue="heap")`` or
the ``REPRO_SIM_QUEUE`` environment variable.  The pop order — and with it
every simulation trajectory — is identical under both; the property tests
in ``tests/sim/test_queues.py`` enforce that.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event
from repro.sim.process import Process
from repro.sim.queues import COMPACT_MIN_CANCELLED, make_queue

#: Backend used when ``Simulator(queue=None)``: the ``REPRO_SIM_QUEUE``
#: environment variable ("calendar" or "heap"), read once at import so a
#: whole experiment run — pool workers included — uses one backend.
DEFAULT_QUEUE_BACKEND = os.environ.get("REPRO_SIM_QUEUE", "calendar")


class TimerHandle:
    """A cancellable handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`.  Calling :meth:`cancel` before
    the deadline prevents the callback from running; cancelling after it has
    fired is a harmless no-op.
    """

    __slots__ = ("time", "seq", "_cancelled", "_queue", "_popped")

    def __init__(self, time: float, seq: int, queue=None):
        self.time = time
        self.seq = seq
        self._cancelled = False
        self._queue = queue
        self._popped = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._queue is not None and not self._popped:
            self._queue.note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "TimerHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "armed"
        return f"TimerHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class Simulator:
    """Event-driven simulator with a microsecond-resolution virtual clock.

    Typical use::

        sim = Simulator()

        def worker():
            yield 5.0            # sleep 5 microseconds
            done.trigger("ok")

        done = sim.event()
        sim.spawn(worker(), name="worker")
        sim.run(until=100.0)
    """

    #: Compaction threshold (kept here for introspection; the queue
    #: backends own the policy — see :mod:`repro.sim.queues`).
    COMPACT_MIN_CANCELLED = COMPACT_MIN_CANCELLED

    def __init__(self, queue: Optional[str] = None) -> None:
        self.now: float = 0.0
        self.queue_backend = queue or DEFAULT_QUEUE_BACKEND
        self._queue = make_queue(self.queue_backend)
        self._seq = 0
        self._running = False
        self._processes: list[Process] = []

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` microseconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        queue = self._queue
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = TimerHandle(time, seq, queue)
        entry = (time, seq, handle, fn, args)
        if delay == 0.0:
            queue.push_now(entry)
        else:
            queue.push(entry)
        return handle

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        now = self.now
        if time < now:
            raise ValueError(f"cannot schedule in the past: {time} < {now}")
        queue = self._queue
        handle = TimerHandle(time, self._seq, queue)
        entry = (time, self._seq, handle, fn, args)
        self._seq += 1
        if time == now:
            queue.push_now(entry)
        else:
            queue.push(entry)
        return handle

    def schedule_now(self, fn: Callable[..., Any], *args: Any) -> None:
        """Run ``fn(*args)`` at the current instant (internal fast path).

        Identical ordering semantics to ``schedule(0.0, ...)`` but without
        a cancellation handle — used by the event/process machinery, where
        stale wakeups are already guarded by tokens or trigger flags.
        """
        self._queue.push_now((self.now, self._seq, None, fn, args))
        self._seq += 1

    def event(self) -> Event:
        """Create a fresh one-shot :class:`Event` bound to this simulator."""
        return Event(self)

    def spawn(
        self, generator: Generator, name: Optional[str] = None
    ) -> Process:
        """Start a new coroutine process.

        The generator is stepped for the first time via a zero-delay
        callback, so spawning inside a running callback is safe.
        """
        process = Process(self, generator, name=name)
        self._processes.append(process)
        return process

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending callback.  Returns False when idle."""
        entry = self._queue.pop_live(None)
        if entry is None:
            return False
        handle = entry[2]
        if handle is not None:
            handle._popped = True
        self.now = entry[0]
        entry[3](*entry[4])
        return True

    def run(self, until: Optional[float] = None) -> None:
        """Run until the queue is empty, or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if later events remain queued (they stay queued and a subsequent
        ``run`` call may continue).
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        self._running = True
        pop = self._queue.pop_live
        try:
            while True:
                entry = pop(until)
                if entry is None:
                    break
                handle = entry[2]
                if handle is not None:
                    handle._popped = True
                self.now = entry[0]
                entry[3](*entry[4])
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._running = False

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) scheduled callbacks."""
        return len(self._queue)

    @property
    def queued_entries(self) -> int:
        """Total stored queue entries, cancelled ones included."""
        return self._queue.allocated

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={self.pending_events})"
