"""The discrete-event simulator core.

A :class:`Simulator` owns the virtual clock and a binary heap of scheduled
callbacks.  Callbacks scheduled for the same instant fire in the order they
were scheduled (FIFO tie-breaking by a monotonically increasing sequence
number), which makes every simulation deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.events import Event
from repro.sim.process import Process


class TimerHandle:
    """A cancellable handle for a scheduled callback.

    Returned by :meth:`Simulator.schedule`.  Calling :meth:`cancel` before
    the deadline prevents the callback from running; cancelling after it has
    fired is a harmless no-op.
    """

    __slots__ = ("time", "seq", "_fn", "_args", "_cancelled", "_sim", "_popped")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self._fn = fn
        self._args = args
        self._cancelled = False
        self._sim = sim
        self._popped = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._sim is not None and not self._popped:
            self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __lt__(self, other: "TimerHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "armed"
        return f"TimerHandle(t={self.time:.3f}, seq={self.seq}, {state})"


class Simulator:
    """Event-driven simulator with a microsecond-resolution virtual clock.

    Typical use::

        sim = Simulator()

        def worker():
            yield 5.0            # sleep 5 microseconds
            done.trigger("ok")

        done = sim.event()
        sim.spawn(worker(), name="worker")
        sim.run(until=100.0)
    """

    #: Compaction threshold: never compact below this many cancelled
    #: entries (tiny heaps are cheap to scan), and only once cancelled
    #: entries are the majority (amortizes the O(n) rebuild).
    COMPACT_MIN_CANCELLED = 64

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[TimerHandle] = []
        self._seq = 0
        self._running = False
        self._processes: list[Process] = []
        self._cancelled_in_heap = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` after ``delay`` microseconds of virtual time."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> TimerHandle:
        """Run ``fn(*args)`` at absolute virtual time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        handle = TimerHandle(time, self._seq, fn, args, sim=self)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def event(self) -> Event:
        """Create a fresh one-shot :class:`Event` bound to this simulator."""
        return Event(self)

    def spawn(
        self, generator: Generator, name: Optional[str] = None
    ) -> Process:
        """Start a new coroutine process.

        The generator is stepped for the first time via a zero-delay
        callback, so spawning inside a running callback is safe.
        """
        process = Process(self, generator, name=name)
        self._processes.append(process)
        return process

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next pending callback.  Returns False when idle."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            handle._popped = True
            if handle.cancelled:
                self._cancelled_in_heap -= 1
                continue
            if handle.time < self.now:  # pragma: no cover - defensive
                raise RuntimeError("event heap produced a past event")
            self.now = handle.time
            handle._fn(*handle._args)
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap is empty, or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until`` even
        if later events remain queued (they stay queued and a subsequent
        ``run`` call may continue).
        """
        if self._running:
            raise RuntimeError("Simulator.run is not reentrant")
        self._running = True
        try:
            if until is None:
                while self.step():
                    pass
                return
            while self._heap:
                head = self._peek()
                if head is None:
                    break
                if head.time > until:
                    break
                self.step()
            if self.now < until:
                self.now = until
        finally:
            self._running = False

    def _peek(self) -> Optional[TimerHandle]:
        while self._heap and self._heap[0].cancelled:
            handle = heapq.heappop(self._heap)
            handle._popped = True
            self._cancelled_in_heap -= 1
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # Cancelled-entry bookkeeping
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """A live heap entry was cancelled; compact when they dominate.

        Without compaction, watchdog/polling patterns that schedule and
        cancel repeatedly (e.g. a timeout raced against a completion)
        grow the heap without bound until the deadline finally pops.
        """
        self._cancelled_in_heap += 1
        if (
            self._cancelled_in_heap >= self.COMPACT_MIN_CANCELLED
            and self._cancelled_in_heap * 2 >= len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify the survivors.

        Safe for determinism: heap order is the total order (time, seq),
        so rebuilding cannot reorder live callbacks.
        """
        live = []
        for handle in self._heap:
            if handle.cancelled:
                handle._popped = True
            else:
                live.append(handle)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_in_heap = 0

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) callbacks in the heap."""
        return len(self._heap) - self._cancelled_in_heap

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self.now:.3f}, pending={self.pending_events})"
