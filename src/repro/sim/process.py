"""Generator-based coroutine processes.

A process wraps a Python generator.  The generator *yields* what it wants
to wait for and is resumed by the simulator when the wait is satisfied:

``yield 3.5``
    sleep for 3.5 microseconds of virtual time;
``yield event``
    wait for an :class:`~repro.sim.events.Event`; the resume value is the
    event's trigger value;
``yield AnyOf(sim, [a, b])``
    wait for the first of several events; the resume value is the member
    event that fired;
``yield process``
    join another process; the resume value is its return value.

A process may be killed asynchronously with :meth:`Process.kill`, which
throws :class:`ProcessKilled` into the generator.  Generators may catch it
to perform cleanup (and may even keep running — useful for modeling tasks
that survive a scheduler's protective action), but by default the exception
terminates them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional, Union

from repro.sim.events import AnyOf, Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator, TimerHandle


class ProcessKilled(Exception):
    """Thrown into a process generator when :meth:`Process.kill` is called."""

    def __init__(self, reason: str = "") -> None:
        super().__init__(reason)
        self.reason = reason


class ProcessCrashed(RuntimeError):
    """An exception escaped a process generator.

    Raised out of :meth:`Simulator.step` chained to the original error
    (``__cause__``), naming the failing process and the virtual time of the
    crash — without this, a traceback surfacing from a pool worker gives no
    hint of *which* experiment process died or when.
    """

    def __init__(self, name: str, at_us: float, original: BaseException) -> None:
        super().__init__(
            f"process {name!r} crashed at t={at_us:.3f}us: {original!r}"
        )
        self.process_name = name
        self.at_us = at_us


class Process:
    """A running coroutine inside a :class:`~repro.sim.engine.Simulator`."""

    def __init__(
        self, sim: "Simulator", generator: Generator, name: Optional[str] = None
    ) -> None:
        self.sim = sim
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self.alive = True
        self.killed = False
        self.done: Event = Event(sim, name=f"{self.name}.done")
        self.return_value: Any = None
        self._wait_token = 0
        self._pending_timer: Optional["TimerHandle"] = None
        #: (wait target, registered waiter pair) backing the current wait.
        self._pending_wait: Optional[tuple[Union[Event, AnyOf], tuple]] = None
        sim.schedule_now(self._resume, self._wait_token, None, None)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def kill(self, reason: str = "") -> None:
        """Throw :class:`ProcessKilled` into the generator.

        Safe to call at any point while the process is suspended; a no-op
        once the process has finished.  Every registration backing the
        current wait (timer, event callback, AnyOf membership, join) is
        withdrawn so long-lived events do not accumulate stale closures.
        """
        if not self.alive:
            return
        self._disarm()
        self._wait_token += 1  # invalidate any outstanding wakeups
        token = self._wait_token
        self.sim.schedule_now(self._resume, token, None, ProcessKilled(reason))

    # ------------------------------------------------------------------
    # Internal stepping machinery
    # ------------------------------------------------------------------
    def _resume(self, token: int, value: Any, exc: Optional[BaseException]) -> None:
        if token != self._wait_token or not self.alive:
            return  # stale wakeup from a cancelled wait
        self._wait_token += 1
        self._pending_timer = None
        self._pending_wait = None
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value, killed=False)
            return
        except ProcessKilled:
            self._finish(None, killed=True)
            return
        except Exception as error:
            self._finish(None, killed=False)
            raise ProcessCrashed(self.name, self.sim.now, error) from error
        # The hot path — plain virtual-time sleeps — needs no wakeup
        # registration at all, just a timer (inlined here: every resume
        # ends in an arm, and most arms are sleeps).
        if isinstance(target, (int, float)):
            self._pending_timer = self.sim.schedule(
                float(target), self._resume, self._wait_token, None, None
            )
        else:
            self._arm(target)

    def _arm(self, target: Any) -> None:
        """Register the wakeup corresponding to a non-numeric yield."""
        token = self._wait_token

        # Event waits register a (resume, token) pair instead of a wakeup
        # closure; the event's trigger path dispatches it directly.
        waiter = (self._resume, token)
        if isinstance(target, Event):
            target.add_waiter(waiter)
            self._pending_wait = (target, waiter)
        elif isinstance(target, AnyOf):
            target.proxy.add_waiter(waiter)
            self._pending_wait = (target, waiter)
        elif isinstance(target, Process):
            target.done.add_waiter(waiter)
            self._pending_wait = (target.done, waiter)
        else:
            raise TypeError(
                f"process {self.name!r} yielded unsupported value: {target!r}"
            )

    def _disarm(self) -> None:
        """Withdraw every registration backing the current wait."""
        if self._pending_timer is not None:
            self._pending_timer.cancel()
            self._pending_timer = None
        wait, self._pending_wait = self._pending_wait, None
        if wait is None:
            return
        target, callback = wait
        if isinstance(target, AnyOf):
            target.detach(callback)
        else:
            target.discard_callback(callback)

    def _finish(self, value: Any, killed: bool) -> None:
        self.alive = False
        self.killed = killed
        self.return_value = value
        self.done.trigger(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else ("killed" if self.killed else "done")
        return f"Process({self.name}, {state})"
