"""Timeline extraction from trace recordings.

Build per-task busy intervals from a :class:`~repro.sim.trace.TraceRecorder`
that captured ``request_submit`` / ``request_complete`` events, compute
utilization and queueing statistics, and render a coarse ASCII timeline —
the fastest way to *see* a scheduler's interleaving while debugging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.sim.trace import TraceRecorder

#: Trace kinds the timeline builder needs.
TIMELINE_KINDS = ("request_submit", "request_complete")


@dataclass(frozen=True)
class BusyInterval:
    """One request's service interval on the device."""

    task: str
    start_us: float
    end_us: float
    channel: int
    ref: int

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class Timeline:
    """Per-task busy intervals over an observation window."""

    start_us: float
    end_us: float
    intervals: list[BusyInterval] = field(default_factory=list)

    @property
    def span_us(self) -> float:
        return self.end_us - self.start_us

    def tasks(self) -> list[str]:
        return sorted({interval.task for interval in self.intervals})

    def busy_us(self, task: Optional[str] = None) -> float:
        return sum(
            interval.duration_us
            for interval in self.intervals
            if task is None or interval.task == task
        )

    def utilization(self, task: Optional[str] = None) -> float:
        """Busy fraction of the window (per task, or overall)."""
        if self.span_us <= 0:
            return float("nan")
        return self.busy_us(task) / self.span_us

    def share(self, task: str) -> float:
        """The task's fraction of all busy time."""
        total = self.busy_us()
        if total <= 0:
            return float("nan")
        return self.busy_us(task) / total


def build_timeline(
    trace: TraceRecorder,
    start_us: float = 0.0,
    end_us: Optional[float] = None,
) -> Timeline:
    """Pair submit/complete events into busy intervals.

    Service start is approximated as max(submit, previous completion on
    the device) — exact for a single-engine device, which is where
    timelines are most useful.
    """
    completes = [
        record
        for record in trace.records(kind="request_complete")
        if record.time >= start_us and (end_us is None or record.time <= end_us)
    ]
    submit_times: dict[tuple[int, int], float] = {}
    for record in trace.records(kind="request_submit"):
        key = (record.payload["channel"], record.payload["ref"])
        submit_times[key] = record.time
    window_end = end_us
    if window_end is None:
        window_end = max((record.time for record in completes), default=start_us)
    timeline = Timeline(start_us=start_us, end_us=window_end)
    for record in sorted(completes, key=lambda r: r.time):
        service = record.payload.get("service_us")
        end = record.time
        if service is not None:
            begin = end - service
        else:
            key = (record.payload["channel"], record.payload["ref"])
            begin = submit_times.get(key, end)
        timeline.intervals.append(
            BusyInterval(
                task=record.payload["task"],
                start_us=max(begin, start_us),
                end_us=end,
                channel=record.payload["channel"],
                ref=record.payload["ref"],
            )
        )
    return timeline


def render_ascii_timeline(timeline: Timeline, width: int = 80) -> str:
    """One row per task; each column is span/width µs; '#' marks busy."""
    if width < 10:
        raise ValueError("width must be at least 10")
    tasks = timeline.tasks()
    if not tasks or timeline.span_us <= 0:
        return "(empty timeline)"
    label_width = max(len(task) for task in tasks)
    cell_us = timeline.span_us / width
    rows = []
    for task in tasks:
        cells = [" "] * width
        for interval in timeline.intervals:
            if interval.task != task:
                continue
            first = int((interval.start_us - timeline.start_us) / cell_us)
            last = int((interval.end_us - timeline.start_us) / cell_us)
            for column in range(max(first, 0), min(last + 1, width)):
                cells[column] = "#"
        utilization = timeline.utilization(task)
        rows.append(
            f"{task.ljust(label_width)} |{''.join(cells)}| "
            f"{100 * utilization:.0f}%"
        )
    header = (
        f"{' ' * label_width}  {timeline.start_us:.0f}us"
        f"{' ' * max(1, width - 12)}{timeline.end_us:.0f}us"
    )
    return "\n".join([header] + rows)
