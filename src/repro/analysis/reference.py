"""The paper's published numbers as structured, checkable claims.

Each :class:`PaperClaim` captures one quantitative statement from the
paper with an acceptance band for the reproduction.  Bands are generous
where DESIGN.md documents a structural deviation, and tight where the
claim is the paper's headline.  `check_claim` evaluates a measured value;
`shape_report` renders a scoreboard.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperClaim:
    """One quantitative claim from the paper."""

    key: str
    section: str
    statement: str
    paper_value: float
    #: Acceptance band for the reproduction, inclusive.
    low: float
    high: float
    unit: str = "x"

    def accepts(self, measured: float) -> bool:
        return self.low <= measured <= self.high


#: The claims the benchmarks and EXPERIMENTS.md check, keyed by name.
PAPER: dict[str, PaperClaim] = {
    claim.key: claim
    for claim in [
        PaperClaim(
            key="direct_submit_cycles",
            section="3",
            statement="direct doorbell write costs 305 cycles",
            paper_value=305.0, low=305.0, high=305.0, unit="cycles",
        ),
        PaperClaim(
            key="section3_trap_gain_max",
            section="3",
            statement="direct access gains up to 35% over bare traps",
            paper_value=0.35, low=0.10, high=0.45, unit="fraction",
        ),
        PaperClaim(
            key="section3_driver_gain_max",
            section="3",
            statement="direct access gains up to 170% over traps w/ driver work",
            paper_value=1.70, low=0.80, high=2.20, unit="fraction",
        ),
        PaperClaim(
            key="fig5_engaged_small_slowdown",
            section="5.2",
            statement="engaged Timeslice noticeably slows small-request Throttle",
            paper_value=1.40, low=1.15, high=2.20,
        ),
        PaperClaim(
            key="fig4_dts_max_overhead",
            section="5.2",
            statement="Disengaged Timeslice standalone overhead <= ~2%",
            paper_value=1.02, low=1.00, high=1.08,
        ),
        PaperClaim(
            key="fig4_dfq_max_overhead",
            section="5.2",
            statement="Disengaged Fair Queueing standalone overhead <= ~5%",
            paper_value=1.05, low=1.00, high=1.12,
        ),
        PaperClaim(
            key="fig6_fair_pair_slowdown",
            section="5.3",
            statement="co-scheduled compute tasks see the expected ~2x",
            paper_value=2.0, low=1.5, high=3.2,
        ),
        PaperClaim(
            key="fig6_direct_dct_large_throttle",
            section="5.3",
            statement="direct access slows DCT >10x against large Throttle",
            paper_value=10.0, low=8.0, high=40.0,
        ),
        PaperClaim(
            key="fig7_dfq_mean_loss",
            section="5.3",
            statement="DFQ loses 4% on average vs direct access",
            paper_value=0.04, low=0.0, high=0.10, unit="fraction",
        ),
        PaperClaim(
            key="fig7_dfq_max_loss",
            section="5.3",
            statement="DFQ loses at most 18% vs direct access",
            paper_value=0.18, low=0.0, high=0.20, unit="fraction",
        ),
        PaperClaim(
            key="fig9_dfq_dct_benefits",
            section="5.4",
            statement="under DFQ, DCT benefits from a sleeping co-runner",
            paper_value=1.3, low=1.0, high=1.7,
        ),
        PaperClaim(
            key="fig10_dfq_loss_at_80pct",
            section="5.4",
            statement="DFQ's nonsaturating efficiency loss is essentially 0%",
            paper_value=0.0, low=0.0, high=0.15, unit="fraction",
        ),
        PaperClaim(
            key="dos_context_limit",
            section="6.3",
            statement="48 contexts exhaust the GTX670",
            paper_value=48.0, low=48.0, high=48.0, unit="contexts",
        ),
        PaperClaim(
            key="gears_anomaly_disparity",
            section="5.3",
            statement="glxgears completes at ~1/3 Throttle's rate under DFQ",
            paper_value=3.0, low=1.3, high=6.0,
        ),
    ]
}


def check_claim(key: str, measured: float) -> bool:
    """True if the measured value lands inside the claim's band."""
    return PAPER[key].accepts(measured)


def shape_report(measurements: dict[str, float]) -> str:
    """Scoreboard: one line per provided measurement vs its claim."""
    lines = ["paper-claim scoreboard:"]
    for key, measured in measurements.items():
        claim = PAPER.get(key)
        if claim is None:
            lines.append(f"  {key}: UNKNOWN CLAIM")
            continue
        verdict = "ok" if claim.accepts(measured) else "OUT OF BAND"
        lines.append(
            f"  {key}: measured {measured:.3g} {claim.unit} "
            f"(paper {claim.paper_value:.3g}, band "
            f"[{claim.low:.3g}, {claim.high:.3g}]) -> {verdict}"
        )
    return "\n".join(lines)
