"""ASCII chart rendering for experiment output.

The experiment drivers print tables; these helpers add quick horizontal
bar charts and sparkline-style series so results can be eyeballed in a
terminal without any plotting dependency (the environment is offline).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

_SPARK_LEVELS = " .:-=+*#%@"


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
    max_value: Optional[float] = None,
    marker: str = "#",
) -> str:
    """Horizontal bars, one per (label, value) row, scaled to ``width``.

    A ``max_value`` pins the scale (useful to compare charts); otherwise
    the largest value fills the width.
    """
    if width < 1:
        raise ValueError("width must be positive")
    if not rows:
        return "(no data)"
    values = [value for _, value in rows]
    if any(value < 0 for value in values):
        raise ValueError("bar_chart needs non-negative values")
    scale = max_value if max_value is not None else max(values)
    if scale <= 0:
        scale = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    for label, value in rows:
        filled = int(round(width * min(value, scale) / scale))
        bar = marker * filled
        overflow = "+" if value > scale else ""
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}{overflow}| "
            f"{value:.3g}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line intensity strip for a numeric series."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARK_LEVELS[len(_SPARK_LEVELS) // 2] * len(values)
    cells = []
    for value in values:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        cells.append(_SPARK_LEVELS[index])
    return "".join(cells)


def grouped_bar_chart(
    groups: Sequence[Tuple[str, Sequence[Tuple[str, float]]]],
    width: int = 40,
    unit: str = "",
) -> str:
    """Bar charts per group under a shared scale (e.g. one group per
    scheduler, one bar per co-runner)."""
    all_values = [
        value for _, rows in groups for _, value in rows
    ]
    if not all_values:
        return "(no data)"
    scale = max(all_values)
    sections = []
    for title, rows in groups:
        sections.append(title)
        sections.append(bar_chart(rows, width=width, unit=unit, max_value=scale))
    return "\n".join(sections)
