"""JSON persistence for experiment results.

Experiment drivers return lists of (frozen) dataclasses; this module
round-trips them to JSON so sweeps can be archived, compared across
seeds, or post-processed outside the simulator.  Nested dataclasses,
dicts, and NaN/inf are handled; loading returns plain dicts (the schema
is the dataclass's field names).
"""

from __future__ import annotations

import dataclasses
import json
import math
from pathlib import Path
from typing import Any, Union


def _encode(value: Any) -> Any:
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            **{
                field.name: _encode(getattr(value, field.name))
                for field in dataclasses.fields(value)
            },
        }
    if isinstance(value, dict):
        return {str(key): _encode(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, float):
        if math.isnan(value):
            return {"__float__": "nan"}
        if math.isinf(value):
            return {"__float__": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    return str(value)  # enums, Paths, and other leaf oddities


def _decode(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value) == {"__float__"}:
            return float(value["__float__"])
        return {key: _decode(item) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode(item) for item in value]
    return value


def save_results(
    results: Any, path: Union[str, Path], metadata: Union[dict, None] = None
) -> None:
    """Write experiment results (plus optional metadata) as JSON."""
    document = {"metadata": metadata or {}, "results": _encode(results)}
    Path(path).write_text(json.dumps(document, indent=2, allow_nan=False))


def load_results(path: Union[str, Path]) -> dict:
    """Read a document written by :func:`save_results`."""
    document = json.loads(Path(path).read_text())
    return {
        "metadata": document.get("metadata", {}),
        "results": _decode(document.get("results")),
    }
