"""Analysis utilities on top of the experiment drivers.

* :mod:`repro.analysis.reference` — the paper's published numbers as
  structured data, plus shape checks experiments/benchmarks share;
* :mod:`repro.analysis.timeline` — per-task busy intervals, utilization,
  waiting analysis, and ASCII timelines from trace recordings;
* :mod:`repro.analysis.persist` — JSON persistence for experiment results
  (dataclass-aware), so sweeps can be archived and diffed across runs.
"""

from repro.analysis.charts import bar_chart, grouped_bar_chart, sparkline
from repro.analysis.persist import load_results, save_results
from repro.analysis.reference import (
    PAPER,
    PaperClaim,
    check_claim,
    shape_report,
)
from repro.analysis.timeline import (
    BusyInterval,
    Timeline,
    build_timeline,
    render_ascii_timeline,
)

__all__ = [
    "BusyInterval",
    "PAPER",
    "PaperClaim",
    "Timeline",
    "bar_chart",
    "build_timeline",
    "check_claim",
    "grouped_bar_chart",
    "load_results",
    "render_ascii_timeline",
    "save_results",
    "shape_report",
    "sparkline",
]
