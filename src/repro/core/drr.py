"""Deficit round-robin — the GERM baseline (Section 2).

GERM [11] achieves fair-share GPU allocation with a deficit round-robin
scheduler [34] over per-task command queues.  Here each task's intercepted
requests wait in a FIFO; a scheduler process cycles among backlogged
tasks, granting each a quantum of device time per round and releasing
requests while the task's deficit covers their estimated size.  Every
request is intercepted and its completion watched — per-request kernel
cost on the fast path, like all pre-disengagement schedulers.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.core.base import SchedulerBase, register_scheduler
from repro.neon.stats import ObservedServiceMeter, RequestSizeEstimator
from repro.obs import events
from repro.sim.events import AnyOf

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.gpu.request import Request
    from repro.osmodel.task import Task
    from repro.sim.events import Event

DEFAULT_SIZE_GUESS_US = 100.0


@register_scheduler
class DeficitRoundRobin(SchedulerBase):
    """Per-request deficit round-robin over task FIFOs."""

    name = "drr"

    #: Device time granted per task per round (µs).  GERM favours small
    #: quanta: a large quantum makes think-time tasks wait out their
    #: peers' full bursts.
    quantum_us = 500.0

    #: Wait this long after a completion for the closed-loop task to
    #: resubmit before concluding its queue is empty (anticipatory
    #: scheduling; see EngagedFairQueueing.anticipation_us).
    anticipation_us = 10.0

    #: Completion-observation period (µs); see EngagedFairQueueing.
    completion_poll_us = 5.0

    def setup(self) -> None:
        # Fine-grained completion observation, as in engaged SFQ.
        self.kernel.polling.set_interval(self.completion_poll_us)
        self._queues: dict[int, deque] = {}
        self._deficit: dict[int, float] = {}
        self._released: set[int] = set()
        self._completion_events: dict[int, "Event"] = {}
        self._meter = ObservedServiceMeter()
        self._sizes: dict[int, RequestSizeEstimator] = {}
        self._activation: Optional["Event"] = None
        self._rr_index = 0
        self.rounds = 0
        self.sim.spawn(self._loop(), name=f"{self.name}-scheduler")

    # ------------------------------------------------------------------
    # Event interface
    # ------------------------------------------------------------------
    def on_channel_tracked(self, channel: "Channel") -> None:
        self.neon.engage_channel(channel)
        self._sizes[channel.channel_id] = RequestSizeEstimator()

    def on_fault(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> Optional["Event"]:
        if request.request_id in self._released:
            return None
        event = self.sim.event()
        queue = self._queues.setdefault(task.task_id, deque())
        queue.append((channel, request, event))
        if self._activation is not None and not self._activation.triggered:
            self._activation.trigger()
        return event

    def on_submit(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> None:
        self._released.discard(request.request_id)
        submit_time = self.sim.now
        done = self._completion_events.get(request.request_id)

        def on_completion(observed: "Channel") -> None:
            service = self._meter.measure(
                observed.channel_id, submit_time, self.sim.now
            )
            estimator = self._sizes.get(observed.channel_id)
            if estimator is not None:
                estimator.record(service)
            self._deficit[task.task_id] = (
                self._deficit.get(task.task_id, 0.0) - service
            )
            if done is not None and not done.triggered:
                done.trigger()

        self.kernel.polling.watch(channel, request.ref, on_completion)

    def on_task_exit(self, task: "Task") -> None:
        super().on_task_exit(task)
        for channel, request, event in self._queues.pop(task.task_id, ()):  # noqa: B007
            self._released.add(request.request_id)
            if not event.triggered:
                event.trigger()
        self._deficit.pop(task.task_id, None)

    # ------------------------------------------------------------------
    # The round-robin loop
    # ------------------------------------------------------------------
    def _estimate(self, channel: "Channel") -> float:
        estimator = self._sizes.get(channel.channel_id)
        if estimator is None or estimator.mean is None:
            return DEFAULT_SIZE_GUESS_US
        return estimator.mean

    def _backlogged(self) -> list["Task"]:
        return [
            task
            for task in self.managed_tasks
            if task.alive and self._queues.get(task.task_id)
        ]

    def _loop(self):
        while True:
            backlogged = self._backlogged()
            if not backlogged:
                self._activation = self.sim.event()
                yield self._activation
                self._activation = None
                continue
            self.rounds += 1
            task = backlogged[self._rr_index % len(backlogged)]
            self._rr_index += 1
            deficit = self._deficit.get(task.task_id, 0.0) + self.quantum_us
            self._deficit[task.task_id] = deficit
            yield from self._serve(task)
            if not self._queues.get(task.task_id):
                # An emptied queue forfeits its leftover deficit (DRR rule).
                self._deficit[task.task_id] = 0.0

    def _serve(self, task: "Task"):
        queue = self._queues.get(task.task_id)
        while queue and task.alive:
            channel, request, event = queue[0]
            if self._estimate(channel) > self._deficit.get(task.task_id, 0.0):
                break
            queue.popleft()
            done = self.sim.event()
            self._completion_events[request.request_id] = done
            self._released.add(request.request_id)
            self.kernel.metrics.inc("releases", task.name)
            trace = self.kernel.trace
            if trace.enabled:
                trace.emit(
                    self.sim.now, self.name, events.REQUEST_RELEASED,
                    task=task.name, channel=channel.channel_id,
                )
            if not event.triggered:
                event.trigger()
            deadline = self.sim.event()
            timer = self.sim.schedule(self.costs.max_request_us, deadline.trigger)
            first = yield AnyOf(self.sim, [done, deadline])
            self._completion_events.pop(request.request_id, None)
            if first is done:
                timer.cancel()
                # Give the task a beat to resubmit so its deficit can be
                # spent on consecutive requests (closed-loop anticipation).
                yield self.anticipation_us
            else:
                self.kernel.kill_task(
                    task, "request exceeded the documented maximum run time"
                )
                return
