"""Timeslice with overuse control — the fully engaged scheduler (§3.1).

A token circulates among managed tasks; only the holder's requests are
allowed through, and *every* request is intercepted (all register pages
stay protected at all times).  At each slice boundary the scheduler waits
for the holder's outstanding requests to drain, charges the excess to the
holder's overuse ledger, and kills the holder if a request appears to run
away.  Fairness is guaranteed; the price is per-request interception cost
and non-work-conserving idling when the holder has no work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.base import SchedulerBase, register_scheduler
from repro.core.overuse import OveruseLedger
from repro.obs import events

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.gpu.request import Request
    from repro.osmodel.task import Task
    from repro.sim.events import Event


@register_scheduler
class TimesliceScheduler(SchedulerBase):
    """Token-based timeslicing with per-request interception."""

    name = "timeslice"

    def setup(self) -> None:
        self.token_holder: Optional["Task"] = None
        self.overuse = OveruseLedger(self.costs.timeslice_us)
        self._waiters: dict[int, list["Event"]] = {}
        self._rr_index = 0
        self._activation: Optional["Event"] = None
        self.slices_granted = 0
        self._slice_started = 0.0
        self.sim.spawn(self._loop(), name=f"{self.name}-scheduler")

    # ------------------------------------------------------------------
    # Event interface
    # ------------------------------------------------------------------
    def on_channel_tracked(self, channel: "Channel") -> None:
        self.neon.engage_channel(channel)  # engaged: intercept everything
        if self.neon.preemption_available and channel.task is not self.token_holder:
            self.neon.mask_channel(channel)  # park until the task's next slice
        if self._activation is not None and not self._activation.triggered:
            self._activation.trigger()

    def on_fault(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> Optional["Event"]:
        if task is self.token_holder:
            return None
        event = self.sim.event()
        self._waiters.setdefault(task.task_id, []).append(event)
        return event

    def on_task_exit(self, task: "Task") -> None:
        super().on_task_exit(task)
        self.overuse.forget(task)
        if task is self.token_holder:
            self.token_holder = None
        self._release_waiters(task)

    # ------------------------------------------------------------------
    # Token machinery
    # ------------------------------------------------------------------
    def _release_waiters(self, task: "Task") -> None:
        for event in self._waiters.pop(task.task_id, []):
            if not event.triggered:
                event.trigger()

    def _pick(self) -> Optional["Task"]:
        """Round-robin over managed tasks, honoring overuse skips."""
        candidates = [task for task in self.managed_tasks if task.alive]
        if not candidates:
            return None
        for _ in range(len(candidates)):
            task = candidates[self._rr_index % len(candidates)]
            self._rr_index += 1
            if self.overuse.should_skip(task):
                continue
            if self.watchdog.is_quarantined(task):
                # Degraded after an undrainable slice: don't hand the
                # token back until nothing else is runnable.
                continue
            return task
        # Everyone owes at least a slice; after deducting above, just take
        # the next in order rather than idling the device forever.
        task = candidates[self._rr_index % len(candidates)]
        self._rr_index += 1
        return task

    def _grant(self, task: "Task") -> None:
        self.token_holder = task
        self.slices_granted += 1
        self._slice_started = self.sim.now
        self.kernel.metrics.inc("token_passes", task.name)
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, events.TOKEN_PASS,
                task=task.name, slice=self.slices_granted,
            )
        if self.neon.preemption_available:
            self.neon.unmask_task(task)  # reinstate on the runlist
        self._release_waiters(task)

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    def _loop(self):
        while True:
            task = self._pick()
            if task is None:
                self._activation = self.sim.event()
                yield self._activation
                self._activation = None
                continue
            yield self.costs.page_flip_us  # token-pass bookkeeping
            self._grant(task)
            yield self.costs.timeslice_us
            self.token_holder = None
            yield from self._settle_slice(task)
            # The slice (plus any drain excess) was the task's exclusive
            # interval; attribute it for the streaming share windows.
            self.emit_share_sample(task, self.sim.now - self._slice_started)
            # Slice settled and the holder drained: an engagement
            # boundary (fleet migration / re-weighting hooks).
            if self.boundary_hooks:
                yield from self.run_boundary_hooks()

    def _settle_slice(self, task: "Task"):
        """End-of-slice: drain the holder, charge overuse, kill runaways.

        With hardware preemption (§6.2), in-flight work is saved and the
        task's channels parked instead: no drain wait, no overuse, and
        requests of arbitrary length — including infinite loops — are
        tolerated rather than killed.
        """
        if self.neon.preemption_available:
            self.neon.preempt_task(task)
            self.neon.mask_task(task)
            return
        slice_end = self.sim.now
        channels = self.neon.channels_of(task)
        if not channels:
            return
        result = yield from self.watchdog.drain_task(task, channels)
        if not result.drained:
            # The watchdog killed, quarantined, or gave up on the holder;
            # either way there is nothing to charge.
            return
        excess = self.sim.now - slice_end
        self.overuse.charge(task, excess)
        self.kernel.metrics.inc("overuse_charged_us", task.name, excess)
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, events.OVERUSE_CHARGE,
                task=task.name, excess_us=excess,
            )
