"""Credit scheduler — the Gdev baseline (Section 2).

Gdev [20] realizes fairness with a non-preemptive variant of Xen's Credit
scheduler: each task holds a credit balance replenished periodically in
proportion to its share; a task with positive credit submits freely, a
task that has exhausted its credit blocks until the next replenishment.
Being non-preemptive, a large request may overdraw the balance; the debt
is repaid out of future replenishments.  Every request is intercepted and
its completion watched (per-request engagement).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.base import SchedulerBase, register_scheduler
from repro.neon.stats import ObservedServiceMeter
from repro.obs import events

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.gpu.request import Request
    from repro.osmodel.task import Task
    from repro.sim.events import Event


@register_scheduler
class CreditScheduler(SchedulerBase):
    """Non-preemptive credit-based fair sharing."""

    name = "credit"

    #: Replenishment period (µs).
    period_us = 10_000.0
    #: Maximum banked credit, as a multiple of one period's share.
    bank_cap_periods = 2.0

    def setup(self) -> None:
        # Fine-grained completion observation, as in engaged SFQ.
        self.kernel.polling.set_interval(self.costs.sampling_poll_interval_us)
        self._credit: dict[int, float] = {}
        self._waiters: dict[int, list["Event"]] = {}
        self._meter = ObservedServiceMeter()
        self.replenishments = 0
        self.sim.spawn(self._replenisher(), name=f"{self.name}-scheduler")

    # ------------------------------------------------------------------
    # Event interface
    # ------------------------------------------------------------------
    def on_channel_tracked(self, channel: "Channel") -> None:
        self.neon.engage_channel(channel)
        self._credit.setdefault(channel.task.task_id, 0.0)

    def on_fault(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> Optional["Event"]:
        if self._credit.get(task.task_id, 0.0) > 0.0:
            return None
        self.kernel.metrics.inc("denials", task.name)
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, events.DENIAL,
                task=task.name, lag_us=-self._credit.get(task.task_id, 0.0),
            )
        event = self.sim.event()
        self._waiters.setdefault(task.task_id, []).append(event)
        return event

    def on_submit(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> None:
        submit_time = self.sim.now

        def on_completion(observed: "Channel") -> None:
            service = self._meter.measure(
                observed.channel_id, submit_time, self.sim.now
            )
            self._credit[task.task_id] = (
                self._credit.get(task.task_id, 0.0) - service
            )

        self.kernel.polling.watch(channel, request.ref, on_completion)

    def on_task_exit(self, task: "Task") -> None:
        super().on_task_exit(task)
        self._credit.pop(task.task_id, None)
        for event in self._waiters.pop(task.task_id, []):
            if not event.triggered:
                event.trigger()

    # ------------------------------------------------------------------
    # Replenishment
    # ------------------------------------------------------------------
    def _replenisher(self):
        while True:
            yield self.period_us
            sharers = [task for task in self.managed_tasks if task.alive]
            if not sharers:
                continue
            self.replenishments += 1
            share = self.period_us / len(sharers)
            cap = self.bank_cap_periods * share
            for task in sharers:
                balance = self._credit.get(task.task_id, 0.0) + share
                self._credit[task.task_id] = min(balance, cap)
                if self._credit[task.task_id] > 0.0:
                    for event in self._waiters.pop(task.task_id, []):
                        if not event.triggered:
                            event.trigger()
