"""Disengaged Timeslice (§3.2).

Same token-based fairness as :class:`~repro.core.timeslice.TimesliceScheduler`,
but the token holder's register pages are *unprotected* for the duration of
its slice — its requests flow at direct-access speed.  The kernel
re-engages at slice boundaries: protect everything, scan the in-memory
structures for the last submitted reference numbers, and poll the
reference counters until the holder drains (the post-re-engagement status
update of Section 4).  Overuse control and runaway-kill protection are
identical to the engaged variant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.base import register_scheduler
from repro.core.timeslice import TimesliceScheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel


@register_scheduler
class DisengagedTimeslice(TimesliceScheduler):
    """Timeslice scheduling with direct access inside each slice."""

    name = "disengaged-timeslice"

    def on_channel_tracked(self, channel: "Channel") -> None:
        # Channels of the current holder may appear mid-slice; they get
        # direct access immediately, everyone else is intercepted.
        if channel.task is self.token_holder:
            self.neon.disengage_channel(channel)
        else:
            self.neon.engage_channel(channel)
            if self.neon.preemption_available:
                self.neon.mask_channel(channel)
        if self._activation is not None and not self._activation.triggered:
            self._activation.trigger()

    def _loop(self):
        while True:
            task = self._pick()
            if task is None:
                self._activation = self.sim.event()
                yield self._activation
                self._activation = None
                continue
            # Disengage the new holder: page-table updates to restore its
            # direct mappings (everyone else is already protected).
            flips = self.neon.disengage_task(task)
            yield self.costs.page_flip_us + self.neon.flip_cost(flips)
            self._grant(task)
            yield self.costs.timeslice_us
            # Re-engage: protect every register page, then settle accounts.
            self.token_holder = None
            flips = self.neon.engage_all()
            yield self.neon.flip_cost(flips)
            yield from self._settle_slice(task)
            self.emit_share_sample(task, self.sim.now - self._slice_started)
            # Everyone re-engaged and the holder settled: an engagement
            # boundary (fleet migration / re-weighting hooks).
            if self.boundary_hooks:
                yield from self.run_boundary_hooks()
