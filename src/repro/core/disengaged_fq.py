"""Disengaged Fair Queueing (§3.3) — the paper's flagship scheduler.

The scheduler alternates between long disengaged **free-run** periods
(direct device access for every admitted task) and short **engagement
episodes**.  Each episode (Figure 3):

1. *Barrier*: protect every register page so no new request slips in.
2. *Drain*: poll reference counters until outstanding requests finish;
   a drain timeout identifies runaway requests and kills the offender.
3. *Sampling*: each task active in the preceding free-run gets a brief
   exclusive window with fully intercepted requests, yielding per-channel
   average request-size estimates (skipped by the vendor-statistics
   variant below).
4. *Virtual-time maintenance*: per-task virtual times advance by their
   estimated usage of the last interval; the system virtual time advances
   to the oldest active task's time; inactive tasks are pulled forward.
5. *Decision*: tasks ahead of the system virtual time by at least the
   upcoming interval's length are denied access (their pages stay
   protected); everyone else free-runs.

**The usage estimator and its deliberate flaw.**  Lacking hardware
statistics, usage during a free-run is estimated as the interval length
split *proportionally to per-task average request size* across active
tasks — i.e. assuming the device cycles round-robin among active channels
(Section 3.3, "From model to prototype").  This assumption holds for
single-queue compute workloads (making DFQ fair exactly where the paper is
fair) and breaks for graphics and multi-channel tasks (reproducing the
paper's glxgears anomaly and oclParticles unfairness).
:class:`DisengagedFairQueueingHW` replaces the estimator with
vendor-provided statistics, the fix the paper recommends for production.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.base import SchedulerBase, register_scheduler
from repro.core.virtual_time import VirtualTimeTable
from repro.neon.stats import ChannelKind
from repro.obs import events
from repro.sim.events import AnyOf

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.gpu.request import Request
    from repro.osmodel.task import Task
    from repro.sim.events import Event

#: Request-size prior (µs) for channels never yet sampled.
DEFAULT_SIZE_GUESS_US = 100.0


class _SamplingWindow:
    """Per-window observation state (kept per window so late polling
    callbacks from a previous window cannot contaminate the next)."""

    def __init__(self, scheduler: "DisengagedFairQueueing", task: "Task",
                 target_requests: int) -> None:
        self.scheduler = scheduler
        self.task = task
        self.target_requests = target_requests
        self.observed = 0
        self.usage_us = 0.0
        self.last_observed: dict[int, float] = {}
        self.last_activity = scheduler.sim.now
        self.done = scheduler.sim.event()
        self.closed = False

    def on_submit(self, channel: "Channel", request: "Request") -> None:
        submit_time = self.scheduler.sim.now
        self.last_activity = submit_time

        def on_completion(observed_channel: "Channel") -> None:
            self._record(observed_channel, submit_time)

        self.scheduler.kernel.polling.watch(channel, request.ref, on_completion)

    def _record(self, channel: "Channel", submit_time: float) -> None:
        if self.closed:
            # The fine-grained poller is gone; a late observation would be
            # quantized at the 1 ms pass and poison the size estimate.
            return
        now = self.scheduler.sim.now
        self.last_activity = now
        busy_since = max(submit_time, self.last_observed.get(channel.channel_id, 0.0))
        service = max(now - busy_since, 0.05)
        self.last_observed[channel.channel_id] = now
        self.scheduler.neon.record_sampled_service(channel, service)
        self.observed += 1
        self.usage_us += service
        if self.observed >= self.target_requests and not self.done.triggered:
            self.done.trigger()


@register_scheduler
class DisengagedFairQueueing(SchedulerBase):
    """Probabilistically fair, near-work-conserving disengaged scheduling."""

    name = "dfq"

    #: Set by :class:`DisengagedFairQueueingHW` to skip software sampling.
    uses_hw_stats = False

    def __init__(self, weights: Optional[dict[str, float]] = None) -> None:
        super().__init__()
        #: Task name -> relative share weight (weighted fair queueing): a
        #: weight-2 task is entitled to twice a weight-1 task's device
        #: time.  Unnamed tasks default to 1.0.
        self.share_weights = dict(weights or {})

    def setup(self) -> None:
        self.vt = VirtualTimeTable()
        self._waiters: dict[int, list["Event"]] = {}
        self._phase = "engage"
        self._allowed: set[int] = set()
        self._window: Optional[_SamplingWindow] = None
        self._activation: Optional["Event"] = None
        self._last_freerun_us = 0.0
        self._last_active_weights: dict[int, float] = {}
        self.episodes = 0
        self.denials = 0
        #: Per-episode decisions: (time, allowed count, denied count).
        self.decision_log: list[tuple[float, int, int]] = []
        #: Where scheduler time goes (for the overhead-breakdown study).
        self.time_breakdown = {
            "drain_wait_us": 0.0,
            "sampling_us": 0.0,
            "engagement_us": 0.0,
            "freerun_us": 0.0,
        }
        self.sim.spawn(self._loop(), name=f"{self.name}-scheduler")

    # ------------------------------------------------------------------
    # Event interface
    # ------------------------------------------------------------------
    def on_channel_tracked(self, channel: "Channel") -> None:
        # New channels start intercepted; they join the free-run rotation
        # at the next engagement decision (mid-free-run mappings are always
        # captured, Section 4).
        self.neon.engage_channel(channel)
        self.vt.ensure(channel.task.task_id)
        if self._activation is not None and not self._activation.triggered:
            self._activation.trigger()

    def on_fault(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> Optional["Event"]:
        window = self._window
        if window is not None and window.task is task:
            return None  # sampled task: allow and observe
        if self._phase == "freerun" and task.task_id in self._allowed:
            return None  # e.g. a channel mapped mid-free-run of an admitted task
        event = self.sim.event()
        self._waiters.setdefault(task.task_id, []).append(event)
        return event

    def on_submit(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> None:
        window = self._window
        if window is not None and window.task is task:
            window.on_submit(channel, request)

    def on_task_exit(self, task: "Task") -> None:
        super().on_task_exit(task)
        self.vt.forget(task.task_id)
        self._allowed.discard(task.task_id)
        self._release_waiters(task)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _release_waiters(self, task: "Task") -> None:
        for event in self._waiters.pop(task.task_id, []):
            if not event.triggered:
                event.trigger()

    def _task_weight(self, task: "Task", active_channels: list["Channel"]) -> float:
        """Round-robin usage proxy: active channel count × the task-level
        mean request size.

        The paper's prototype keeps "the request-size estimate across the
        two (or more) channels of every task" (Section 5.3) — a *per-task*
        average.  For single-queue tasks this equals the per-channel mean;
        for combined compute/graphics tasks the mean is dominated by
        whichever requests the sampling window saw most (usually the tiny
        compute ones), which is exactly why the estimate "becomes an
        invalid proxy of resource usage" for such tasks.
        """
        if not active_channels:
            return 0.0
        total = 0.0
        count = 0
        for channel in self.neon.channels_of(task):
            observation = self.neon.observation(channel)
            if observation.sizes.sample_count == 0:
                continue
            total += observation.sizes.mean * observation.sizes.sample_count
            count += observation.sizes.sample_count
        task_mean = total / count if count else DEFAULT_SIZE_GUESS_US
        return task_mean * len(active_channels)

    def _sample_target(self, task: "Task") -> int:
        """Requests to observe: tripled for combined compute+graphics tasks
        (the paper uses 96 instead of 32) to capture bimodal sizes."""
        kinds = {
            self.neon.observation(channel).channel_kind
            for channel in self.neon.channels_of(task)
        }
        if ChannelKind.GRAPHICS in kinds and len(kinds) > 1:
            return self.costs.sample_max_requests * 3
        return self.costs.sample_max_requests

    # ------------------------------------------------------------------
    # The engagement/free-run cycle
    # ------------------------------------------------------------------
    def _loop(self):
        while True:
            if not self.neon.live_channels():
                self._activation = self.sim.event()
                yield self._activation
                self._activation = None
                continue
            yield from self._episode()

    def _episode(self):
        self.episodes += 1
        self._phase = "engage"
        self._allowed = set()
        episode_start = self.sim.now
        trace = self.kernel.trace
        self.kernel.metrics.inc("episodes", self.name)
        if trace.enabled:
            trace.emit(
                episode_start, self.name, events.BARRIER_BEGIN,
                episode=self.episodes,
            )

        # 1. Barrier: stop new submissions everywhere.
        flips = self.neon.engage_all()
        yield self.neon.flip_cost(flips)
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, events.BARRIER_END,
                episode=self.episodes, flips=flips,
            )

        # 2. Drain, with runaway protection.
        yield from self._drain_all()

        # Barrier up and every channel drained: the only moment fleet
        # migration may commit and global re-weighting may land.
        if self.boundary_hooks:
            yield from self.run_boundary_hooks()

        # 3. Activity detection for the preceding interval (ring-buffer
        #    scans were just paid for by the drain).
        activity = self._detect_activity()
        active_tasks = [task for task in self.managed_tasks
                        if task.alive and activity.get(task.task_id)]

        # 4. Sampling runs (software statistics only).
        sampled_usage: dict[int, float] = {}
        if not self.uses_hw_stats:
            sampling_start = self.sim.now
            for task in list(active_tasks):
                if not task.alive:
                    continue
                usage = yield from self._sample_task(task)
                sampled_usage[task.task_id] = usage
            self.time_breakdown["sampling_us"] += self.sim.now - sampling_start

        # 5. Virtual-time maintenance and the denial decision (the paper's
        # three steps).  Note that charging each active task its full
        # round-robin *share* of the interval — rather than its true usage
        # — is what keeps a partially idle task from holding the system
        # virtual time back: unclaimed capacity is charged as if used,
        # the interval-granular analogue of rule 2's idle forfeiture.
        usage = self._estimate_usage(active_tasks, activity)
        for task in active_tasks:
            task_usage = usage.get(task.task_id, 0.0)
            task_usage += sampled_usage.get(task.task_id, 0.0)
            # Weighted fair queueing: virtual time advances by normalized
            # usage, so a weight-w task is entitled to w shares.
            self.vt.advance(
                task.task_id, task_usage / self.share_weights.get(task.name, 1.0)
            )
        self.vt.update_system([task.task_id for task in active_tasks])
        active_ids = {task.task_id for task in active_tasks}
        for task in self.managed_tasks:
            if task.alive and task.task_id not in active_ids:
                self.vt.lift_inactive(task.task_id)
        if trace.enabled:
            for task in active_tasks:
                task_usage = (usage.get(task.task_id, 0.0)
                              + sampled_usage.get(task.task_id, 0.0))
                trace.emit(
                    self.sim.now, self.name, events.VT_UPDATE,
                    task=task.name,
                    usage_us=task_usage,
                    vt=self.vt.get(task.task_id),
                    system_vt=self.vt.system_vt,
                )
                trace.emit(
                    self.sim.now, self.name, events.SHARE_SAMPLE,
                    task=task.name, usage_us=task_usage,
                    interval_us=self._last_freerun_us,
                )

        upcoming = self._freerun_length(len(active_tasks))
        denied: list["Task"] = []
        for task in self.managed_tasks:
            if not task.alive:
                continue
            if self.vt.lag(task.task_id) >= upcoming:
                denied.append(task)
                self.denials += 1
            else:
                self._allowed.add(task.task_id)
        # Never deny everyone: that would idle the device against pending
        # work; admit the least-ahead task instead.
        if not self._allowed and denied:
            least_ahead = min(denied, key=lambda t: self.vt.lag(t.task_id))
            denied.remove(least_ahead)
            self._allowed.add(least_ahead.task_id)
        for task in denied:
            self.kernel.metrics.inc("denials", task.name)
            if trace.enabled:
                trace.emit(
                    self.sim.now, self.name, events.DENIAL,
                    task=task.name, lag_us=self.vt.lag(task.task_id),
                )

        self.decision_log.append(
            (self.sim.now, len(self._allowed), len(denied))
        )

        # Mark engagement points for next interval's activity detection.
        for channel in self.neon.live_channels():
            self.neon.mark_engagement(channel)

        # 6. Free run.  Quarantined tasks (watchdog degradation) keep
        # their pages protected regardless of the fairness decision.
        self._phase = "freerun"
        flips = 0
        for task in self.managed_tasks:
            if task.alive and task.task_id in self._allowed:
                if self.watchdog.is_quarantined(task):
                    self._allowed.discard(task.task_id)
                    continue
                flips += self.neon.disengage_task(task)
        yield self.neon.flip_cost(flips)
        for task in self.managed_tasks:
            if task.alive and task.task_id in self._allowed:
                self._release_waiters(task)
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, events.FREERUN_START,
                allowed=sorted(self._allowed),
                denied=[task.name for task in denied],
                freerun_us=upcoming,
            )
        self.time_breakdown["engagement_us"] += self.sim.now - episode_start
        freerun_start = self.sim.now
        yield upcoming
        self._last_freerun_us = self.sim.now - freerun_start
        self.time_breakdown["freerun_us"] += self._last_freerun_us

    def _drain_all(self):
        # A stuck drain means some request exceeded the documented limit
        # — or, under injected faults, that the drain's observations lie.
        # The watchdog kills an attributable running culprit immediately
        # (and drains again so queued victims behind it survive), and
        # walks the retry/degrade/kill ladder for unattributable stalls.
        yield from self.watchdog.drain_all(self._charge_drain_wait)

    def _charge_drain_wait(self, waited_us: float) -> None:
        self.time_breakdown["drain_wait_us"] += waited_us

    def _detect_activity(self) -> dict[int, bool]:
        """Which tasks submitted work since the last engagement mark.

        Uses the reference numbers recovered by the drain's ring-buffer
        scans (``last_scanned_ref``): the barrier is up, so no submission
        can have slipped in after the scan and the scanned value is
        current.
        """
        activity: dict[int, bool] = {}
        for channel in self.neon.live_channels():
            observation = self.neon.observation(channel)
            advanced = observation.last_scanned_ref > observation.ref_at_last_engagement
            if advanced:
                activity[channel.task.task_id] = True
        return activity

    def _active_channels_of(self, task: "Task") -> list["Channel"]:
        channels = []
        for channel in self.neon.channels_of(task):
            observation = self.neon.observation(channel)
            if observation.last_scanned_ref > observation.ref_at_last_engagement:
                channels.append(channel)
        return channels

    def _estimate_usage(
        self, active_tasks: list["Task"], activity: dict[int, bool]
    ) -> dict[int, float]:
        """Split the last free-run interval proportionally to average
        request size across active tasks (the round-robin assumption)."""
        if self._last_freerun_us <= 0 or not active_tasks:
            return {}
        weights = {
            task.task_id: self._task_weight(task, self._active_channels_of(task))
            for task in active_tasks
        }
        total = sum(weights.values())
        if total <= 0:
            return {}
        return {
            task_id: self._last_freerun_us * weight / total
            for task_id, weight in weights.items()
        }

    def _freerun_length(self, active_count: int) -> float:
        """Free-run period: multiplier × the nominal engagement episode
        (one maximum sampling window per active task; §5.2's 25/50 ms)."""
        windows = max(active_count, 1)
        return self.costs.freerun_multiplier * windows * self.costs.sample_max_us

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample_task(self, task: "Task"):
        """Give ``task`` a brief exclusive, fully intercepted window and
        measure its request sizes.  Returns the task's observed usage."""
        window = _SamplingWindow(self, task, self._sample_target(task))
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, events.SAMPLE_WINDOW_BEGIN,
                task=task.name, target_requests=window.target_requests,
            )
        self._window = window
        poller = self.sim.spawn(self._fine_poll(), name="dfq-sampling-poller")
        self._release_waiters(task)

        deadline = self.sim.event()
        timer = self.sim.schedule(self.costs.sample_max_us, deadline.trigger)
        first = yield AnyOf(self.sim, [window.done, deadline])
        if first is window.done:
            timer.cancel()
        window.closed = True
        self._window = None
        poller.kill()

        # Drain the sampled task so the next window is exclusive too; the
        # watchdog kills a genuine runaway and rides out injected stalls.
        channels = self.neon.channels_of(task)
        if channels:
            yield from self.watchdog.drain_task(task, channels)
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, events.SAMPLE_WINDOW_END,
                task=task.name, observed=window.observed,
                usage_us=window.usage_us,
            )
        return window.usage_us

    def _fine_poll(self):
        """Prompt the polling thread at fine granularity while sampling,
        and end the window early if the sampled task has gone idle."""
        while True:
            yield self.costs.sampling_poll_interval_us
            self.kernel.polling.prompt()
            window = self._window
            if window is None or window.done.triggered:
                continue
            idle_for = self.sim.now - window.last_activity
            if idle_for >= self.costs.sample_idle_end_us and self._task_quiet(
                window.task
            ):
                window.done.trigger()

    def _task_quiet(self, task: "Task") -> bool:
        """Nothing outstanding on any of the task's channels.

        Submission counts are known exactly during sampling (every request
        faulted); completion state comes from the kernel-mapped reference
        counters.  Both observations live behind the interception layer.
        """
        return self.neon.task_quiet(task)


@register_scheduler
class DisengagedFairQueueingHW(DisengagedFairQueueing):
    """DFQ with vendor-provided usage statistics (§3.3/§6.1 ablation).

    Models hardware that exports per-task cumulative resource usage: the
    sampling phase disappears and the usage estimator reads exact per-task
    engine time.  This is the only scheduler allowed to touch the device's
    ground-truth accounting, standing in for the documented statistics
    interface the paper asks vendors to provide.
    """

    name = "dfq-hw"
    uses_hw_stats = True

    def setup(self) -> None:
        super().setup()
        self._usage_marks: dict[int, float] = {}

    def _estimate_usage(
        self, active_tasks: list["Task"], activity: dict[int, bool]
    ) -> dict[int, float]:
        device = self.kernel.device  # neonlint: allow[NEON102] §6.1 vendor-statistics ablation: the documented usage interface
        usage: dict[int, float] = {}
        for task in active_tasks:
            cumulative = device.task_usage(task)  # neonlint: allow[NEON102] §6.1 vendor-statistics ablation: the documented usage interface
            mark = self._usage_marks.get(task.task_id, 0.0)
            usage[task.task_id] = max(0.0, cumulative - mark)
            self._usage_marks[task.task_id] = cumulative
        return usage

    def _freerun_length(self, active_count: int) -> float:
        # No sampling windows: the nominal episode is a single barrier, so
        # the paper's 5x rule is applied to one maximum sampling window.
        return self.costs.freerun_multiplier * self.costs.sample_max_us
