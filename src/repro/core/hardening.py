"""Scheduler hardening: the drain watchdog.

The paper's schedulers already contain one protection reflex — a drain
that outlives ``max_request_us`` kills the runaway (Section 3.1).  That
reflex assumes the device itself is honest: reference counters advance
when work finishes, the polling thread runs on time, scans return
current values.  Fault injection (:mod:`repro.faults`) breaks exactly
those assumptions, and a scheduler that answers every contradictory
observation with a kill would execute well-behaved tasks for the
device's sins.

The :class:`DrainWatchdog` wraps every drain the TS/DTS/DFQ schedulers
perform and applies an escalation ladder driven *only* by information
observable through the interception interface:

1. **Attribute.**  A timed-out drain whose stuck work is attributable —
   the engine is currently executing a request of the very task being
   drained (:meth:`~repro.neon.interception.InterceptionManager.identify_running_task`,
   the documented §6.2 query) — is a genuine runaway: the culprit is
   killed immediately, byte-for-byte the pre-watchdog behavior.
2. **Retry.**  An *unattributable* timeout (the engine is idle or busy
   with someone else, yet counters claim outstanding work) can only mean
   the observations are wrong — a stalled counter write, a late polling
   pass, a stale scan.  The drain is retried up to
   ``costs.watchdog_max_retries`` times with the timeout multiplied by
   ``costs.watchdog_backoff`` each attempt; a retry that completes is a
   recovery.
3. **Degrade.**  When retries are exhausted, the offending task is
   quarantined: its channels are (re-)engaged and the scheduler keeps
   them engaged — every future submission is intercepted — instead of
   trusting the channel's counters again.  The episode settles without a
   full drain; the system stays live.
4. **Escalate.**  A task whose channels are still undrainable after a
   quarantined episode is killed — bounded misbehavior, guaranteed
   termination.

With no fault plan installed steps 2–4 are unreachable (an honest
timeout always has a running culprit on the drained channels), so
hardened schedulers replay identical trajectories — the same zero-cost
contract as tracing and injection.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.neon.barrier import DrainResult
from repro.obs import events

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.base import SchedulerBase
    from repro.gpu.channel import Channel
    from repro.osmodel.task import Task

#: Kill reason used by the pre-watchdog schedulers; the attributed
#: first-timeout kill keeps it so no-fault trajectories are unchanged.
RUNAWAY_REASON = "request exceeded the documented maximum run time"

#: Kill reason for the end of the escalation ladder.
UNRESPONSIVE_REASON = "channel unresponsive after watchdog retries"


class DrainWatchdog:
    """Bounded retry/degrade/kill supervision of scheduler drains."""

    def __init__(self, scheduler: "SchedulerBase") -> None:
        self.scheduler = scheduler
        self.kernel = scheduler.kernel
        self.sim = scheduler.sim
        self.neon = scheduler.neon
        self.costs = scheduler.costs
        #: Task ids currently degraded to engaged mode (strike one).
        self._quarantined: set[int] = set()
        self.detections = 0
        self.recoveries = 0
        self.escalations = 0
        self.retries = 0

    # ------------------------------------------------------------------
    # Scheduler queries
    # ------------------------------------------------------------------
    def is_quarantined(self, task: "Task") -> bool:
        """Whether the task has been degraded to always-engaged mode."""
        return task.task_id in self._quarantined

    # ------------------------------------------------------------------
    # Event/metric plumbing
    # ------------------------------------------------------------------
    @property
    def _source(self) -> str:
        return f"{self.scheduler.name}.watchdog"

    def _detect(self, task: "Task", waited_us: float) -> None:
        self.detections += 1
        self.kernel.metrics.inc("fault_detections", task.name)
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(self.sim.now, self._source, events.FAULT_DETECTED,
                       task=task.name, waited_us=waited_us)

    def _recover(self, task: "Task", action: str) -> None:
        self.recoveries += 1
        self.kernel.metrics.inc("fault_recoveries", task.name)
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(self.sim.now, self._source, events.FAULT_RECOVERED,
                       task=task.name, action=action)

    def _escalate(self, task: "Task", reason: str) -> None:
        self.escalations += 1
        self.kernel.metrics.inc("fault_escalations", task.name)
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(self.sim.now, self._source, events.FAULT_ESCALATED,
                       task=task.name, reason=reason)
        self.kernel.kill_task(task, reason)

    # ------------------------------------------------------------------
    # Supervised drains
    # ------------------------------------------------------------------
    def drain_task(
        self,
        task: "Task",
        channels: list["Channel"],
        charge_wait: Optional[Callable[[float], None]] = None,
    ):
        """Drain one task's channels under supervision (a generator).

        Returns a :class:`~repro.neon.barrier.DrainResult`; callers treat
        ``result.drained`` exactly as before.  Kills, retries, and
        quarantines happen inside.
        """
        result = yield from self._drain_once(channels, None, charge_wait)
        if result.drained:
            return result
        culprit = self.neon.identify_running_task()
        if culprit is task and task.alive:
            # The drained task's own request is still holding the engine
            # past the documented limit: a genuine runaway.
            self._detect(task, result.waited_us)
            self._escalate(task, RUNAWAY_REASON)
            return result
        # The counters claim outstanding work but the engine is not
        # running this task: contradictory observations — retry, then
        # degrade/escalate.
        self._detect(task, result.waited_us)
        result = yield from self._retry([task], channels, charge_wait)
        if result.drained:
            self._recover(task, "retry")
            return result
        yield from self._degrade_or_escalate([task])
        return result

    def drain_all(
        self, charge_wait: Optional[Callable[[float], None]] = None
    ):
        """Drain every live channel under supervision (a generator).

        Replicates the pre-watchdog Disengaged Fair Queueing loop for the
        attributable case — kill the running culprit and drain again so
        queued victims behind it survive — and applies the retry/degrade
        ladder when a timeout cannot be attributed to any running task.
        """
        for _ in range(len(self.scheduler.managed_tasks) + 1):
            result = yield from self._drain_once(None, None, charge_wait)
            if result.drained:
                return
            culprit = self.neon.identify_running_task()
            if culprit is not None and culprit.alive:
                self._detect(culprit, result.waited_us)
                self._escalate(culprit, RUNAWAY_REASON)
                continue
            offenders = self._offender_tasks(result)
            if not offenders:
                return
            for task in offenders:
                self._detect(task, result.waited_us)
            channels = [
                channel
                for task in offenders
                for channel in self.neon.channels_of(task)
            ]
            retried = yield from self._retry(offenders, channels, charge_wait)
            if retried.drained:
                for task in offenders:
                    self._recover(task, "retry")
                continue
            yield from self._degrade_or_escalate(offenders)
            return

    # ------------------------------------------------------------------
    # The ladder
    # ------------------------------------------------------------------
    def _drain_once(
        self,
        channels: Optional[list["Channel"]],
        timeout_us: Optional[float],
        charge_wait: Optional[Callable[[float], None]],
    ):
        result = yield from self.neon.drain(
            channels,
            timeout_us=timeout_us
            if timeout_us is not None
            else self.costs.max_request_us,
        )
        if charge_wait is not None:
            charge_wait(result.waited_us)
        return result

    def _retry(
        self,
        tasks: list["Task"],
        channels: list["Channel"],
        charge_wait: Optional[Callable[[float], None]],
    ):
        """Re-drain with backed-off timeouts; returns the last result."""
        result = DrainResult(False, [c for c in channels if not c.dead], 0.0)
        timeout = self.costs.max_request_us
        for attempt in range(1, self.costs.watchdog_max_retries + 1):
            timeout *= self.costs.watchdog_backoff
            self.retries += 1
            for task in tasks:
                self.kernel.metrics.inc("watchdog_retries", task.name)
            trace = self.kernel.trace
            if trace.enabled:
                trace.emit(self.sim.now, self._source, events.WATCHDOG_RETRY,
                           attempt=attempt, timeout_us=timeout,
                           tasks=[task.name for task in tasks])
            live = [channel for channel in channels if not channel.dead]
            result = yield from self._drain_once(live, timeout, charge_wait)
            if result.drained:
                return result
        return result

    def _degrade_or_escalate(self, tasks: Iterable["Task"]):
        """Strike one: quarantine to engaged mode.  Strike two: kill."""
        for task in sorted(tasks, key=lambda task: task.task_id):
            if not task.alive:
                continue
            if task.task_id in self._quarantined:
                self._escalate(task, UNRESPONSIVE_REASON)
                continue
            self._quarantined.add(task.task_id)
            flips = self.neon.engage_task(task)
            yield self.neon.flip_cost(flips)
            self._recover(task, "degrade")

    def _offender_tasks(self, result: "DrainResult") -> list["Task"]:
        """Distinct alive tasks behind a timed-out drain's offenders,
        sorted so trajectories stay reproducible (neonlint NEON204)."""
        tasks = {channel.task for channel in result.offenders}
        ordered = sorted(tasks, key=lambda task: task.task_id)
        return [task for task in ordered if task.alive]
