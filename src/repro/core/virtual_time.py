"""Virtual-time bookkeeping for fair queueing schedulers.

Implements the paper's probabilistically-updated per-task virtual time
(Section 3.3): each task carries a cumulative-usage surrogate; the
system-wide virtual time tracks the *oldest* virtual time among active
tasks, and inactive tasks are pulled forward so idle periods forfeit any
banked resource claim.
"""

from __future__ import annotations

from typing import Iterable


class VirtualTimeTable:
    """Per-task virtual times plus the system-wide virtual time."""

    def __init__(self) -> None:
        self._vt: dict[int, float] = {}
        self.system_vt = 0.0

    def ensure(self, task_id: int) -> float:
        """Register a task, starting it at the current system virtual time
        (a newcomer owes and is owed nothing)."""
        if task_id not in self._vt:
            self._vt[task_id] = self.system_vt
        return self._vt[task_id]

    def get(self, task_id: int) -> float:
        return self._vt.get(task_id, self.system_vt)

    def advance(self, task_id: int, usage_us: float) -> None:
        """Step 1: add an active task's resource use for the last interval."""
        if usage_us < 0:
            raise ValueError("usage must be non-negative")
        self.ensure(task_id)
        self._vt[task_id] += usage_us

    def update_system(self, active_ids: Iterable[int]) -> float:
        """Advance the system virtual time to the oldest active task's time.

        With no active tasks the system time is left unchanged.  The system
        virtual time never moves backwards.
        """
        candidates = [self.get(task_id) for task_id in active_ids]
        if candidates:
            self.system_vt = max(self.system_vt, min(candidates))
        return self.system_vt

    def lift_inactive(self, task_id: int) -> None:
        """Step 2: pull an inactive task forward to the system virtual time
        so it cannot hoard unused resources."""
        self.ensure(task_id)
        if self._vt[task_id] < self.system_vt:
            self._vt[task_id] = self.system_vt

    def lag(self, task_id: int) -> float:
        """How far ahead of the system virtual time a task is (µs)."""
        return self.get(task_id) - self.system_vt

    def forget(self, task_id: int) -> None:
        self._vt.pop(task_id, None)

    def __len__(self) -> int:
        return len(self._vt)
