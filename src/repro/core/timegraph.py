"""Reservation scheduling with posterior enforcement — the TimeGraph
baseline (Section 2).

TimeGraph [19] "supports fairness by penalizing overuse beyond a
reservation": requests are admitted optimistically, actual usage is
accounted afterwards, and a task found to have exceeded its reserved share
is blocked until its budget recovers.  Reservations here are fractions of
device time per accounting period; unnamed tasks split the unreserved
remainder evenly.  Like all pre-disengagement designs, every request is
intercepted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.base import SchedulerBase, register_scheduler
from repro.neon.stats import ObservedServiceMeter
from repro.obs import events

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.gpu.request import Request
    from repro.osmodel.task import Task
    from repro.sim.events import Event


@register_scheduler
class TimeGraphReservation(SchedulerBase):
    """Per-task reservations with posterior overuse penalties."""

    name = "timegraph"

    #: Accounting period (µs).
    period_us = 10_000.0

    #: Completion-observation period; see EngagedFairQueueing.
    completion_poll_us = 5.0

    #: Maximum debt, as a fraction of one period's reservation, before a
    #: task is penalized (posterior enforcement admits the request that
    #: crosses the line, then blocks).
    max_debt_fraction = 1.0

    def __init__(self, reservations: Optional[dict[str, float]] = None) -> None:
        super().__init__()
        #: Task name -> reserved fraction of device time.  Tasks not named
        #: share the remainder equally.
        self.reservations = dict(reservations or {})

    def setup(self) -> None:
        self.kernel.polling.set_interval(self.completion_poll_us)
        self._budget: dict[int, float] = {}
        self._waiters: dict[int, list["Event"]] = {}
        self._meter = ObservedServiceMeter()
        self.penalties = 0
        self.sim.spawn(self._replenisher(), name=f"{self.name}-scheduler")

    # ------------------------------------------------------------------
    # Shares
    # ------------------------------------------------------------------
    def share_of(self, task: "Task") -> float:
        """The task's reserved fraction of device time."""
        if task.name in self.reservations:
            return self.reservations[task.name]
        reserved = sum(
            self.reservations.get(peer.name, 0.0)
            for peer in self.managed_tasks
            if peer.alive
        )
        unreserved_tasks = sum(
            1
            for peer in self.managed_tasks
            if peer.alive and peer.name not in self.reservations
        )
        if unreserved_tasks == 0:
            return 0.0
        return max(0.0, 1.0 - reserved) / unreserved_tasks

    # ------------------------------------------------------------------
    # Event interface
    # ------------------------------------------------------------------
    def on_channel_tracked(self, channel: "Channel") -> None:
        self.neon.engage_channel(channel)
        self._budget.setdefault(channel.task.task_id, 0.0)

    def on_fault(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> Optional["Event"]:
        debt_limit = -self.max_debt_fraction * self.share_of(task) * self.period_us
        if self._budget.get(task.task_id, 0.0) > debt_limit:
            return None
        self.penalties += 1
        self.kernel.metrics.inc("denials", task.name)
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, events.DENIAL,
                task=task.name,
                lag_us=debt_limit - self._budget.get(task.task_id, 0.0),
            )
        event = self.sim.event()
        self._waiters.setdefault(task.task_id, []).append(event)
        return event

    def on_submit(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> None:
        submit_time = self.sim.now

        def on_completion(observed: "Channel") -> None:
            service = self._meter.measure(
                observed.channel_id, submit_time, self.sim.now
            )
            self._budget[task.task_id] = (
                self._budget.get(task.task_id, 0.0) - service
            )

        self.kernel.polling.watch(channel, request.ref, on_completion)

    def on_task_exit(self, task: "Task") -> None:
        super().on_task_exit(task)
        self._budget.pop(task.task_id, None)
        for event in self._waiters.pop(task.task_id, []):
            if not event.triggered:
                event.trigger()

    # ------------------------------------------------------------------
    # Budget replenishment
    # ------------------------------------------------------------------
    def _replenisher(self):
        while True:
            yield self.period_us
            for task in self.managed_tasks:
                if not task.alive:
                    continue
                grant = self.share_of(task) * self.period_us
                balance = self._budget.get(task.task_id, 0.0) + grant
                # Reservations do not bank across periods beyond one grant.
                self._budget[task.task_id] = min(balance, grant)
                debt_limit = -self.max_debt_fraction * grant
                if self._budget[task.task_id] > debt_limit:
                    for event in self._waiters.pop(task.task_id, []):
                        if not event.triggered:
                            event.trigger()
