"""Direct device access — the unmanaged baseline.

No page is ever protected; every submission is a bare MMIO write.  This is
today's default (Figure 1) and the performance reference every other
scheduler is compared against.  It provides no fairness: device time is
divided by the hardware's per-request round-robin, so whoever submits the
larger requests wins (Figure 6, leftmost column).
"""

from __future__ import annotations

from repro.core.base import SchedulerBase, register_scheduler


@register_scheduler
class DirectAccess(SchedulerBase):
    """The no-op scheduler: full direct access for everyone."""

    name = "direct"

    def on_channel_tracked(self, channel) -> None:
        self.neon.disengage_channel(channel)
