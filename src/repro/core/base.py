"""Scheduler base class and registry.

A scheduler is attached to a :class:`~repro.osmodel.kernel.Kernel` and from
then on receives the event-based interface of Section 3: task lifecycle,
channel activation, request faults (only while a channel is engaged), and
observed submissions.  All device knowledge flows through the scheduler's
:class:`~repro.neon.interception.InterceptionManager`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Type

from repro.core.hardening import DrainWatchdog
from repro.neon.interception import InterceptionManager
from repro.obs import events

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.gpu.request import Request
    from repro.osmodel.kernel import Kernel
    from repro.osmodel.task import Task
    from repro.sim.engine import Simulator
    from repro.sim.events import Event

#: Name → class map used by the experiment runner and the CLI.
scheduler_registry: dict[str, Type["SchedulerBase"]] = {}


def register_scheduler(cls: Type["SchedulerBase"]) -> Type["SchedulerBase"]:
    """Class decorator adding a scheduler to the registry."""
    scheduler_registry[cls.name] = cls
    return cls


class SchedulerBase:
    """Common scaffolding for all schedulers."""

    #: Registry key and display name.
    name = "base"

    def __init__(self) -> None:
        self.kernel: Optional["Kernel"] = None
        self.sim: Optional["Simulator"] = None
        self.neon: Optional[InterceptionManager] = None
        #: Tasks currently using the device (have live channels).
        self.managed_tasks: list["Task"] = []
        #: Engagement-boundary hooks (repro.fleet: migration commits,
        #: global re-weighting).  Each is a generator function taking the
        #: scheduler; it runs inside the engagement episode, after the
        #: drain, and may yield simulated time.  Empty list = zero cost.
        self.boundary_hooks: list = []

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, kernel: "Kernel") -> None:
        """Called by :meth:`Kernel.attach_scheduler`."""
        self.kernel = kernel
        self.sim = kernel.sim
        self.costs = kernel.costs
        self.neon = InterceptionManager(kernel)
        #: Drain supervision (retry/degrade/kill); see repro.core.hardening.
        self.watchdog = DrainWatchdog(self)
        self.setup()

    def setup(self) -> None:
        """Subclass hook: spawn scheduler processes, initialize state."""

    # ------------------------------------------------------------------
    # Task lifecycle
    # ------------------------------------------------------------------
    def on_task_start(self, task: "Task") -> None:
        """A task was created (it may not have channels yet)."""

    def on_task_exit(self, task: "Task") -> None:
        """A task exited or was killed; default drops it from management."""
        if task in self.managed_tasks:
            self.managed_tasks.remove(task)
        self.neon.release_task(task)

    def _manage(self, task: "Task") -> bool:
        """Add a task to the managed set; True if newly added."""
        if task in self.managed_tasks or not task.alive:
            return False
        self.managed_tasks.append(task)
        return True

    # ------------------------------------------------------------------
    # Channel lifecycle
    # ------------------------------------------------------------------
    def on_channel_active(self, channel: "Channel") -> None:
        """NEON discovery finished for a channel; track and decide its
        initial engagement."""
        self.neon.track(channel)
        self._manage(channel.task)
        self.on_channel_tracked(channel)

    def on_channel_tracked(self, channel: "Channel") -> None:
        """Subclass hook: set the channel's initial protection state."""

    # ------------------------------------------------------------------
    # Request events
    # ------------------------------------------------------------------
    def on_fault(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> Optional["Event"]:
        """A protected-page store faulted.

        Return ``None`` to let the request through, or an
        :class:`~repro.sim.events.Event` the task must wait on; the kernel
        re-invokes this method after the event fires, until it returns
        ``None``.
        """
        return None

    def on_submit(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> None:
        """An intercepted submission actually reached the device."""

    # ------------------------------------------------------------------
    # Engagement boundaries
    # ------------------------------------------------------------------
    def run_boundary_hooks(self):
        """Run registered engagement-boundary hooks (a generator).

        Called by the concrete schedulers at the one point per episode /
        slice where the submission barrier is up and every channel has
        drained — the only moment fleet migration may commit.  Call
        sites guard on ``self.boundary_hooks`` so the common case stays
        byte-identical.
        """
        for hook in list(self.boundary_hooks):
            yield from hook(self)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def emit_share_sample(
        self,
        task: "Task",
        usage_us: float,
        interval_us: Optional[float] = None,
    ) -> None:
        """Attribute ``usage_us`` of device time to ``task`` over the
        scheduling interval just settled.

        Emitted at engagement boundaries (episode settlement, slice end)
        so the streaming windows (:mod:`repro.obs.windows`) can integrate
        per-tenant shares online.  Free when tracing is off.
        """
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, events.SHARE_SAMPLE,
                task=task.name, usage_us=usage_us,
                interval_us=usage_us if interval_us is None else interval_us,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(tasks={len(self.managed_tasks)})"
