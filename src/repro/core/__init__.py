"""Schedulers — the paper's contribution and its baselines.

The paper's three schedulers:

* :class:`~repro.core.timeslice.TimesliceScheduler` — token-based
  timeslicing with overuse control; fully engaged (every request trapped).
* :class:`~repro.core.disengaged_timeslice.DisengagedTimeslice` — the token
  holder runs with direct device access; the kernel re-engages only at
  timeslice edges.
* :class:`~repro.core.disengaged_fq.DisengagedFairQueueing` — free-run
  direct access punctuated by engagement episodes (barrier, drain, sampling,
  virtual-time maintenance, denial decisions); probabilistic fairness with
  work-conserving behaviour.  The
  :class:`~repro.core.disengaged_fq.DisengagedFairQueueingHW` variant models
  vendor-provided usage statistics (Sections 3.3/6.1).

Baselines: :class:`~repro.core.direct.DirectAccess` (no OS management) and
the related-work per-request schedulers — start-time fair queueing
(:mod:`~repro.core.fair_queueing`), deficit round-robin à la GERM
(:mod:`~repro.core.drr`), and a Gdev-style credit scheduler
(:mod:`~repro.core.credit`).
"""

from repro.core.base import SchedulerBase, scheduler_registry
from repro.core.credit import CreditScheduler
from repro.core.direct import DirectAccess
from repro.core.disengaged_fq import (
    DisengagedFairQueueing,
    DisengagedFairQueueingHW,
)
from repro.core.disengaged_timeslice import DisengagedTimeslice
from repro.core.drr import DeficitRoundRobin
from repro.core.fair_queueing import EngagedFairQueueing
from repro.core.timegraph import TimeGraphReservation
from repro.core.timeslice import TimesliceScheduler
from repro.core.virtual_time import VirtualTimeTable

__all__ = [
    "CreditScheduler",
    "DeficitRoundRobin",
    "DirectAccess",
    "DisengagedFairQueueing",
    "DisengagedFairQueueingHW",
    "DisengagedTimeslice",
    "EngagedFairQueueing",
    "SchedulerBase",
    "TimeGraphReservation",
    "TimesliceScheduler",
    "VirtualTimeTable",
    "scheduler_registry",
]
