"""Overuse accounting shared by the timeslice schedulers (Section 3.1).

A task whose requests overrun the end of its timeslice is charged the
excess; once accrued overuse exceeds a full timeslice, the task's next
turn is skipped and one timeslice is deducted.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.osmodel.task import Task


class OveruseLedger:
    """Tracks accrued overuse per task and implements turn skipping."""

    def __init__(self, timeslice_us: float) -> None:
        if timeslice_us <= 0:
            raise ValueError("timeslice must be positive")
        self.timeslice_us = timeslice_us
        self._accrued: dict[int, float] = {}

    def charge(self, task: "Task", excess_us: float) -> None:
        """Add excess execution time observed past a slice boundary.

        A NaN or infinite charge (a hung drain measured against a
        poisoned clock, an ``inf``-sized runaway) would poison the ledger
        permanently — ``accrued`` never recovers from NaN and an infinite
        balance skips the task forever — so it is rejected here at the
        boundary.
        """
        if math.isnan(excess_us) or math.isinf(excess_us):
            raise ValueError(
                f"overuse charge must be finite, got {excess_us}"
            )
        if excess_us < 0:
            raise ValueError("overuse charge must be non-negative")
        self._accrued[task.task_id] = self.accrued(task) + excess_us

    def accrued(self, task: "Task") -> float:
        return self._accrued.get(task.task_id, 0.0)

    def should_skip(self, task: "Task") -> bool:
        """True if the task's next turn must be skipped.

        Deducts one timeslice from the accrued overuse when skipping, per
        the paper: "we skip the task's next turn to hold the token, and
        subtract a timeslice from its accrued overuse."
        """
        accrued = self.accrued(task)
        if accrued >= self.timeslice_us:
            self._accrued[task.task_id] = accrued - self.timeslice_us
            return True
        return False

    def forget(self, task: "Task") -> None:
        self._accrued.pop(task.task_id, None)
