"""Engaged start-time fair queueing (SFQ) — a related-work baseline.

Implements the classic fair queueing discipline the paper's Section 2
cites (start-tag ordering [14, 18, 33]) at per-request granularity: every
register page stays protected, every request is tagged with

* ``start = max(system_virtual_time, last_finish_tag_of_task)``
* ``finish = start + estimated_size``

and dispatch is ordered by start tag with a bounded number of outstanding
requests.  This gives strong fairness but pays the full interception cost
on the fast path — the overhead the disengaged designs eliminate.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Optional

from repro.core.base import SchedulerBase, register_scheduler
from repro.neon.stats import ObservedServiceMeter, RequestSizeEstimator
from repro.obs import events

if TYPE_CHECKING:  # pragma: no cover
    from repro.gpu.channel import Channel
    from repro.gpu.request import Request
    from repro.osmodel.task import Task
    from repro.sim.events import Event

#: Size prior (µs) for channels with no observations yet.
DEFAULT_SIZE_GUESS_US = 100.0


@register_scheduler
class EngagedFairQueueing(SchedulerBase):
    """Per-request start-time fair queueing."""

    name = "engaged-fq"

    #: Maximum requests outstanding on the device at once.  One at a time
    #: gives the scheduler full dispatch-order control (the throughput
    #: price of per-request scheduling the paper criticizes).
    depth = 1

    #: Anticipation delay before dispatching after a completion: a
    #: closed-loop task resubmits a few µs after its request finishes, and
    #: without a short wait the dispatcher would always pick from stale
    #: backlog (degenerating to alternation).  Classic anticipatory
    #: scheduling; it also charges the per-request schedulers their real
    #: idleness cost.
    anticipation_us = 10.0

    #: Completion-observation period (µs) — standing in for the interrupt
    #: path the driver-level schedulers the paper cites rely on.
    completion_poll_us = 5.0

    def setup(self) -> None:
        # Per-request schedulers need fine completion observation (the role
        # interrupts play in GERM/TimeGraph); pay the CPU cost.
        self.kernel.polling.set_interval(self.completion_poll_us)
        self.system_vt = 0.0
        self._last_finish: dict[int, float] = {}
        #: Min-heap of (start_tag, tie, task, request, wake event).
        self._pending: list = []
        self._tie = itertools.count()
        self._released: set[int] = set()
        self._outstanding = 0
        self._meter = ObservedServiceMeter()
        self._sizes: dict[int, RequestSizeEstimator] = {}
        self.dispatched_requests = 0

    # ------------------------------------------------------------------
    # Event interface
    # ------------------------------------------------------------------
    def on_channel_tracked(self, channel: "Channel") -> None:
        self.neon.engage_channel(channel)
        self._sizes[channel.channel_id] = RequestSizeEstimator()

    def on_fault(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> Optional["Event"]:
        if request.request_id in self._released:
            return None  # tagged earlier, dispatched from the pending heap
        start_tag = max(self.system_vt, self._last_finish.get(task.task_id, 0.0))
        size = self._estimate(channel)
        self._last_finish[task.task_id] = start_tag + size
        if self._outstanding < self.depth and not self._pending:
            self._release(task, request, start_tag)
            return None
        event = self.sim.event()
        heapq.heappush(
            self._pending, (start_tag, next(self._tie), task, request, event)
        )
        return event

    def on_submit(
        self, task: "Task", channel: "Channel", request: "Request"
    ) -> None:
        self._released.discard(request.request_id)
        submit_time = self.sim.now

        def on_completion(observed: "Channel") -> None:
            service = self._meter.measure(
                observed.channel_id, submit_time, self.sim.now
            )
            estimator = self._sizes.get(observed.channel_id)
            if estimator is not None:
                estimator.record(service)
            self._on_request_done()

        self.kernel.polling.watch(channel, request.ref, on_completion)

    def on_task_exit(self, task: "Task") -> None:
        super().on_task_exit(task)
        self._last_finish.pop(task.task_id, None)
        # Wake the task's queued requests so their processes can unwind.
        remaining = []
        for entry in self._pending:
            if entry[2] is task:
                self._released.add(entry[3].request_id)
                if not entry[4].triggered:
                    entry[4].trigger()
            else:
                remaining.append(entry)
        if len(remaining) != len(self._pending):
            self._pending = remaining
            heapq.heapify(self._pending)

    # ------------------------------------------------------------------
    # Dispatch machinery
    # ------------------------------------------------------------------
    def _estimate(self, channel: "Channel") -> float:
        estimator = self._sizes.get(channel.channel_id)
        if estimator is None or estimator.mean is None:
            return DEFAULT_SIZE_GUESS_US
        return estimator.mean

    def _release(self, task: "Task", request: "Request", start_tag: float) -> None:
        self._released.add(request.request_id)
        self._outstanding += 1
        self.dispatched_requests += 1
        self.system_vt = max(self.system_vt, start_tag)
        self.kernel.metrics.inc("releases", task.name)
        trace = self.kernel.trace
        if trace.enabled:
            trace.emit(
                self.sim.now, self.name, events.REQUEST_RELEASED,
                task=task.name, start_tag=start_tag,
            )

    def _on_request_done(self) -> None:
        self._outstanding = max(0, self._outstanding - 1)
        self.sim.schedule(self.anticipation_us, self._dispatch_pending)

    def _dispatch_pending(self) -> None:
        while self._pending and self._outstanding < self.depth:
            start_tag, _tie, task, request, event = heapq.heappop(self._pending)
            self._release(task, request, start_tag)
            if not event.triggered:
                event.trigger()
