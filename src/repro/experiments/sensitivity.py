"""Configuration-parameter sensitivity (§5.2).

The paper states "NEON is not particularly sensitive to configuration
parameters.  We tested different settings, but found the above to be
sufficient."  This study sweeps the three main knobs — polling period,
timeslice length, sampling request budget — and shows fairness and
overhead stay within narrow bands around the defaults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import build_env, run_workloads, solo_baseline
from repro.metrics.tables import format_table
from repro.osmodel.costs import CostParams
from repro.workloads.apps import make_app
from repro.workloads.throttle import Throttle


@dataclass(frozen=True)
class SensitivityRow:
    knob: str
    value: float
    scheduler: str
    standalone_overhead: float
    app_slowdown: float
    throttle_slowdown: float

    @property
    def fair(self) -> bool:
        return self.app_slowdown < 3.0 and self.throttle_slowdown < 3.0


def _costs_with(knob: str, value: float) -> CostParams:
    costs = CostParams()
    setattr(costs, knob, value)
    return costs


SWEEPS: dict[str, tuple[str, Sequence[float]]] = {
    # knob key -> (scheduler it matters to, values)
    "poll_interval_us": ("dfq", (500.0, 1000.0, 2000.0)),
    "timeslice_us": ("disengaged-timeslice", (10_000.0, 30_000.0, 100_000.0)),
    "sample_max_requests": ("dfq", (16, 32, 64)),
}


def run(
    duration_us: float = 300_000.0,
    warmup_us: float = 60_000.0,
    seed: int = 0,
) -> list[SensitivityRow]:
    app_base = solo_baseline(lambda: make_app("DCT"), duration_us, warmup_us, seed)
    throttle_base = solo_baseline(
        lambda: Throttle(500.0, name="thr"), duration_us, warmup_us, seed
    )
    rows = []
    for knob, (scheduler, values) in SWEEPS.items():
        for value in values:
            costs = _costs_with(knob, value)
            solo_env = build_env(scheduler, seed=seed, costs=costs)
            solo = make_app("DCT")
            run_workloads(solo_env, [solo], duration_us, warmup_us)

            pair_env = build_env(scheduler, seed=seed, costs=_costs_with(knob, value))
            app = make_app("DCT")
            throttle = Throttle(500.0, name="thr")
            run_workloads(pair_env, [app, throttle], duration_us, warmup_us)
            rows.append(
                SensitivityRow(
                    knob=knob,
                    value=float(value),
                    scheduler=scheduler,
                    standalone_overhead=solo.round_stats(warmup_us).mean_us
                    / app_base.rounds.mean_us
                    - 1.0,
                    app_slowdown=app.round_stats(warmup_us).mean_us
                    / app_base.rounds.mean_us,
                    throttle_slowdown=throttle.round_stats(warmup_us).mean_us
                    / throttle_base.rounds.mean_us,
                )
            )
    return rows


def main(duration_us: float = 300_000.0, seed: int = 0) -> str:
    rows = run(duration_us=duration_us, seed=seed)
    table = format_table(
        ["knob", "value", "scheduler", "standalone overhead", "DCT x", "thr x", "fair"],
        [
            [
                row.knob,
                row.value,
                row.scheduler,
                f"{100 * row.standalone_overhead:.1f}%",
                row.app_slowdown,
                row.throttle_slowdown,
                row.fair,
            ]
            for row in rows
        ],
        title="Parameter sensitivity (paper: 'not particularly sensitive')",
    )
    print(table)
    return table
