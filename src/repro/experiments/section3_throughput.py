"""Section 3 — direct access vs. trap-per-request throughput.

The paper hand-tuned equal-sized OpenCL requests against an Nvidia stack
(direct-mapped submission) and an AMD Catalyst stack (kernel trap per
request) and found direct access buys 8–35% throughput for 10–100 µs
requests, rising to 48–170% when traps involve nontrivial driver work.
We reproduce the comparison with the Throttle microbenchmark over the
three modeled submission stacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import build_env, run_workloads
from repro.metrics.tables import format_table
from repro.workloads.throttle import Throttle

REQUEST_SIZES_US = (10.0, 20.0, 50.0, 100.0)


class _SyscallThrottle(Throttle):
    submit_mode = "syscall"


class _DriverWorkThrottle(Throttle):
    submit_mode = "syscall+driver"


@dataclass(frozen=True)
class ThroughputRow:
    request_size_us: float
    direct_rps: float
    syscall_rps: float
    driver_rps: float

    @property
    def direct_vs_syscall_gain(self) -> float:
        """Fractional throughput gain of direct access over bare traps."""
        return self.direct_rps / self.syscall_rps - 1.0

    @property
    def direct_vs_driver_gain(self) -> float:
        return self.direct_rps / self.driver_rps - 1.0


def _throughput(cls, size: float, duration_us: float, seed: int) -> float:
    env = build_env("direct", seed=seed)
    workload = cls(size)
    results = run_workloads(env, [workload], duration_us, warmup_us=0.0)
    result = results[workload.name]
    return result.rounds.count / (duration_us / 1e6)


def run(
    duration_us: float = 100_000.0,
    seed: int = 0,
    sizes: Sequence[float] = REQUEST_SIZES_US,
) -> list[ThroughputRow]:
    rows = []
    for size in sizes:
        rows.append(
            ThroughputRow(
                request_size_us=size,
                direct_rps=_throughput(Throttle, size, duration_us, seed),
                syscall_rps=_throughput(_SyscallThrottle, size, duration_us, seed),
                driver_rps=_throughput(
                    _DriverWorkThrottle, size, duration_us, seed
                ),
            )
        )
    return rows


def main(duration_us: float = 100_000.0, seed: int = 0) -> str:
    rows = run(duration_us=duration_us, seed=seed)
    table = format_table(
        [
            "request(us)",
            "direct req/s",
            "trap req/s",
            "trap+driver req/s",
            "direct gain vs trap",
            "vs trap+driver",
        ],
        [
            [
                row.request_size_us,
                row.direct_rps,
                row.syscall_rps,
                row.driver_rps,
                f"{100 * row.direct_vs_syscall_gain:.0f}%",
                f"{100 * row.direct_vs_driver_gain:.0f}%",
            ]
            for row in rows
        ],
        title="Section 3: throughput of direct access vs trap-per-request "
        "(paper: +8-35% / +48-170%)",
    )
    print(table)
    return table
