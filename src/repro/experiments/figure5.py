"""Figure 5 — standalone Throttle slowdown across request sizes.

The controlled version of Figure 4: Throttle's request size sweeps from
19 µs to 1.7 ms; per-request interception cost makes the engaged Timeslice
scheduler expensive at the small end while both disengaged schedulers stay
flat (paper: DTS <=2%, DFQ <=5%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.cells import CellSpec, WorkloadSpec
from repro.experiments.parallel import CellTiming, ResultCache, run_cells
from repro.metrics.tables import format_table

THROTTLE_SIZES_US = (19.0, 57.0, 110.0, 303.0, 907.0, 1700.0)
SCHEDULERS = ("timeslice", "disengaged-timeslice", "dfq")


@dataclass(frozen=True)
class Figure5Row:
    request_size_us: float
    direct_round_us: float
    slowdowns: dict[str, float]


def cell_specs(
    duration_us: float,
    warmup_us: float,
    seed: int,
    sizes: Sequence[float],
    schedulers: Sequence[str],
) -> list[CellSpec]:
    """Per size: the direct-access baseline, then one cell per scheduler."""
    specs = []
    for size in sizes:
        workload = WorkloadSpec.throttle(size)
        specs.append(CellSpec.solo(workload, duration_us, warmup_us, seed))
        specs.extend(
            CellSpec(scheduler, (workload,), duration_us, warmup_us, seed)
            for scheduler in schedulers
        )
    return specs


def run(
    duration_us: float = 300_000.0,
    warmup_us: float = 50_000.0,
    seed: int = 0,
    sizes: Sequence[float] = THROTTLE_SIZES_US,
    schedulers: Sequence[str] = SCHEDULERS,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> list[Figure5Row]:
    specs = cell_specs(duration_us, warmup_us, seed, sizes, schedulers)
    cells = iter(run_cells(specs, workers=workers, cache=cache, timings=timings))
    rows = []
    for size in sizes:
        base = next(iter(next(cells).values()))
        slowdowns = {}
        for scheduler in schedulers:
            result = next(iter(next(cells).values()))
            slowdowns[scheduler] = result.rounds.mean_us / base.rounds.mean_us
        rows.append(Figure5Row(size, base.rounds.mean_us, slowdowns))
    return rows


def main(
    duration_us: float = 300_000.0,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> str:
    rows = run(
        duration_us=duration_us,
        seed=seed,
        workers=workers,
        cache=cache,
        timings=timings,
    )
    table = format_table(
        ["throttle size (us)", "direct round (us)"] + list(SCHEDULERS),
        [
            [row.request_size_us, row.direct_round_us]
            + [row.slowdowns[s] for s in SCHEDULERS]
            for row in rows
        ],
        title="Figure 5: standalone Throttle slowdown vs direct access",
    )
    print(table)
    return table
