"""Figure 9 — fairness under nonsaturating workloads.

DCT runs against a Throttle that sleeps between requests (off ratios up to
80%).  Fairness does not require equal suffering: execution is fair as
long as nobody slows down much beyond 2×.  The paper's shape: under
Disengaged Fair Queueing, Throttle does not suffer and DCT *benefits* from
the co-runner's idleness (work conservation); the timeslice schedulers
idle the device during Throttle's unused slice time, hurting DCT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.cells import CellSpec, WorkloadSpec
from repro.experiments.parallel import CellTiming, ResultCache, run_cells
from repro.metrics.tables import format_table

SLEEP_RATIOS = (0.0, 0.2, 0.4, 0.6, 0.8)
#: Throttle request size comparable to DCT's mean request (66 µs): with
#: matched per-request sizes the round-robin estimator charges both tasks
#: equal shares, so DFQ issues no spurious denials and the figure isolates
#: the work-conservation question (which is its point).
THROTTLE_SIZE_US = 66.0
SCHEDULERS = ("direct", "timeslice", "disengaged-timeslice", "dfq")
APP = "DCT"


@dataclass(frozen=True)
class Figure9Cell:
    scheduler: str
    sleep_ratio: float
    app_slowdown: float
    throttle_slowdown: float
    app_alone_us: float
    app_concurrent_us: float
    throttle_alone_us: float
    throttle_concurrent_us: float

    @property
    def efficiency(self) -> float:
        return (
            self.app_alone_us / self.app_concurrent_us
            + self.throttle_alone_us / self.throttle_concurrent_us
        )


def cell_specs(
    duration_us: float,
    warmup_us: float,
    seed: int,
    ratios: Sequence[float],
    schedulers: Sequence[str],
    throttle_size_us: float,
) -> list[CellSpec]:
    """The DCT baseline, then per ratio: Throttle baseline + pair grid."""
    app = WorkloadSpec.app(APP)
    specs = [CellSpec.solo(app, duration_us, warmup_us, seed)]
    for ratio in ratios:
        throttle = WorkloadSpec.throttle(
            throttle_size_us, sleep_ratio=ratio, name="throttle-ns"
        )
        specs.append(CellSpec.solo(throttle, duration_us, warmup_us, seed))
        specs.extend(
            CellSpec(scheduler, (app, throttle), duration_us, warmup_us, seed)
            for scheduler in schedulers
        )
    return specs


def run(
    duration_us: float = 500_000.0,
    warmup_us: float = 80_000.0,
    seed: int = 0,
    ratios: Sequence[float] = SLEEP_RATIOS,
    schedulers: Sequence[str] = SCHEDULERS,
    throttle_size_us: float = THROTTLE_SIZE_US,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> list[Figure9Cell]:
    specs = cell_specs(
        duration_us, warmup_us, seed, ratios, schedulers, throttle_size_us
    )
    produced = iter(
        run_cells(specs, workers=workers, cache=cache, timings=timings)
    )
    app_base = next(iter(next(produced).values()))
    cells = []
    for ratio in ratios:
        throttle_base = next(iter(next(produced).values()))
        for scheduler in schedulers:
            results = next(produced)
            cells.append(
                Figure9Cell(
                    scheduler=scheduler,
                    sleep_ratio=ratio,
                    app_slowdown=results[APP].rounds.mean_us
                    / app_base.rounds.mean_us,
                    throttle_slowdown=results["throttle-ns"].rounds.mean_us
                    / throttle_base.rounds.mean_us,
                    app_alone_us=app_base.rounds.mean_us,
                    app_concurrent_us=results[APP].rounds.mean_us,
                    throttle_alone_us=throttle_base.rounds.mean_us,
                    throttle_concurrent_us=results["throttle-ns"].rounds.mean_us,
                )
            )
    return cells


def main(
    duration_us: float = 500_000.0,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> str:
    cells = run(
        duration_us=duration_us,
        seed=seed,
        workers=workers,
        cache=cache,
        timings=timings,
    )
    table = format_table(
        ["scheduler", "sleep ratio", "DCT slowdown", "throttle slowdown"],
        [
            [cell.scheduler, cell.sleep_ratio, cell.app_slowdown, cell.throttle_slowdown]
            for cell in cells
        ],
        title="Figure 9: DCT vs nonsaturating Throttle "
        "(fair = nobody far beyond 2x; DFQ lets DCT benefit from idleness)",
    )
    print(table)
    return table
