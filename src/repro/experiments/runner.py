"""Shared experiment scaffolding.

Builds a complete simulated system (simulator, device, kernel, scheduler),
runs a set of workloads for a fixed virtual duration, and extracts
per-workload results.  All experiments are deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.core.base import SchedulerBase, scheduler_registry
from repro.faults.injector import Injector
from repro.faults.plan import FaultPlan
from repro.gpu.device import GpuDevice
from repro.gpu.params import GpuParams
from repro.metrics.rounds import RoundStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.monitor import active_monitor
from repro.osmodel.costs import CostParams
from repro.osmodel.kernel import ChannelQuotaPolicy, Kernel, MemoryQuotaPolicy
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry
from repro.sim.trace import NullRecorder, TraceRecorder
from repro.workloads.base import Workload

#: Default measurement horizon (µs of virtual time) and warmup.
DEFAULT_DURATION_US = 400_000.0
DEFAULT_WARMUP_US = 60_000.0

WorkloadFactory = Callable[[], Workload]
SchedulerSpec = Union[str, SchedulerBase]


@dataclass
class SimulationEnv:
    """One fully wired simulated system."""

    sim: Simulator
    device: GpuDevice
    kernel: Kernel
    scheduler: SchedulerBase
    rng: RngRegistry
    trace: TraceRecorder
    metrics: MetricsRegistry
    #: Fault injector, when a fault plan is installed (repro.faults).
    faults: Optional[Injector] = None


def build_env(
    scheduler: SchedulerSpec = "direct",
    seed: int = 0,
    costs: Optional[CostParams] = None,
    gpu_params: Optional[GpuParams] = None,
    quota: Optional[ChannelQuotaPolicy] = None,
    memory_quota: Optional[MemoryQuotaPolicy] = None,
    trace_kinds: Optional[Iterable[str]] = None,
    trace: Optional[TraceRecorder] = None,
    metrics: Optional[MetricsRegistry] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> SimulationEnv:
    """Wire up a simulator, device, kernel, and scheduler.

    ``trace`` (a ready-made recorder, e.g. a capped ring buffer) takes
    precedence over ``trace_kinds`` (record only the listed kinds);
    without either, the null recorder keeps tracing cost off the run.
    ``fault_plan`` installs a :class:`repro.faults.Injector` at every
    registered injection point; without one the injector simply does not
    exist (zero cost, like tracing).
    """
    sim = Simulator()
    rng = RngRegistry(seed)
    if trace is None:
        if trace_kinds is None:
            trace = NullRecorder()
        else:
            trace = TraceRecorder(trace_kinds)
    if metrics is None:
        metrics = MetricsRegistry()
    faults = (
        Injector(fault_plan, sim, trace=trace, metrics=metrics)
        if fault_plan is not None
        else None
    )
    device = GpuDevice(sim, gpu_params, trace, metrics, faults=faults)
    kernel = Kernel(
        sim, device, costs, trace, quota, memory_quota, metrics, faults=faults
    )
    if isinstance(scheduler, str):
        try:
            scheduler = scheduler_registry[scheduler]()
        except KeyError:
            known = ", ".join(sorted(scheduler_registry))
            raise KeyError(
                f"unknown scheduler {scheduler!r}; known: {known}"
            ) from None
    kernel.attach_scheduler(scheduler)
    return SimulationEnv(
        sim, device, kernel, scheduler, rng, trace, metrics, faults
    )


@dataclass(frozen=True)
class WorkloadResult:
    """Per-workload outcome of one simulation run."""

    name: str
    rounds: RoundStats
    killed: bool
    kill_reason: Optional[str]
    mean_request_us: float
    requests_submitted: int
    ground_truth_usage_us: float
    #: Flat per-task metrics snapshot (counters, histogram summaries, and
    #: engaged/disengaged channel time) taken at the end of the run.
    metrics: dict = field(default_factory=dict)

    @property
    def mean_round_us(self) -> float:
        return self.rounds.mean_us


def run_workloads(
    env: SimulationEnv,
    workloads: Sequence[Workload],
    duration_us: float = DEFAULT_DURATION_US,
    warmup_us: float = DEFAULT_WARMUP_US,
) -> dict[str, WorkloadResult]:
    """Start the workloads, run the clock, summarize steady state."""
    for workload in workloads:
        workload.start(env.sim, env.kernel, env.rng)
    env.sim.run(until=duration_us)
    monitor = getattr(env.trace, "monitor", None)
    if monitor is not None:
        # Close the final (possibly partial) streaming window before the
        # per-task metric snapshots below, so windows_closed / slo_*
        # counters cover the whole run.
        monitor.finalize(env.sim.now)
    dropped = getattr(env.trace, "dropped", 0)
    if dropped:
        # Ring-buffer evictions make the trace partial; surface that in
        # the cross-run record when one is being collected.
        from repro.obs.store import active_collector

        collector = active_collector()
        if collector is not None:
            collector.note_trace_dropped(dropped)
    engagement = env.scheduler.neon.engagement.snapshot(env.sim.now)
    results = {}
    for workload in workloads:
        task_metrics = env.metrics.task_view(workload.task.name)
        task_metrics.update(engagement.get(workload.task.name, {}))
        results[workload.name] = WorkloadResult(
            name=workload.name,
            rounds=workload.round_stats(warmup_us, duration_us),
            killed=workload.killed,
            kill_reason=workload.task.kill_reason,
            mean_request_us=workload.mean_request_size(),
            requests_submitted=len(workload.requests),
            ground_truth_usage_us=env.device.task_usage(workload.task),
            metrics=task_metrics,
        )
    return results


def measure(
    scheduler: SchedulerSpec,
    factories: Sequence[WorkloadFactory],
    duration_us: float = DEFAULT_DURATION_US,
    warmup_us: float = DEFAULT_WARMUP_US,
    seed: int = 0,
    costs: Optional[CostParams] = None,
    gpu_params: Optional[GpuParams] = None,
    fault_plan: Optional[FaultPlan] = None,
) -> dict[str, WorkloadResult]:
    """Build a fresh system, run the workload mix, return results."""
    session = active_monitor()
    if session is None:
        env = build_env(
            scheduler, seed=seed, costs=costs, gpu_params=gpu_params,
            fault_plan=fault_plan,
        )
        workloads = [factory() for factory in factories]
        return run_workloads(env, workloads, duration_us, warmup_us)
    # Monitored run: the simulation shares the monitor's live-sink trace
    # recorder and metrics registry, so streaming windows see every event
    # regardless of ring-buffer capacity.
    monitor = session.begin_run()
    env = build_env(
        scheduler, seed=seed, costs=costs, gpu_params=gpu_params,
        fault_plan=fault_plan, trace=monitor.trace, metrics=monitor.metrics,
    )
    workloads = [factory() for factory in factories]
    try:
        return run_workloads(env, workloads, duration_us, warmup_us)
    finally:
        session.end_run(monitor)


def solo_baseline(
    factory: WorkloadFactory,
    duration_us: float = DEFAULT_DURATION_US,
    warmup_us: float = DEFAULT_WARMUP_US,
    seed: int = 0,
    costs: Optional[CostParams] = None,
    gpu_params: Optional[GpuParams] = None,
) -> WorkloadResult:
    """Run one workload alone under direct device access."""
    results = measure(
        "direct", [factory], duration_us, warmup_us, seed, costs, gpu_params
    )
    return next(iter(results.values()))


@dataclass(frozen=True)
class SeedSweepStats:
    """Mean and spread of a metric across seeds."""

    metric: str
    seeds: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def relative_spread(self) -> float:
        """(max - min) / mean; how seed-sensitive the result is."""
        if self.mean == 0:
            return float("nan")
        return (self.maximum - self.minimum) / self.mean


def sweep_seeds(
    metric_fn: Callable[[int], float],
    seeds: Sequence[int] = (0, 1, 2, 3, 4),
    metric: str = "metric",
) -> SeedSweepStats:
    """Evaluate ``metric_fn(seed)`` across seeds and summarize the spread.

    Every simulation is deterministic per seed, so this is the honest way
    to put error bars on a reported number.
    """
    values = [metric_fn(seed) for seed in seeds]
    count = len(values)
    mean = sum(values) / count
    variance = sum((value - mean) ** 2 for value in values) / count
    return SeedSweepStats(
        metric=metric,
        seeds=count,
        mean=mean,
        std=variance**0.5,
        minimum=min(values),
        maximum=max(values),
    )
