"""Ablations of the design choices DESIGN.md calls out.

* **Vendor statistics (dfq-hw)** — Sections 3.3/6.1 argue DFQ's residual
  unfairness for graphics/multi-channel tasks stems from software
  request-size estimation; with hardware usage counters the glxgears
  anomaly should disappear.
* **Free-run multiplier** — the engagement/free-run duty cycle trades
  overhead against how quickly imbalance is corrected.
* **Related-work baselines** — per-request SFQ, deficit round robin
  (GERM), and credit scheduling (Gdev) achieve fairness but pay per-request
  interception, like engaged Timeslice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import measure, solo_baseline
from repro.metrics.tables import format_table
from repro.osmodel.costs import CostParams
from repro.workloads.apps import make_app
from repro.workloads.throttle import Throttle


@dataclass(frozen=True)
class AnomalyOutcome:
    """glxgears vs small Throttle under sampling-based vs hardware DFQ."""

    scheduler: str
    gears_slowdown: float
    throttle_slowdown: float

    @property
    def disparity(self) -> float:
        """How much worse glxgears fares than Throttle (1.0 = even)."""
        return self.gears_slowdown / self.throttle_slowdown


def run_hw_stats(
    duration_us: float = 500_000.0,
    warmup_us: float = 80_000.0,
    seed: int = 0,
    throttle_size_us: float = 19.0,
) -> list[AnomalyOutcome]:
    gears_factory = lambda: make_app("glxgears")
    throttle_factory = lambda: Throttle(throttle_size_us, name="throttle")
    gears_base = solo_baseline(gears_factory, duration_us, warmup_us, seed)
    throttle_base = solo_baseline(throttle_factory, duration_us, warmup_us, seed)
    outcomes = []
    for scheduler in ("dfq", "dfq-hw"):
        results = measure(
            scheduler, [gears_factory, throttle_factory], duration_us, warmup_us, seed
        )
        outcomes.append(
            AnomalyOutcome(
                scheduler=scheduler,
                gears_slowdown=results["glxgears"].rounds.mean_us
                / gears_base.rounds.mean_us,
                throttle_slowdown=results["throttle"].rounds.mean_us
                / throttle_base.rounds.mean_us,
            )
        )
    return outcomes


@dataclass(frozen=True)
class MultiplierOutcome:
    multiplier: float
    standalone_overhead: float
    app_slowdown: float
    throttle_slowdown: float


def run_freerun_multiplier(
    duration_us: float = 500_000.0,
    warmup_us: float = 80_000.0,
    seed: int = 0,
    multipliers: Sequence[float] = (2.0, 5.0, 10.0),
) -> list[MultiplierOutcome]:
    app_factory = lambda: make_app("DCT")
    throttle_factory = lambda: Throttle(1700.0, name="throttle")
    app_base = solo_baseline(app_factory, duration_us, warmup_us, seed)
    throttle_base = solo_baseline(throttle_factory, duration_us, warmup_us, seed)
    outcomes = []
    for multiplier in multipliers:
        costs = CostParams()
        costs.freerun_multiplier = multiplier
        solo = measure(
            "dfq", [app_factory], duration_us, warmup_us, seed, costs=costs
        )
        pair = measure(
            "dfq",
            [app_factory, throttle_factory],
            duration_us,
            warmup_us,
            seed,
            costs=costs,
        )
        outcomes.append(
            MultiplierOutcome(
                multiplier=multiplier,
                standalone_overhead=solo["DCT"].rounds.mean_us
                / app_base.rounds.mean_us
                - 1.0,
                app_slowdown=pair["DCT"].rounds.mean_us / app_base.rounds.mean_us,
                throttle_slowdown=pair["throttle"].rounds.mean_us
                / throttle_base.rounds.mean_us,
            )
        )
    return outcomes


@dataclass(frozen=True)
class BaselineOutcome:
    scheduler: str
    app_slowdown: float
    throttle_slowdown: float
    app_standalone_overhead: float


def run_baseline_schedulers(
    duration_us: float = 400_000.0,
    warmup_us: float = 60_000.0,
    seed: int = 0,
    schedulers: Sequence[str] = ("engaged-fq", "drr", "credit", "dfq"),
) -> list[BaselineOutcome]:
    app_factory = lambda: make_app("DCT")
    throttle_factory = lambda: Throttle(500.0, name="throttle")
    app_base = solo_baseline(app_factory, duration_us, warmup_us, seed)
    throttle_base = solo_baseline(throttle_factory, duration_us, warmup_us, seed)
    outcomes = []
    for scheduler in schedulers:
        solo = measure(scheduler, [app_factory], duration_us, warmup_us, seed)
        pair = measure(
            scheduler,
            [app_factory, throttle_factory],
            duration_us,
            warmup_us,
            seed,
        )
        outcomes.append(
            BaselineOutcome(
                scheduler=scheduler,
                app_slowdown=pair["DCT"].rounds.mean_us / app_base.rounds.mean_us,
                throttle_slowdown=pair["throttle"].rounds.mean_us
                / throttle_base.rounds.mean_us,
                app_standalone_overhead=solo["DCT"].rounds.mean_us
                / app_base.rounds.mean_us
                - 1.0,
            )
        )
    return outcomes


def main(duration_us: float = 500_000.0, seed: int = 0) -> str:
    hw = run_hw_stats(duration_us=duration_us, seed=seed)
    hw_table = format_table(
        ["scheduler", "glxgears slowdown", "throttle slowdown", "disparity"],
        [[o.scheduler, o.gears_slowdown, o.throttle_slowdown, o.disparity] for o in hw],
        title="Ablation: vendor statistics fix the glxgears anomaly "
        "(dfq-hw disparity should be near 1.0)",
    )
    multipliers = run_freerun_multiplier(duration_us=duration_us, seed=seed)
    multiplier_table = format_table(
        ["free-run multiplier", "standalone overhead", "DCT slowdown", "throttle slowdown"],
        [
            [
                o.multiplier,
                f"{100 * o.standalone_overhead:.1f}%",
                o.app_slowdown,
                o.throttle_slowdown,
            ]
            for o in multipliers
        ],
        title="Ablation: free-run multiplier (overhead vs responsiveness)",
    )
    baselines = run_baseline_schedulers(duration_us=min(duration_us, 400_000.0), seed=seed)
    baseline_table = format_table(
        ["scheduler", "DCT slowdown", "throttle slowdown", "standalone overhead"],
        [
            [
                o.scheduler,
                o.app_slowdown,
                o.throttle_slowdown,
                f"{100 * o.app_standalone_overhead:.1f}%",
            ]
            for o in baselines
        ],
        title="Ablation: related-work per-request schedulers vs DFQ",
    )
    print(hw_table)
    print()
    print(multiplier_table)
    print()
    print(baseline_table)
    return "\n\n".join([hw_table, multiplier_table, baseline_table])
