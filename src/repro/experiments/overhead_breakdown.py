"""Where Disengaged Fair Queueing's overhead goes.

The paper attributes DFQ's residual overhead primarily to "idleness during
draining, due to the granularity of polling" (Section 5.2).  This study
decomposes a standalone run's virtual time into free-run, drain-wait,
sampling, and other engagement work, across Throttle request sizes, and
confirms the attribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import build_env, run_workloads, solo_baseline
from repro.metrics.tables import format_table
from repro.workloads.throttle import Throttle

THROTTLE_SIZES_US = (19.0, 110.0, 303.0, 1700.0)


@dataclass(frozen=True)
class BreakdownRow:
    request_size_us: float
    slowdown: float
    freerun_fraction: float
    drain_wait_fraction: float
    sampling_fraction: float
    other_engagement_fraction: float


def run(
    duration_us: float = 400_000.0,
    warmup_us: float = 60_000.0,
    seed: int = 0,
    sizes: Sequence[float] = THROTTLE_SIZES_US,
) -> list[BreakdownRow]:
    rows = []
    for size in sizes:
        base = solo_baseline(
            lambda size=size: Throttle(size), duration_us, warmup_us, seed
        )
        env = build_env("dfq", seed=seed)
        workload = Throttle(size)
        run_workloads(env, [workload], duration_us, warmup_us)
        breakdown = env.scheduler.time_breakdown
        accounted = breakdown["freerun_us"] + breakdown["engagement_us"]
        if accounted <= 0:
            continue
        drain = breakdown["drain_wait_us"]
        sampling = max(0.0, breakdown["sampling_us"] - drain * 0.0)
        other = max(
            0.0, breakdown["engagement_us"] - breakdown["sampling_us"] - drain
        )
        rows.append(
            BreakdownRow(
                request_size_us=size,
                slowdown=workload.round_stats(warmup_us).mean_us
                / base.rounds.mean_us,
                freerun_fraction=breakdown["freerun_us"] / accounted,
                drain_wait_fraction=drain / accounted,
                sampling_fraction=sampling / accounted,
                other_engagement_fraction=other / accounted,
            )
        )
    return rows


def main(duration_us: float = 400_000.0, seed: int = 0) -> str:
    rows = run(duration_us=duration_us, seed=seed)
    table = format_table(
        [
            "throttle (us)",
            "slowdown",
            "free-run",
            "drain wait",
            "sampling",
            "other engagement",
        ],
        [
            [
                row.request_size_us,
                row.slowdown,
                f"{100 * row.freerun_fraction:.1f}%",
                f"{100 * row.drain_wait_fraction:.1f}%",
                f"{100 * row.sampling_fraction:.1f}%",
                f"{100 * row.other_engagement_fraction:.1f}%",
            ]
            for row in rows
        ],
        title="DFQ time breakdown, standalone Throttle "
        "(paper: drain idleness at polling granularity dominates)",
    )
    print(table)
    return table
