"""Parallel experiment-cell execution with content-keyed result caching.

:func:`run_cells` is the single entry point: it takes a sequence of
:class:`~repro.experiments.cells.CellSpec` declarations and returns their
results **in spec order**, so driver output is byte-identical to a serial
loop regardless of worker count.  Three mechanisms make it fast:

* **dedup** — identical cells (same content key) within one call are
  computed once and share the result object;
* **cache** — a :class:`ResultCache` (in-memory per run, optionally
  persisted as JSON files under a directory) carries results *across*
  calls, so e.g. the solo direct-access baselines are computed once and
  shared between figure4/5, figure6/7, and figure9/10;
* **fan-out** — with ``workers > 1``, unique uncached cells execute in a
  ``ProcessPoolExecutor``; cells that cannot be pickled (callable-based
  workload specs) or any pool failure fall back to serial execution in
  the parent.

Each cell's host wall time is recorded in a :class:`CellTiming` — pool
cells measure it inside the worker, so it is the cell's own cost, not a
collection-order artifact — and persisted alongside the cached result,
so a warm-cache run still reports what its cells originally cost.  Three
optional observers hook the same resolution points, all inert unless a
run installs them (``repro perf record``, ``--progress``):

* the host-phase profiler (:mod:`repro.obs.profile`) attributes wall
  time to spec-build / cache-read / cache-write / cell-execute /
  result-merge spans;
* the run-record collector (:mod:`repro.obs.store`) captures per-cell
  timings and metric snapshots for the append-only run store;
* the progress renderer (:mod:`repro.experiments.progress`) shows live
  per-cell status on stderr.

This module is host-side orchestration, not simulation: it deliberately
reads the wall clock (see ``host_clock_modules`` in neonlint's config) —
virtual time inside each cell remains fully deterministic.
"""

from __future__ import annotations

import json
import pickle
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.cells import CellSpec
from repro.experiments.progress import active_progress
from repro.experiments.runner import WorkloadResult
from repro.metrics.rounds import RoundStats
from repro.obs import profile as phases
from repro.obs.monitor import active_monitor
from repro.obs.store import RunCollector, active_collector

CellResults = dict[str, WorkloadResult]


# ----------------------------------------------------------------------
# Result (de)serialization — for the on-disk cache
# ----------------------------------------------------------------------
def result_to_jsonable(result: WorkloadResult) -> dict:
    rounds = result.rounds
    return {
        "name": result.name,
        "rounds": {
            "count": rounds.count,
            "mean_us": rounds.mean_us,
            "median_us": rounds.median_us,
            "p95_us": rounds.p95_us,
        },
        "killed": result.killed,
        "kill_reason": result.kill_reason,
        "mean_request_us": result.mean_request_us,
        "requests_submitted": result.requests_submitted,
        "ground_truth_usage_us": result.ground_truth_usage_us,
        "metrics": result.metrics,
    }


def result_from_jsonable(payload: dict) -> WorkloadResult:
    rounds = payload["rounds"]
    return WorkloadResult(
        name=payload["name"],
        rounds=RoundStats(
            count=rounds["count"],
            mean_us=rounds["mean_us"],
            median_us=rounds["median_us"],
            p95_us=rounds["p95_us"],
        ),
        killed=payload["killed"],
        kill_reason=payload["kill_reason"],
        mean_request_us=payload["mean_request_us"],
        requests_submitted=payload["requests_submitted"],
        ground_truth_usage_us=payload["ground_truth_usage_us"],
        metrics=payload.get("metrics", {}),
    )


class ResultCache:
    """Content-keyed cache of cell results.

    In-memory always; when ``directory`` is given, results are also
    persisted as one JSON file per content key and reloaded lazily, so
    repeated CLI invocations (``--cache-dir``) skip finished cells.

    Alongside each result the cache remembers the wall time originally
    spent computing it (``wall_s`` in the JSON payload — an additive
    field, so caches written before it existed still load), which lets
    warm-cache runs report what their reused cells once cost.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self._memory: dict[str, CellResults] = {}
        self._wall: dict[str, Optional[float]] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[CellResults]:
        found = self._memory.get(key)
        if found is not None:
            self.hits += 1
            return found
        path = self._path(key)
        if path is not None and path.is_file():
            with phases.get_profiler().span(phases.CACHE_READ):
                payload = json.loads(path.read_text())
                found = {
                    name: result_from_jsonable(entry)
                    for name, entry in payload["results"].items()
                }
            self._memory[key] = found
            self._wall[key] = payload.get("wall_s")
            self.hits += 1
            return found
        self.misses += 1
        return None

    def wall_s(self, key: str) -> Optional[float]:
        """Wall time originally spent computing ``key``, if known."""
        return self._wall.get(key)

    def put(
        self, key: str, results: CellResults, wall_s: Optional[float] = None
    ) -> None:
        self._memory[key] = results
        if wall_s is not None or key not in self._wall:
            self._wall[key] = wall_s
        path = self._path(key)
        if path is not None:
            with phases.get_profiler().span(phases.CACHE_WRITE):
                payload = {
                    "results": {
                        name: result_to_jsonable(result)
                        for name, result in results.items()
                    },
                    "wall_s": self._wall[key],
                }
                path.write_text(json.dumps(payload))


@dataclass(frozen=True)
class CellTiming:
    """Host wall time spent producing one cell's result.

    ``wall_s`` is what *this* run paid; for reused cells (``cache`` /
    ``dup``) that is ~0 and ``cached_wall_s`` carries what the cell cost
    when it was originally computed, when the cache still knows.
    """

    index: int
    label: str
    wall_s: float
    source: str  # "run" | "pool" | "cache" | "dup"
    cached_wall_s: float = 0.0


def format_cell_timings(timings: Sequence[CellTiming]) -> str:
    """Human-readable per-cell wall-time summary."""
    if not timings:
        return "cell farm: no cells executed"
    executed = [t for t in timings if t.source in ("run", "pool")]
    reused = len(timings) - len(executed)
    total = sum(t.wall_s for t in timings)
    computed = sum(t.wall_s for t in executed)
    saved = sum(t.cached_wall_s for t in timings if t.source not in ("run", "pool"))
    saved_text = f", reuse saved {saved:.2f}s" if saved > 0 else ""
    lines = [
        f"cell farm: {len(timings)} cells "
        f"({len(executed)} executed, {reused} reused), "
        f"wall {total:.2f}s (computed {computed:.2f}s{saved_text})"
    ]
    slowest = sorted(executed, key=lambda t: (-t.wall_s, t.index))[:5]
    for timing in slowest:
        lines.append(
            f"  slowest {timing.wall_s:6.2f}s  cell[{timing.index}]  "
            f"{timing.label} ({timing.source})"
        )
    return "\n".join(lines)


def _execute_cell(spec: CellSpec) -> tuple[CellResults, float]:
    """Pool worker entry point: run one cell, measuring its own wall time.

    Measuring inside the worker makes the per-cell cost real even under
    concurrency (the parent only sees collection-order elapsed time).
    """
    started = time.perf_counter()
    results = spec.run()
    return results, time.perf_counter() - started


def _picklable(spec: CellSpec) -> bool:
    if not spec.cacheable:  # callable-based specs never cross the boundary
        return False
    try:
        pickle.dumps(spec)
    except Exception:
        return False
    return True


def _collect_cell(
    collector: Optional[RunCollector],
    collected: set[int],
    spec: CellSpec,
    index: int,
    key: Optional[str],
    source: str,
    wall_s: float,
    cached_wall_s: float,
    results: CellResults,
) -> None:
    """Report one resolved cell to the run-record collector, once."""
    if collector is None or index in collected:
        return
    collected.add(index)
    collector.add_cell(
        index=index,
        label=spec.label(),
        key=key,
        source=source,
        wall_s=wall_s,
        cached_wall_s=cached_wall_s,
        duration_us=spec.duration_us,
        workloads={
            name: result_to_jsonable(result)
            for name, result in results.items()
        },
        fault_plan=(
            spec.fault_plan.name if spec.fault_plan is not None else None
        ),
    )


def run_cells(
    specs: Sequence[CellSpec],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> list[CellResults]:
    """Execute every cell and return results in spec order.

    ``workers <= 1`` (or any pool/pickling failure) degrades to plain
    serial execution; output is identical either way.
    """
    clock = time.perf_counter
    profiler = phases.get_profiler()
    collector = active_collector()
    progress = active_progress()
    monitor_session = active_monitor()
    collected: set[int] = set()

    results: list[Optional[CellResults]] = [None] * len(specs)
    with profiler.span(phases.SPEC_BUILD):
        keys: list[Optional[str]] = [
            spec.content_key() if spec.cacheable else None for spec in specs
        ]

    if progress is not None:
        progress.begin(len(specs))

    # Resolve cache hits and intra-call duplicates first.
    first_owner: dict[str, int] = {}
    pending: list[int] = []
    for index, (spec, key) in enumerate(zip(specs, keys)):
        if key is None:
            pending.append(index)
            continue
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
                cached_wall = cache.wall_s(key) or 0.0
                if timings is not None:
                    timings.append(
                        CellTiming(index, spec.label(), 0.0, "cache",
                                   cached_wall)
                    )
                _collect_cell(collector, collected, spec, index, key,
                              "cache", 0.0, cached_wall, cached)
                if monitor_session is not None:
                    monitor_session.cell_reused(spec.label(), "cache")
                if progress is not None:
                    progress.cell_done(index, spec.label(), "cache", 0.0)
                continue
        if key in first_owner:
            continue  # duplicate of an earlier pending cell
        first_owner[key] = index
        pending.append(index)

    workers = max(1, min(int(workers), len(pending) or 1))
    # A monitoring session lives in this process (module-level hooks and
    # live sinks don't cross a pool boundary), so monitored cells always
    # execute serially in the parent.
    use_pool = (
        workers > 1
        and monitor_session is None
        and all(_picklable(specs[i]) for i in pending)
    )
    computed_wall: dict[int, float] = {}

    if use_pool and pending:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                with profiler.span(phases.CELL_EXECUTE):
                    futures = {
                        pool.submit(_execute_cell, specs[index]): index
                        for index in pending
                    }
                    remaining = set(futures)
                    while remaining:
                        done, remaining = wait(
                            remaining, return_when=FIRST_COMPLETED
                        )
                        for future in sorted(
                            done, key=lambda f: futures[f]
                        ):
                            index = futures[future]
                            cell_results, wall = future.result()
                            results[index] = cell_results
                            computed_wall[index] = wall
                            if timings is not None:
                                timings.append(
                                    CellTiming(
                                        index, specs[index].label(), wall,
                                        "pool",
                                    )
                                )
                            _collect_cell(
                                collector, collected, specs[index], index,
                                keys[index], "pool", wall, 0.0, cell_results,
                            )
                            if progress is not None:
                                progress.cell_done(
                                    index, specs[index].label(), "pool", wall
                                )
        except Exception:
            # Broken pool, pickling edge case, interpreter without fork…
            # recompute everything serially; determinism makes this safe.
            for index in pending:
                results[index] = None
            use_pool = False
            if progress is not None:
                progress.note("worker pool failed; falling back to serial")
                progress.begin(len(specs))

    if not use_pool:
        for index in pending:
            spec = specs[index]
            if monitor_session is not None:
                monitor_session.begin_cell(spec.label())
            if progress is not None:
                progress.cell_running(index, spec.label())
            started = clock()
            try:
                with profiler.span(phases.CELL_EXECUTE):
                    results[index] = spec.run()
            except Exception:
                if progress is not None:
                    progress.cell_failed(index, spec.label())
                raise
            wall = clock() - started
            computed_wall[index] = wall
            if timings is not None:
                timings.append(CellTiming(index, spec.label(), wall, "run"))
            _collect_cell(collector, collected, spec, index, keys[index],
                          "run", wall, 0.0, results[index])
            if progress is not None:
                progress.cell_done(index, spec.label(), "run", wall)

    # Fill caches and duplicate slots from the computed owners.
    with profiler.span(phases.RESULT_MERGE):
        for index in pending:
            key = keys[index]
            if key is not None and cache is not None:
                cache.put(key, results[index], wall_s=computed_wall.get(index))
        for index, key in enumerate(keys):
            if results[index] is None and key is not None:
                owner = first_owner[key]
                results[index] = results[owner]
                owner_wall = computed_wall.get(owner, 0.0)
                if timings is not None:
                    timings.append(
                        CellTiming(index, specs[index].label(), 0.0, "dup",
                                   owner_wall)
                    )
                _collect_cell(collector, collected, specs[index], index, key,
                              "dup", 0.0, owner_wall, results[index])
                if monitor_session is not None:
                    monitor_session.cell_reused(specs[index].label(), "dup")
                if progress is not None:
                    progress.cell_done(index, specs[index].label(), "dup", 0.0)

    if progress is not None:
        progress.end()

    missing = [index for index, result in enumerate(results) if result is None]
    if missing:  # pragma: no cover - defensive
        raise RuntimeError(f"cells {missing} produced no result")
    return results  # type: ignore[return-value]
