"""Parallel experiment-cell execution with content-keyed result caching.

:func:`run_cells` is the single entry point: it takes a sequence of
:class:`~repro.experiments.cells.CellSpec` declarations and returns their
results **in spec order**, so driver output is byte-identical to a serial
loop regardless of worker count.  Three mechanisms make it fast:

* **dedup** — identical cells (same content key) within one call are
  computed once and share the result object;
* **cache** — a :class:`ResultCache` (in-memory per run, optionally
  persisted as JSON files under a directory) carries results *across*
  calls, so e.g. the solo direct-access baselines are computed once and
  shared between figure4/5, figure6/7, and figure9/10;
* **fan-out** — with ``workers > 1``, unique uncached cells execute in a
  ``ProcessPoolExecutor``; cells that cannot be pickled (callable-based
  workload specs) or any pool failure fall back to serial execution in
  the parent.

Each cell's host wall time is recorded in a :class:`CellTiming`, so the
speedup (or lack of it) is observable; the CLI prints the summary to
stderr to keep stdout byte-identical to the serial seed output.

This module is host-side orchestration, not simulation: it deliberately
reads the wall clock (see ``host_clock_modules`` in neonlint's config) —
virtual time inside each cell remains fully deterministic.
"""

from __future__ import annotations

import json
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.cells import CellSpec
from repro.experiments.runner import WorkloadResult
from repro.metrics.rounds import RoundStats

CellResults = dict[str, WorkloadResult]


# ----------------------------------------------------------------------
# Result (de)serialization — for the on-disk cache
# ----------------------------------------------------------------------
def result_to_jsonable(result: WorkloadResult) -> dict:
    rounds = result.rounds
    return {
        "name": result.name,
        "rounds": {
            "count": rounds.count,
            "mean_us": rounds.mean_us,
            "median_us": rounds.median_us,
            "p95_us": rounds.p95_us,
        },
        "killed": result.killed,
        "kill_reason": result.kill_reason,
        "mean_request_us": result.mean_request_us,
        "requests_submitted": result.requests_submitted,
        "ground_truth_usage_us": result.ground_truth_usage_us,
        "metrics": result.metrics,
    }


def result_from_jsonable(payload: dict) -> WorkloadResult:
    rounds = payload["rounds"]
    return WorkloadResult(
        name=payload["name"],
        rounds=RoundStats(
            count=rounds["count"],
            mean_us=rounds["mean_us"],
            median_us=rounds["median_us"],
            p95_us=rounds["p95_us"],
        ),
        killed=payload["killed"],
        kill_reason=payload["kill_reason"],
        mean_request_us=payload["mean_request_us"],
        requests_submitted=payload["requests_submitted"],
        ground_truth_usage_us=payload["ground_truth_usage_us"],
        metrics=payload.get("metrics", {}),
    )


class ResultCache:
    """Content-keyed cache of cell results.

    In-memory always; when ``directory`` is given, results are also
    persisted as one JSON file per content key and reloaded lazily, so
    repeated CLI invocations (``--cache-dir``) skip finished cells.
    """

    def __init__(self, directory: Optional[Path] = None) -> None:
        self._memory: dict[str, CellResults] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    def _path(self, key: str) -> Optional[Path]:
        if self.directory is None:
            return None
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[CellResults]:
        found = self._memory.get(key)
        if found is not None:
            self.hits += 1
            return found
        path = self._path(key)
        if path is not None and path.is_file():
            payload = json.loads(path.read_text())
            found = {
                name: result_from_jsonable(entry)
                for name, entry in payload["results"].items()
            }
            self._memory[key] = found
            self.hits += 1
            return found
        self.misses += 1
        return None

    def put(self, key: str, results: CellResults) -> None:
        self._memory[key] = results
        path = self._path(key)
        if path is not None:
            payload = {
                "results": {
                    name: result_to_jsonable(result)
                    for name, result in results.items()
                }
            }
            path.write_text(json.dumps(payload))


@dataclass(frozen=True)
class CellTiming:
    """Host wall time spent producing one cell's result."""

    index: int
    label: str
    wall_s: float
    source: str  # "run" | "pool" | "cache" | "dup"


def format_cell_timings(timings: Sequence[CellTiming]) -> str:
    """Human-readable per-cell wall-time summary."""
    if not timings:
        return "cell farm: no cells executed"
    executed = [t for t in timings if t.source in ("run", "pool")]
    reused = len(timings) - len(executed)
    total = sum(t.wall_s for t in timings)
    computed = sum(t.wall_s for t in executed)
    lines = [
        f"cell farm: {len(timings)} cells "
        f"({len(executed)} executed, {reused} reused), "
        f"wall {total:.2f}s (computed {computed:.2f}s)"
    ]
    slowest = sorted(executed, key=lambda t: (-t.wall_s, t.index))[:5]
    for timing in slowest:
        lines.append(
            f"  slowest {timing.wall_s:6.2f}s  cell[{timing.index}]  "
            f"{timing.label} ({timing.source})"
        )
    return "\n".join(lines)


def _execute_cell(spec: CellSpec) -> CellResults:
    """Pool worker entry point: run one cell to completion."""
    return spec.run()


def _picklable(spec: CellSpec) -> bool:
    if not spec.cacheable:  # callable-based specs never cross the boundary
        return False
    try:
        pickle.dumps(spec)
    except Exception:
        return False
    return True


def run_cells(
    specs: Sequence[CellSpec],
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> list[CellResults]:
    """Execute every cell and return results in spec order.

    ``workers <= 1`` (or any pool/pickling failure) degrades to plain
    serial execution; output is identical either way.
    """
    clock = time.perf_counter
    results: list[Optional[CellResults]] = [None] * len(specs)
    keys: list[Optional[str]] = [
        spec.content_key() if spec.cacheable else None for spec in specs
    ]

    # Resolve cache hits and intra-call duplicates first.
    first_owner: dict[str, int] = {}
    pending: list[int] = []
    for index, (spec, key) in enumerate(zip(specs, keys)):
        if key is None:
            pending.append(index)
            continue
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
                if timings is not None:
                    timings.append(
                        CellTiming(index, spec.label(), 0.0, "cache")
                    )
                continue
        if key in first_owner:
            continue  # duplicate of an earlier pending cell
        first_owner[key] = index
        pending.append(index)

    workers = max(1, min(int(workers), len(pending) or 1))
    use_pool = workers > 1 and all(_picklable(specs[i]) for i in pending)

    if use_pool and pending:
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                started = clock()
                futures = [
                    (index, pool.submit(_execute_cell, specs[index]))
                    for index in pending
                ]
                for index, future in futures:
                    results[index] = future.result()
                    if timings is not None:
                        # Wall time per cell is not separable under
                        # concurrency; charge elapsed-so-far deltas.
                        elapsed = clock() - started
                        started = clock()
                        timings.append(
                            CellTiming(
                                index, specs[index].label(), elapsed, "pool"
                            )
                        )
        except Exception:
            # Broken pool, pickling edge case, interpreter without fork…
            # recompute everything serially; determinism makes this safe.
            for index in pending:
                results[index] = None
            use_pool = False

    if not use_pool:
        for index in pending:
            started = clock()
            results[index] = specs[index].run()
            if timings is not None:
                timings.append(
                    CellTiming(
                        index, specs[index].label(), clock() - started, "run"
                    )
                )

    # Fill caches and duplicate slots from the computed owners.
    for index in pending:
        key = keys[index]
        if key is not None and cache is not None:
            cache.put(key, results[index])
    for index, key in enumerate(keys):
        if results[index] is None and key is not None:
            owner = first_owner[key]
            results[index] = results[owner]
            if timings is not None:
                timings.append(CellTiming(index, specs[index].label(), 0.0, "dup"))

    missing = [index for index, result in enumerate(results) if result is None]
    if missing:  # pragma: no cover - defensive
        raise RuntimeError(f"cells {missing} produced no result")
    return results  # type: ignore[return-value]
