"""Live per-cell progress for the experiment farm (``--progress``).

Renders cell status — queued / running / done / failed, elapsed wall
time, and cache reuse — to stderr while :func:`repro.experiments.parallel
.run_cells` grinds through a batch.  On a TTY the renderer keeps one
status line rewritten in place; anywhere else (CI logs, pipes) it
degrades to a plain line per completed cell so logs stay greppable.

Progress never touches stdout (experiment tables stay byte-identical)
and reads the host clock only through
:func:`repro.obs.profile.host_clock`, the single neonlint-whitelisted
accessor.  Installation mirrors the telemetry collector: the CLI wraps
the run in :func:`progressing` and the farm asks :func:`active_progress`
per batch, paying one ``is None`` check when the flag is off.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from typing import IO, Iterator, Optional

from repro.obs.profile import host_clock


class CellProgress:
    """Renders one ``run_cells`` batch after another to a stream."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._total = 0
        self._done = 0
        self._reused = 0
        self._failed = 0
        self._running: Optional[str] = None
        self._started = 0.0
        self._line_width = 0

    # ------------------------------------------------------------------
    # Farm callbacks
    # ------------------------------------------------------------------
    def begin(self, total: int) -> None:
        """A new batch of ``total`` cells is about to resolve."""
        self._total = total
        self._done = 0
        self._reused = 0
        self._failed = 0
        self._running = None
        self._started = host_clock()
        if self._tty:
            self._render()

    def cell_running(self, index: int, label: str) -> None:
        self._running = label
        if self._tty:
            self._render()
        else:
            self._emit(f"cell[{index}] running  {label}")

    def cell_done(
        self, index: int, label: str, source: str, wall_s: float
    ) -> None:
        """One cell resolved (``source`` is run/pool/cache/dup)."""
        self._done += 1
        if source in ("cache", "dup"):
            self._reused += 1
        if self._running == label:
            self._running = None
        if self._tty:
            self._render()
        else:
            self._emit(
                f"cell[{index}] {source:5s} {wall_s:7.2f}s  {label}"
            )

    def cell_failed(self, index: int, label: str) -> None:
        self._failed += 1
        if self._tty:
            self._clear_line()
        self._emit(f"cell[{index}] FAILED  {label}")
        if self._tty:
            self._render()

    def note(self, message: str) -> None:
        """An out-of-band line (e.g. pool fallback), TTY-safe."""
        if self._tty:
            self._clear_line()
        self._emit(f"progress: {message}")
        if self._tty:
            self._render()

    def end(self) -> None:
        """Batch finished; leave the terminal on a fresh line."""
        if self._tty:
            self._clear_line()
        elapsed = host_clock() - self._started
        self._emit(
            f"progress: {self._done}/{self._total} cells "
            f"({self._reused} reused, {self._failed} failed) "
            f"in {elapsed:.1f}s"
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _emit(self, line: str) -> None:
        self.stream.write(line + "\n")
        self.stream.flush()

    def _clear_line(self) -> None:
        if self._line_width:
            self.stream.write("\r" + " " * self._line_width + "\r")
            self.stream.flush()
            self._line_width = 0

    def _render(self) -> None:
        elapsed = host_clock() - self._started
        line = (
            f"cells {self._done}/{self._total}"
            f" ({self._reused} reused)"
            f" {elapsed:6.1f}s"
        )
        if self._failed:
            line += f" {self._failed} FAILED"
        if self._running:
            line += f"  running: {self._running}"
        padding = max(0, self._line_width - len(line))
        self.stream.write("\r" + line + " " * padding)
        self.stream.flush()
        self._line_width = len(line)


#: Module-level active renderer; None unless ``--progress`` installed one.
_ACTIVE: Optional[CellProgress] = None


def active_progress() -> Optional[CellProgress]:
    """The installed renderer, or None when progress is off."""
    return _ACTIVE


@contextmanager
def progressing(renderer: Optional[CellProgress] = None) -> Iterator[CellProgress]:
    """Install ``renderer`` (or a stderr one) for the duration of the block."""
    global _ACTIVE
    if renderer is None:
        renderer = CellProgress()
    previous = _ACTIVE
    _ACTIVE = renderer
    try:
        yield renderer
    finally:
        _ACTIVE = previous
