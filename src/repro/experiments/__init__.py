"""Experiment drivers — one module per paper table/figure.

Every driver exposes a ``run(...)`` function returning structured results
and a ``main()`` that prints the paper-style table; the CLI
(``python -m repro <experiment>``) dispatches to them.  Durations default
to values long enough for steady state but can be shrunk for quick runs
(the benchmarks do exactly that).
"""

from repro.experiments.cells import (
    CellSpec,
    WorkloadSpec,
    register_workload_kind,
)
from repro.experiments.parallel import (
    CellTiming,
    ResultCache,
    format_cell_timings,
    run_cells,
)
from repro.experiments.runner import (
    SeedSweepStats,
    SimulationEnv,
    WorkloadResult,
    build_env,
    measure,
    run_workloads,
    solo_baseline,
    sweep_seeds,
)

__all__ = [
    "CellSpec",
    "CellTiming",
    "ResultCache",
    "SeedSweepStats",
    "SimulationEnv",
    "WorkloadResult",
    "WorkloadSpec",
    "build_env",
    "format_cell_timings",
    "measure",
    "register_workload_kind",
    "run_cells",
    "run_workloads",
    "solo_baseline",
    "sweep_seeds",
]
