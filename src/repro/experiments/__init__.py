"""Experiment drivers — one module per paper table/figure.

Every driver exposes a ``run(...)`` function returning structured results
and a ``main()`` that prints the paper-style table; the CLI
(``python -m repro <experiment>``) dispatches to them.  Durations default
to values long enough for steady state but can be shrunk for quick runs
(the benchmarks do exactly that).
"""

from repro.experiments.runner import (
    SeedSweepStats,
    SimulationEnv,
    WorkloadResult,
    build_env,
    measure,
    run_workloads,
    solo_baseline,
    sweep_seeds,
)

__all__ = [
    "SeedSweepStats",
    "SimulationEnv",
    "WorkloadResult",
    "build_env",
    "measure",
    "run_workloads",
    "solo_baseline",
    "sweep_seeds",
]
