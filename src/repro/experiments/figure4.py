"""Figure 4 — standalone slowdown of each application under each scheduler.

Every application runs alone; slowdown is the ratio of its mean round time
under a scheduler to that under direct device access.  The paper's shape:
(engaged) Timeslice is costly for small-request applications, Disengaged
Timeslice stays within ~2%, Disengaged Fair Queueing within ~5%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.cells import CellSpec, WorkloadSpec
from repro.experiments.parallel import CellTiming, ResultCache, run_cells
from repro.metrics.tables import format_table
from repro.workloads.profiles import APP_PROFILES

SCHEDULERS = ("timeslice", "disengaged-timeslice", "dfq")


@dataclass(frozen=True)
class Figure4Row:
    app: str
    direct_round_us: float
    slowdowns: dict[str, float]  # scheduler name -> slowdown vs direct


def cell_specs(
    duration_us: float,
    warmup_us: float,
    seed: int,
    names: Sequence[str],
    schedulers: Sequence[str],
) -> list[CellSpec]:
    """Per app: the direct-access baseline, then one cell per scheduler."""
    specs = []
    for name in names:
        workload = WorkloadSpec.app(name)
        specs.append(CellSpec.solo(workload, duration_us, warmup_us, seed))
        specs.extend(
            CellSpec(scheduler, (workload,), duration_us, warmup_us, seed)
            for scheduler in schedulers
        )
    return specs


def run(
    duration_us: float = 400_000.0,
    warmup_us: float = 60_000.0,
    seed: int = 0,
    apps: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = SCHEDULERS,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> list[Figure4Row]:
    names = list(apps) if apps is not None else sorted(APP_PROFILES)
    specs = cell_specs(duration_us, warmup_us, seed, names, schedulers)
    cells = iter(run_cells(specs, workers=workers, cache=cache, timings=timings))
    rows = []
    for name in names:
        base = next(iter(next(cells).values()))
        slowdowns = {}
        for scheduler in schedulers:
            result = next(iter(next(cells).values()))
            slowdowns[scheduler] = result.rounds.mean_us / base.rounds.mean_us
        rows.append(
            Figure4Row(
                app=name,
                direct_round_us=base.rounds.mean_us,
                slowdowns=slowdowns,
            )
        )
    return rows


def main(
    duration_us: float = 400_000.0,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> str:
    rows = run(
        duration_us=duration_us,
        seed=seed,
        workers=workers,
        cache=cache,
        timings=timings,
    )
    table = format_table(
        ["app", "direct round (us)"] + list(SCHEDULERS),
        [
            [row.app, row.direct_round_us]
            + [row.slowdowns[s] for s in SCHEDULERS]
            for row in rows
        ],
        title="Figure 4: standalone slowdown vs direct access "
        "(paper: engaged TS up to ~1.4x on small requests; DTS <=1.02; DFQ <=1.05)",
    )
    print(table)
    return table
