"""Chaos experiments: fault plans × schedulers under protection invariants.

The paper's protection story (Sections 1, 3) is argued against a
*well-behaved* device; :mod:`repro.faults` lets the device, the driver
stack, and NEON's introspection all misbehave on purpose.  This driver
sweeps a catalog of fault plans across the three hardened schedulers and
asserts, automatically, that protection survives:

* **no well-behaved starvation** — the untargeted bystander keeps
  completing rounds and is never killed;
* **accounted incidents** — every watchdog detection is matched by a
  recovery or an escalation (``detections == recoveries + escalations``
  per task), so no fault is silently dropped;
* **termination** — every simulation reaches its horizon (drains,
  retries, and backoffs are all bounded);
* **clean device state** — after the run no dead task retains a live
  channel and no engine is executing a dead channel's request (checked
  serially with ground-truth access by :func:`deep_check`).

Cells fan out over the experiment farm (``--workers``) and share the
content-keyed result cache; fault plans hash into the cache key, so
chaos cells never collide with the paper-figure cells.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments.cells import CellSpec, WorkloadSpec
from repro.experiments.parallel import (
    CellTiming,
    ResultCache,
    format_cell_timings,
    run_cells,
)
from repro.experiments.runner import WorkloadResult, build_env, run_workloads
from repro.faults import registry as points
from repro.faults.plan import FaultPlan, FaultSpec
from repro.metrics.tables import format_table
from repro.osmodel.costs import CostParams
from repro.workloads.throttle import Throttle

#: Schedulers under test — the three that manage (direct access has no
#: watchdog and nothing to harden).
SCHEDULERS = ("timeslice", "disengaged-timeslice", "dfq")

VICTIM = "victim"
BYSTANDER = "bystander"

#: Chaos horizon: long enough that the slowest ladder (detect → two
#: backed-off retries → degrade → strike-two detect → retries → escalate,
#: ~175 ms per episode at the 25 ms drain deadline) settles before the
#: run ends, so every detection meets its resolution inside the trace.
DURATION_US = 500_000.0
WARMUP_US = 50_000.0


def chaos_costs() -> CostParams:
    """Costs with a tight runaway threshold so faults resolve in-run."""
    costs = CostParams()
    costs.max_request_us = 25_000.0
    return costs


# ----------------------------------------------------------------------
# The plan catalog
# ----------------------------------------------------------------------
def builtin_plans() -> dict[str, FaultPlan]:
    """Named fault plans covering every registered injection point.

    All plans target the ``victim`` task where the point supports
    targeting, leaving ``bystander`` as the well-behaved control; the
    ``none`` plan is the empty-identity control.
    """
    window = dict(start_us=WARMUP_US, end_us=DURATION_US)
    plans = {
        "none": FaultPlan(name="none"),
        "hang": FaultPlan(
            name="hang",
            specs=(
                FaultSpec(points.GPU_REQUEST_HANG, count=1,
                          target_task=VICTIM, **window),
            ),
        ),
        "slowdown": FaultPlan(
            name="slowdown",
            specs=(
                FaultSpec(points.GPU_REQUEST_SLOWDOWN, factor=200.0,
                          probability=0.25, count=2, target_task=VICTIM,
                          **window),
            ),
            seed=7,
        ),
        "refstall": FaultPlan(
            name="refstall",
            specs=(
                FaultSpec(points.GPU_REFCOUNTER_STALL, magnitude_us=40_000.0,
                          count=2, target_task=VICTIM, **window),
            ),
        ),
        "refstall-storm": FaultPlan(
            name="refstall-storm",
            specs=(
                FaultSpec(points.GPU_REFCOUNTER_STALL,
                          magnitude_us=2_000_000.0, count=1,
                          target_task=VICTIM, **window),
            ),
        ),
        "spurious": FaultPlan(
            name="spurious",
            specs=(
                FaultSpec(points.GPU_SPURIOUS_COMPLETION, count=3,
                          target_task=VICTIM, **window),
            ),
        ),
        "pollstall": FaultPlan(
            name="pollstall",
            specs=(
                FaultSpec(points.KERNEL_POLL_STALL, magnitude_us=30_000.0,
                          probability=0.05, **window),
            ),
            seed=11,
        ),
        "stalescan": FaultPlan(
            name="stalescan",
            specs=(
                FaultSpec(points.NEON_STALE_SCAN, probability=0.5, **window),
            ),
            seed=13,
        ),
        "discovery": FaultPlan(
            name="discovery",
            specs=(
                FaultSpec(points.NEON_DISCOVERY_CORRUPTION,
                          magnitude_us=20_000.0, count=1),
            ),
        ),
        "jitter": FaultPlan(
            name="jitter",
            specs=(
                FaultSpec(points.GPU_CONTEXT_SWITCH_SPIKE,
                          magnitude_us=150.0, probability=0.2, **window),
                FaultSpec(points.KERNEL_SUBMIT_LATENCY, magnitude_us=80.0,
                          probability=0.2, **window),
                FaultSpec(points.KERNEL_FAULT_DELAY, magnitude_us=120.0,
                          probability=0.2, **window),
                FaultSpec(points.KERNEL_FAULT_DROP, magnitude_us=400.0,
                          probability=0.05, **window),
                FaultSpec(points.NEON_BARRIER_STALL, magnitude_us=200.0,
                          probability=0.2, **window),
            ),
            seed=17,
        ),
    }
    plans["mixed"] = FaultPlan.compose(
        "mixed", plans["hang"], plans["refstall"], plans["jitter"], seed=23,
    )
    return plans


def chaos_cell(
    plan: FaultPlan,
    scheduler: str,
    duration_us: float = DURATION_US,
    seed: int = 0,
) -> CellSpec:
    """One chaos cell: victim + bystander under ``scheduler`` and ``plan``."""
    return CellSpec(
        scheduler=scheduler,
        workloads=(
            WorkloadSpec.throttle(800.0, name=VICTIM),
            WorkloadSpec.throttle(800.0, name=BYSTANDER),
        ),
        duration_us=duration_us,
        warmup_us=WARMUP_US,
        seed=seed,
        costs=chaos_costs(),
        fault_plan=plan if plan.specs else None,
    )


# ----------------------------------------------------------------------
# Invariants
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosOutcome:
    """One (plan, scheduler) cell plus its invariant verdict."""

    plan: str
    scheduler: str
    injected: float
    detections: float
    recoveries: float
    escalations: float
    retries: float
    victim_fate: str
    bystander_rounds: int
    violations: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


def check_invariants(
    plan: FaultPlan, results: dict[str, WorkloadResult]
) -> list[str]:
    """Protection-invariant assertions over one cell's results."""
    violations: list[str] = []
    for name in sorted(results):
        result = results[name]
        detections = result.metrics.get("fault_detections", 0.0)
        recoveries = result.metrics.get("fault_recoveries", 0.0)
        escalations = result.metrics.get("fault_escalations", 0.0)
        if detections != recoveries + escalations:
            violations.append(
                f"{name}: {detections:g} detections vs "
                f"{recoveries:g} recoveries + {escalations:g} escalations"
            )
        if not plan.specs and (
            detections or result.metrics.get("faults_injected", 0.0)
        ):
            violations.append(f"{name}: fault activity under the empty plan")
    bystander = results.get(BYSTANDER)
    if bystander is None:
        violations.append("bystander result missing")
    else:
        if bystander.killed:
            violations.append(
                f"bystander killed: {bystander.kill_reason}"
            )
        if bystander.rounds.count == 0:
            violations.append("bystander starved (zero rounds past warmup)")
    return violations


def _outcome(
    plan: FaultPlan, scheduler: str, results: dict[str, WorkloadResult]
) -> ChaosOutcome:
    def total(metric: str) -> float:
        return sum(r.metrics.get(metric, 0.0) for r in results.values())

    victim = results.get(VICTIM)
    if victim is None:
        fate = "missing"
    elif victim.killed:
        fate = f"killed ({victim.kill_reason})"
    else:
        fate = "alive"
    bystander = results.get(BYSTANDER)
    return ChaosOutcome(
        plan=plan.name,
        scheduler=scheduler,
        injected=total("faults_injected"),
        detections=total("fault_detections"),
        recoveries=total("fault_recoveries"),
        escalations=total("fault_escalations"),
        retries=total("watchdog_retries"),
        victim_fate=fate,
        bystander_rounds=bystander.rounds.count if bystander else 0,
        violations=tuple(check_invariants(plan, results)),
    )


# ----------------------------------------------------------------------
# The matrix
# ----------------------------------------------------------------------
def run_matrix(
    plan_names: Optional[Sequence[str]] = None,
    schedulers: Sequence[str] = SCHEDULERS,
    duration_us: float = DURATION_US,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> list[ChaosOutcome]:
    """Run plans × schedulers on the cell farm and judge every cell."""
    catalog = builtin_plans()
    if plan_names is None:
        plan_names = list(catalog)
    unknown = [name for name in plan_names if name not in catalog]
    if unknown:
        known = ", ".join(catalog)
        raise KeyError(f"unknown plan(s) {unknown}; known: {known}")
    pairs = [
        (catalog[name], scheduler)
        for name in plan_names
        for scheduler in schedulers
    ]
    specs = [
        chaos_cell(plan, scheduler, duration_us, seed)
        for plan, scheduler in pairs
    ]
    all_results = run_cells(specs, workers=workers, cache=cache,
                            timings=timings)
    return [
        _outcome(plan, scheduler, results)
        for (plan, scheduler), results in zip(pairs, all_results)
    ]


def deep_check(
    plan: "FaultPlan | str",
    scheduler: str,
    duration_us: float = DURATION_US,
    seed: int = 0,
) -> list[str]:
    """Serial ground-truth device-state check for one cell.

    Runs outside the cell farm so the finished :class:`SimulationEnv` can
    be inspected: dead tasks must hold no live channels, and no engine
    may still be executing a dead channel's request.  ``plan`` is a
    builtin plan name or a :class:`FaultPlan`.
    """
    if isinstance(plan, str):
        plan = builtin_plans()[plan]
    env = build_env(
        scheduler,
        seed=seed,
        costs=chaos_costs(),
        fault_plan=plan if plan.specs else None,
    )
    workloads = [
        Throttle(800.0, name=VICTIM),
        Throttle(800.0, name=BYSTANDER),
    ]
    results = run_workloads(env, workloads, duration_us, WARMUP_US)
    violations = check_invariants(plan, results)
    for channel_id in sorted(env.device.channels):
        channel = env.device.channels[channel_id]
        if not channel.task.alive and not channel.dead:
            violations.append(
                f"dead task {channel.task.name} still owns live "
                f"channel {channel_id}"
            )
    for engine in env.device.engines:
        running = engine.current_channel
        if running is not None and running.dead:
            violations.append(
                f"engine {engine.name} executing dead channel "
                f"{running.channel_id}"
            )
    return violations


# ----------------------------------------------------------------------
# Reporting / CLI
# ----------------------------------------------------------------------
def format_outcomes(outcomes: Sequence[ChaosOutcome]) -> str:
    rows = []
    for outcome in outcomes:
        verdict = "OK" if outcome.ok else "; ".join(outcome.violations)
        rows.append([
            outcome.plan,
            outcome.scheduler,
            f"{outcome.injected:g}",
            f"{outcome.detections:g}",
            f"{outcome.recoveries:g}",
            f"{outcome.escalations:g}",
            f"{outcome.retries:g}",
            outcome.victim_fate,
            outcome.bystander_rounds,
            verdict,
        ])
    return format_table(
        ["plan", "scheduler", "injected", "detected", "recovered",
         "escalated", "retries", "victim", "bystander rounds", "verdict"],
        rows,
        title="Chaos matrix: fault plans vs hardened schedulers "
        "(every incident accounted, no bystander starvation)",
    )


def main(
    duration_us: float = DURATION_US,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
    plan_names: Optional[Sequence[str]] = None,
) -> str:
    outcomes = run_matrix(
        plan_names=plan_names,
        duration_us=duration_us,
        seed=seed,
        workers=workers,
        cache=cache,
        timings=timings,
    )
    table = format_outcomes(outcomes)
    print(table)
    return table


def cli_main(argv: Optional[Sequence[str]] = None) -> int:
    """The ``repro chaos`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description="Fault-injection chaos matrix over the hardened "
        "schedulers (see docs/FAULTS.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    matrix = sub.add_parser("matrix", help="run plans × schedulers and "
                            "assert the protection invariants")
    matrix.add_argument("--plans", default=None,
                        help="comma-separated plan names (default: all)")
    matrix.add_argument("--schedulers", default=",".join(SCHEDULERS),
                        help="comma-separated scheduler names")
    matrix.add_argument("--duration-ms", type=float,
                        default=DURATION_US / 1000.0)
    matrix.add_argument("--seed", type=int, default=0)
    matrix.add_argument("--workers", type=int, default=1)
    matrix.add_argument("--cache-dir", type=Path, default=None)
    matrix.add_argument("--strict", action="store_true",
                        help="exit nonzero when any invariant is violated")

    run = sub.add_parser("run", help="run one plan serially with the "
                         "ground-truth device-state deep check")
    run.add_argument("plan", help="builtin plan name, or a JSON plan file")
    run.add_argument("--scheduler", default="dfq", choices=SCHEDULERS)
    run.add_argument("--duration-ms", type=float,
                     default=DURATION_US / 1000.0)
    run.add_argument("--seed", type=int, default=0)

    sub.add_parser("plans", help="list builtin fault plans")

    args = parser.parse_args(argv)
    if args.command == "plans":
        for name, plan in builtin_plans().items():
            touched = ", ".join(plan.points()) or "(empty)"
            print(f"{name:16s} {touched}")
        return 0
    if args.command == "run":
        catalog = builtin_plans()
        if args.plan in catalog:
            plan = catalog[args.plan]
        elif Path(args.plan).is_file():
            plan = FaultPlan.load(args.plan)
        else:
            known = ", ".join(catalog)
            print(f"unknown plan {args.plan!r} (known: {known}, or a JSON "
                  "plan file)", file=sys.stderr)
            return 2
        violations = deep_check(
            plan, args.scheduler,
            duration_us=args.duration_ms * 1000.0, seed=args.seed,
        )
        label = plan.name or args.plan
        if violations:
            for violation in violations:
                print(f"VIOLATION: {violation}")
            return 1
        print(f"{label} × {args.scheduler}: all invariants hold")
        return 0

    cache = None if args.cache_dir is None else ResultCache(args.cache_dir)
    if cache is None:
        cache = ResultCache()
    timings: list[CellTiming] = []
    plan_names = (
        [name.strip() for name in args.plans.split(",") if name.strip()]
        if args.plans
        else None
    )
    schedulers = [
        name.strip() for name in args.schedulers.split(",") if name.strip()
    ]
    outcomes = run_matrix(
        plan_names=plan_names,
        schedulers=schedulers,
        duration_us=args.duration_ms * 1000.0,
        seed=args.seed,
        workers=args.workers,
        cache=cache,
        timings=timings,
    )
    print(format_outcomes(outcomes))
    if timings:
        print(format_cell_timings(timings), file=sys.stderr)
    failed = [outcome for outcome in outcomes if not outcome.ok]
    if failed and args.strict:
        return 1
    return 0
