"""Figure 10 — efficiency under nonsaturating workloads.

Same runs as Figure 9, reported as concurrency efficiency.  At an 80%
Throttle sleep ratio the paper measured losses vs direct access of 36%
(engaged Timeslice), 34% (Disengaged Timeslice), and essentially 0%
(Disengaged Fair Queueing) — the work-conservation payoff of DFQ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments import figure9
from repro.experiments.parallel import CellTiming, ResultCache
from repro.metrics.tables import format_table


@dataclass(frozen=True)
class Figure10Row:
    scheduler: str
    sleep_ratio: float
    efficiency: float
    loss_vs_direct: float


def run(
    duration_us: float = 500_000.0,
    warmup_us: float = 80_000.0,
    seed: int = 0,
    ratios: Sequence[float] = figure9.SLEEP_RATIOS,
    schedulers: Sequence[str] = figure9.SCHEDULERS,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> list[Figure10Row]:
    cells = figure9.run(
        duration_us,
        warmup_us,
        seed,
        ratios,
        schedulers,
        workers=workers,
        cache=cache,
        timings=timings,
    )
    direct = {
        cell.sleep_ratio: cell.efficiency
        for cell in cells
        if cell.scheduler == "direct"
    }
    rows = []
    for cell in cells:
        reference = direct[cell.sleep_ratio]
        loss = max(0.0, 1.0 - cell.efficiency / reference)
        rows.append(
            Figure10Row(cell.scheduler, cell.sleep_ratio, cell.efficiency, loss)
        )
    return rows


def main(
    duration_us: float = 500_000.0,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> str:
    rows = run(
        duration_us=duration_us,
        seed=seed,
        workers=workers,
        cache=cache,
        timings=timings,
    )
    table = format_table(
        ["scheduler", "sleep ratio", "efficiency", "loss vs direct"],
        [
            [
                row.scheduler,
                row.sleep_ratio,
                row.efficiency,
                f"{100 * row.loss_vs_direct:.0f}%",
            ]
            for row in rows
        ],
        title="Figure 10: efficiency with nonsaturating Throttle "
        "(paper @80% sleep: TS -36%, DTS -34%, DFQ ~0%)",
    )
    print(table)
    return table
