"""Table 1 — benchmark characteristics (round time, mean request size).

Runs every application standalone under direct device access and reports
the emergent per-round run time and average request size next to the
paper's measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.runner import solo_baseline
from repro.metrics.tables import format_table
from repro.workloads.apps import make_app
from repro.workloads.profiles import APP_PROFILES


@dataclass(frozen=True)
class Table1Row:
    app: str
    area: str
    paper_round_us: float
    measured_round_us: float
    paper_request_us: Optional[float]
    measured_request_us: float

    @property
    def round_error(self) -> float:
        """Relative error of the measured round time vs the paper."""
        return self.measured_round_us / self.paper_round_us - 1.0


def run(
    duration_us: float = 300_000.0,
    warmup_us: float = 50_000.0,
    seed: int = 0,
    apps: Optional[Sequence[str]] = None,
) -> list[Table1Row]:
    names = list(apps) if apps is not None else sorted(APP_PROFILES)
    rows = []
    for name in names:
        profile = APP_PROFILES[name]
        result = solo_baseline(
            lambda name=name: make_app(name), duration_us, warmup_us, seed
        )
        paper_request = profile.paper_request_us
        if paper_request is None and profile.paper_request_split is not None:
            compute, graphics = profile.paper_request_split
            paper_request = None  # reported as a split in the table
        rows.append(
            Table1Row(
                app=name,
                area=profile.area,
                paper_round_us=profile.paper_round_us,
                measured_round_us=result.rounds.mean_us,
                paper_request_us=profile.paper_request_us,
                measured_request_us=result.mean_request_us,
            )
        )
    return rows


def main(duration_us: float = 300_000.0, seed: int = 0) -> str:
    rows = run(duration_us=duration_us, seed=seed)
    table_rows = []
    for row in rows:
        profile = APP_PROFILES[row.app]
        if profile.paper_request_split is not None:
            paper_request = "/".join(
                f"{v:g}" for v in profile.paper_request_split
            )
        else:
            paper_request = f"{row.paper_request_us:g}"
        table_rows.append(
            [
                row.app,
                row.area,
                row.paper_round_us,
                row.measured_round_us,
                paper_request,
                row.measured_request_us,
            ]
        )
    text = format_table(
        ["app", "area", "round(paper)", "round(ours)", "req(paper)", "req(ours)"],
        table_rows,
        title="Table 1: benchmark characteristics (µs)",
    )
    print(text)
    return text
