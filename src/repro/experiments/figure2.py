"""Figure 2 — CDFs of request inter-arrival and service periods.

Standalone runs of the three interactive applications (glxgears,
oclParticles, simpleTexture3D) under direct access; the paper's headline
is that a large share of requests are short and submitted back-to-back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import build_env, run_workloads
from repro.metrics.cdf import Cdf, log2_bin_histogram
from repro.metrics.tables import format_table
from repro.workloads.apps import make_app

FIGURE2_APPS = ("glxgears", "oclParticles", "simpleTexture3D")


@dataclass(frozen=True)
class Figure2Series:
    app: str
    interarrival: Cdf
    service: Cdf

    @property
    def interarrival_bins(self) -> list[float]:
        return log2_bin_histogram(self.interarrival.samples)

    @property
    def service_bins(self) -> list[float]:
        return log2_bin_histogram(self.service.samples)

    @property
    def short_request_fraction(self) -> float:
        """Fraction of requests serviced in under 16 µs (paper: a large
        share of requests are short)."""
        return self.service.fraction_below(16.0)


def run(
    duration_us: float = 200_000.0,
    warmup_us: float = 20_000.0,
    seed: int = 0,
    apps: Sequence[str] = FIGURE2_APPS,
) -> list[Figure2Series]:
    series = []
    for name in apps:
        env = build_env("direct", seed=seed)
        workload = make_app(name)
        run_workloads(env, [workload], duration_us, warmup_us)
        submits = sorted(
            request.submit_time
            for request in workload.requests
            if request.submit_time is not None and request.submit_time >= warmup_us
        )
        interarrivals = [
            later - earlier for earlier, later in zip(submits, submits[1:])
        ]
        services = [
            request.service_time
            for request in workload.requests
            if request.service_time is not None
            and not request.aborted
            and not math.isinf(request.size_us)
            and (request.submit_time or 0.0) >= warmup_us
        ]
        series.append(
            Figure2Series(
                app=name,
                interarrival=Cdf(interarrivals),
                service=Cdf(services),
            )
        )
    return series


def main(duration_us: float = 200_000.0, seed: int = 0) -> str:
    series = run(duration_us=duration_us, seed=seed)
    bins = list(range(0, 14))
    rows = []
    for entry in series:
        service_bins = entry.service_bins
        rows.append(
            [entry.app, "service"]
            + [service_bins[index] for index in bins]
        )
        inter_bins = entry.interarrival_bins
        rows.append(
            [entry.app, "inter-arrival"]
            + [inter_bins[index] for index in bins]
        )
    text = format_table(
        ["app", "series"] + [f"<2^{index + 1}us" for index in bins],
        rows,
        title="Figure 2: cumulative % of requests per log2(µs) bin",
    )
    print(text)
    for entry in series:
        print(
            f"{entry.app}: {100 * entry.short_request_fraction:.0f}% of "
            "requests serviced in <16us"
        )
    return text
