"""Protection experiments (Sections 1, 3.1).

Two attacks from the paper's motivation:

* an **infinite-loop request** that would monopolize the device forever —
  the schedulers' drain-timeout watchdog must kill the offender and let
  the victim recover;
* a **greedy batcher** that inflates request sizes to hog a
  work-conserving device — fair schedulers must cap it near 50%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import build_env, measure, run_workloads
from repro.metrics.tables import format_table
from repro.osmodel.costs import CostParams
from repro.workloads.adversarial import GreedyBatcher, InfiniteKernel
from repro.workloads.apps import make_app
from repro.workloads.throttle import Throttle

SCHEDULERS = ("direct", "timeslice", "disengaged-timeslice", "dfq")


@dataclass(frozen=True)
class InfiniteLoopOutcome:
    scheduler: str
    attacker_killed: bool
    kill_reason: str
    victim_rounds_after_attack: int
    victim_starved: bool


@dataclass(frozen=True)
class BatcherOutcome:
    scheduler: str
    batcher_share: float
    victim_share: float


def _protection_costs() -> CostParams:
    """Costs with a tight runaway threshold so short runs show the kill."""
    costs = CostParams()
    costs.max_request_us = 50_000.0
    return costs


def run_infinite_loop(
    duration_us: float = 400_000.0,
    seed: int = 0,
    schedulers: Sequence[str] = SCHEDULERS,
) -> list[InfiniteLoopOutcome]:
    outcomes = []
    attack_start_us = duration_us / 4
    for scheduler in schedulers:
        env = build_env(scheduler, seed=seed, costs=_protection_costs())
        attacker = InfiniteKernel(normal_size_us=100.0, normal_requests=50)
        victim = make_app("DCT", instance="victim")
        results = run_workloads(
            env, [attacker, victim], duration_us, warmup_us=0.0
        )
        victim_after = victim.rounds.stats(warmup_us=attack_start_us)
        outcomes.append(
            InfiniteLoopOutcome(
                scheduler=scheduler,
                attacker_killed=attacker.killed,
                kill_reason=results[attacker.name].kill_reason or "-",
                victim_rounds_after_attack=victim_after.count,
                victim_starved=victim_after.count == 0,
            )
        )
    return outcomes


def run_greedy_batcher(
    duration_us: float = 400_000.0,
    warmup_us: float = 60_000.0,
    seed: int = 0,
    schedulers: Sequence[str] = SCHEDULERS,
) -> list[BatcherOutcome]:
    outcomes = []
    batcher_factory = lambda: GreedyBatcher(work_unit_us=50.0, batch_factor=20)
    victim_factory = lambda: Throttle(50.0, name="victim")
    for scheduler in schedulers:
        results = measure(
            scheduler,
            [batcher_factory, victim_factory],
            duration_us,
            warmup_us,
            seed,
        )
        batcher = results["greedy-batcher"]
        victim = results["victim"]
        total = batcher.ground_truth_usage_us + victim.ground_truth_usage_us
        outcomes.append(
            BatcherOutcome(
                scheduler=scheduler,
                batcher_share=batcher.ground_truth_usage_us / total,
                victim_share=victim.ground_truth_usage_us / total,
            )
        )
    return outcomes


def main(duration_us: float = 400_000.0, seed: int = 0) -> str:
    loop_outcomes = run_infinite_loop(duration_us=duration_us, seed=seed)
    loop_table = format_table(
        ["scheduler", "attacker killed", "victim rounds after attack", "victim starved"],
        [
            [o.scheduler, o.attacker_killed, o.victim_rounds_after_attack, o.victim_starved]
            for o in loop_outcomes
        ],
        title="Infinite-loop request: kill-and-recover "
        "(direct access starves; schedulers must not)",
    )
    batch_outcomes = run_greedy_batcher(duration_us=duration_us, seed=seed)
    batch_table = format_table(
        ["scheduler", "batcher device share", "victim device share"],
        [
            [o.scheduler, f"{100 * o.batcher_share:.0f}%", f"{100 * o.victim_share:.0f}%"]
            for o in batch_outcomes
        ],
        title="Greedy batcher vs equal-work victim "
        "(direct access rewards batching; fair schedulers split ~50/50)",
    )
    print(loop_table)
    print()
    print(batch_table)
    return loop_table + "\n\n" + batch_table
