"""Figure 8 — scalability to four concurrent applications.

One large-request Throttle plus three small-request applications
(BinarySearch, DCT, FFT).  Fair sharing should hold each task near the
expected 4–5× slowdown; efficiency losses vs direct access were 13%
(engaged Timeslice), 8% (Disengaged Timeslice) and 7% (DFQ) in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import measure, solo_baseline
from repro.metrics.efficiency import concurrency_efficiency
from repro.metrics.tables import format_table
from repro.workloads.apps import make_app
from repro.workloads.throttle import Throttle

FOUR_WAY_APPS = ("BinarySearch", "DCT", "FFT")
THROTTLE_SIZE_US = 1700.0
SCHEDULERS = ("direct", "timeslice", "disengaged-timeslice", "dfq")


@dataclass(frozen=True)
class Figure8Row:
    scheduler: str
    slowdowns: dict[str, float]
    efficiency: float

    @property
    def mean_slowdown(self) -> float:
        return sum(self.slowdowns.values()) / len(self.slowdowns)


def run(
    duration_us: float = 600_000.0,
    warmup_us: float = 100_000.0,
    seed: int = 0,
    schedulers: Sequence[str] = SCHEDULERS,
) -> list[Figure8Row]:
    factories = {name: (lambda name=name: make_app(name)) for name in FOUR_WAY_APPS}
    throttle_name = f"throttle-{THROTTLE_SIZE_US:g}us"
    factories[throttle_name] = lambda: Throttle(THROTTLE_SIZE_US)
    baselines = {
        name: solo_baseline(factory, duration_us, warmup_us, seed)
        for name, factory in factories.items()
    }
    rows = []
    for scheduler in schedulers:
        results = measure(
            scheduler, list(factories.values()), duration_us, warmup_us, seed
        )
        slowdowns = {
            name: results[name].rounds.mean_us / baselines[name].rounds.mean_us
            for name in factories
        }
        efficiency = concurrency_efficiency(
            (baselines[name].rounds.mean_us, results[name].rounds.mean_us)
            for name in factories
        )
        rows.append(Figure8Row(scheduler, slowdowns, efficiency))
    return rows


def main(duration_us: float = 600_000.0, seed: int = 0) -> str:
    rows = run(duration_us=duration_us, seed=seed)
    names = list(rows[0].slowdowns)
    table = format_table(
        ["scheduler"] + [f"{name} slowdown" for name in names] + ["efficiency"],
        [
            [row.scheduler]
            + [row.slowdowns[name] for name in names]
            + [row.efficiency]
            for row in rows
        ],
        title="Figure 8: four-way fairness (expected ~4-5x each) and efficiency",
    )
    print(table)
    return table
