"""Figure 8 — scalability to four concurrent applications.

One large-request Throttle plus three small-request applications
(BinarySearch, DCT, FFT).  Fair sharing should hold each task near the
expected 4–5× slowdown; efficiency losses vs direct access were 13%
(engaged Timeslice), 8% (Disengaged Timeslice) and 7% (DFQ) in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.cells import CellSpec, WorkloadSpec
from repro.experiments.parallel import CellTiming, ResultCache, run_cells
from repro.metrics.efficiency import concurrency_efficiency
from repro.metrics.tables import format_table

FOUR_WAY_APPS = ("BinarySearch", "DCT", "FFT")
THROTTLE_SIZE_US = 1700.0
SCHEDULERS = ("direct", "timeslice", "disengaged-timeslice", "dfq")


@dataclass(frozen=True)
class Figure8Row:
    scheduler: str
    slowdowns: dict[str, float]
    efficiency: float

    @property
    def mean_slowdown(self) -> float:
        return sum(self.slowdowns.values()) / len(self.slowdowns)


def cell_specs(
    duration_us: float,
    warmup_us: float,
    seed: int,
    schedulers: Sequence[str],
) -> tuple[list[str], list[CellSpec]]:
    """Solo baselines for all four workloads, then one cell per scheduler."""
    throttle_name = f"throttle-{THROTTLE_SIZE_US:g}us"
    names = list(FOUR_WAY_APPS) + [throttle_name]
    workloads = tuple(
        WorkloadSpec.app(name) for name in FOUR_WAY_APPS
    ) + (WorkloadSpec.throttle(THROTTLE_SIZE_US),)
    specs = [
        CellSpec.solo(workload, duration_us, warmup_us, seed)
        for workload in workloads
    ]
    specs.extend(
        CellSpec(scheduler, workloads, duration_us, warmup_us, seed)
        for scheduler in schedulers
    )
    return names, specs


def run(
    duration_us: float = 600_000.0,
    warmup_us: float = 100_000.0,
    seed: int = 0,
    schedulers: Sequence[str] = SCHEDULERS,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> list[Figure8Row]:
    names, specs = cell_specs(duration_us, warmup_us, seed, schedulers)
    cells = run_cells(specs, workers=workers, cache=cache, timings=timings)
    baselines = {
        name: next(iter(cells[index].values()))
        for index, name in enumerate(names)
    }
    rows = []
    for offset, scheduler in enumerate(schedulers):
        results = cells[len(names) + offset]
        slowdowns = {
            name: results[name].rounds.mean_us / baselines[name].rounds.mean_us
            for name in names
        }
        efficiency = concurrency_efficiency(
            (baselines[name].rounds.mean_us, results[name].rounds.mean_us)
            for name in names
        )
        rows.append(Figure8Row(scheduler, slowdowns, efficiency))
    return rows


def main(
    duration_us: float = 600_000.0,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> str:
    rows = run(
        duration_us=duration_us,
        seed=seed,
        workers=workers,
        cache=cache,
        timings=timings,
    )
    names = list(rows[0].slowdowns)
    table = format_table(
        ["scheduler"] + [f"{name} slowdown" for name in names] + ["efficiency"],
        [
            [row.scheduler]
            + [row.slowdowns[name] for name in names]
            + [row.efficiency]
            for row in rows
        ],
        title="Figure 8: four-way fairness (expected ~4-5x each) and efficiency",
    )
    print(table)
    return table
