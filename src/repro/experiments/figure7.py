"""Figure 7 — concurrency efficiency of the Figure 6 pairs.

Efficiency = Σᵢ tᵢ(alone)/tᵢ(concurrent).  Paper's average/max losses vs
direct access: engaged Timeslice 19%/42%, Disengaged Timeslice 10%/35%,
Disengaged Fair Queueing 4%/18%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments import figure6
from repro.experiments.parallel import CellTiming, ResultCache
from repro.metrics.tables import format_table


@dataclass(frozen=True)
class EfficiencySummary:
    scheduler: str
    mean_efficiency: float
    mean_loss_vs_direct: float
    max_loss_vs_direct: float


def run(
    duration_us: float = 400_000.0,
    warmup_us: float = 60_000.0,
    seed: int = 0,
    apps: Sequence[str] = figure6.PAIR_APPS,
    sizes: Sequence[float] = figure6.THROTTLE_SIZES_US,
    schedulers: Sequence[str] = figure6.SCHEDULERS,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> tuple[list[figure6.PairOutcome], list[EfficiencySummary]]:
    outcomes = figure6.run(
        duration_us,
        warmup_us,
        seed,
        apps,
        sizes,
        schedulers,
        workers=workers,
        cache=cache,
        timings=timings,
    )
    direct = {
        (outcome.app, outcome.throttle_size_us): outcome.efficiency
        for outcome in outcomes
        if outcome.scheduler == "direct"
    }
    summaries = []
    for scheduler in schedulers:
        if scheduler == "direct":
            continue
        losses = []
        efficiencies = []
        for outcome in outcomes:
            if outcome.scheduler != scheduler:
                continue
            reference = direct[(outcome.app, outcome.throttle_size_us)]
            efficiencies.append(outcome.efficiency)
            losses.append(max(0.0, 1.0 - outcome.efficiency / reference))
        summaries.append(
            EfficiencySummary(
                scheduler=scheduler,
                mean_efficiency=sum(efficiencies) / len(efficiencies),
                mean_loss_vs_direct=sum(losses) / len(losses),
                max_loss_vs_direct=max(losses),
            )
        )
    return outcomes, summaries


def main(
    duration_us: float = 400_000.0,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> str:
    outcomes, summaries = run(
        duration_us=duration_us,
        seed=seed,
        workers=workers,
        cache=cache,
        timings=timings,
    )
    cell_rows = [
        [
            outcome.app,
            outcome.throttle_size_us,
            outcome.scheduler,
            outcome.efficiency,
        ]
        for outcome in outcomes
    ]
    table = format_table(
        ["app", "throttle size (us)", "scheduler", "efficiency"],
        cell_rows,
        title="Figure 7: concurrency efficiency (1.0 = no loss)",
    )
    summary = format_table(
        ["scheduler", "mean efficiency", "mean loss vs direct", "max loss"],
        [
            [
                s.scheduler,
                s.mean_efficiency,
                f"{100 * s.mean_loss_vs_direct:.0f}%",
                f"{100 * s.max_loss_vs_direct:.0f}%",
            ]
            for s in summaries
        ],
        title="Summary (paper: TS 19%/42%, DTS 10%/35%, DFQ 4%/18%)",
    )
    print(table)
    print()
    print(summary)
    return table + "\n\n" + summary
