"""Figure 6 — fairness of pairwise concurrent executions.

Four application/Throttle pairs (one per paper row), several Throttle
request sizes (19 µs … 1.7 ms), four schedulers (one per paper column).
Each co-runner's round time is normalized to its standalone direct-access
run.  The paper's shape:

* direct access: wildly uneven (the larger-request task wins);
* all three paper schedulers: both co-runners near the fair 2×;
* under DFQ, glxgears suffers noticeably more than Throttle at small
  Throttle sizes (the graphics-arbitration anomaly) and oclParticles gets
  *more* than its share (multi-channel pipelining evades denial).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.experiments.cells import CellSpec, WorkloadSpec
from repro.experiments.parallel import CellTiming, ResultCache, run_cells
from repro.metrics.tables import format_table
from repro.workloads.base import Workload

PAIR_APPS = ("DCT", "FFT", "glxgears", "oclParticles")
THROTTLE_SIZES_US = (19.0, 110.0, 303.0, 1700.0)
SCHEDULERS = ("direct", "timeslice", "disengaged-timeslice", "dfq")


@dataclass(frozen=True)
class PairOutcome:
    """One cell of Figure 6: an app/Throttle pair under one scheduler."""

    app: str
    throttle_size_us: float
    scheduler: str
    app_alone_us: float
    app_concurrent_us: float
    throttle_alone_us: float
    throttle_concurrent_us: float

    @property
    def app_slowdown(self) -> float:
        return self.app_concurrent_us / self.app_alone_us

    @property
    def throttle_slowdown(self) -> float:
        return self.throttle_concurrent_us / self.throttle_alone_us

    @property
    def efficiency(self) -> float:
        """The paper's concurrency-efficiency metric for this pair."""
        return (
            self.app_alone_us / self.app_concurrent_us
            + self.throttle_alone_us / self.throttle_concurrent_us
        )


def cell_specs(
    duration_us: float = 400_000.0,
    warmup_us: float = 60_000.0,
    seed: int = 0,
    apps: Sequence[str] = PAIR_APPS,
    sizes: Sequence[float] = THROTTLE_SIZES_US,
    schedulers: Sequence[str] = SCHEDULERS,
    app_factories: Optional[dict[str, Callable[[], Workload]]] = None,
) -> list[CellSpec]:
    """Declare every simulation Figure 6 needs, baselines first.

    Order: per-app solo baselines, per-size Throttle solo baselines, then
    the app x size x scheduler grid — the same order the serial loop used,
    so results assemble positionally.
    """
    app_specs = {
        name: (
            WorkloadSpec.from_callable(app_factories[name])
            if app_factories is not None
            else WorkloadSpec.app(name)
        )
        for name in apps
    }
    throttle_specs = {size: WorkloadSpec.throttle(size) for size in sizes}
    specs = [
        CellSpec.solo(app_specs[name], duration_us, warmup_us, seed)
        for name in apps
    ]
    specs.extend(
        CellSpec.solo(throttle_specs[size], duration_us, warmup_us, seed)
        for size in sizes
    )
    for app in apps:
        for size in sizes:
            for scheduler in schedulers:
                specs.append(
                    CellSpec(
                        scheduler=scheduler,
                        workloads=(app_specs[app], throttle_specs[size]),
                        duration_us=duration_us,
                        warmup_us=warmup_us,
                        seed=seed,
                    )
                )
    return specs


def run(
    duration_us: float = 400_000.0,
    warmup_us: float = 60_000.0,
    seed: int = 0,
    apps: Sequence[str] = PAIR_APPS,
    sizes: Sequence[float] = THROTTLE_SIZES_US,
    schedulers: Sequence[str] = SCHEDULERS,
    app_factories: Optional[dict[str, Callable[[], Workload]]] = None,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> list[PairOutcome]:
    specs = cell_specs(
        duration_us, warmup_us, seed, apps, sizes, schedulers, app_factories
    )
    cells = run_cells(specs, workers=workers, cache=cache, timings=timings)
    app_bases = {
        name: next(iter(cells[index].values()))
        for index, name in enumerate(apps)
    }
    throttle_bases = {
        size: next(iter(cells[len(apps) + index].values()))
        for index, size in enumerate(sizes)
    }
    outcomes = []
    pair_cells = iter(cells[len(apps) + len(sizes):])
    for app in apps:
        for size in sizes:
            for scheduler in schedulers:
                results = next(pair_cells)
                app_result = results[app]
                throttle_result = results[f"throttle-{size:g}us"]
                outcomes.append(
                    PairOutcome(
                        app=app,
                        throttle_size_us=size,
                        scheduler=scheduler,
                        app_alone_us=app_bases[app].rounds.mean_us,
                        app_concurrent_us=app_result.rounds.mean_us,
                        throttle_alone_us=throttle_bases[size].rounds.mean_us,
                        throttle_concurrent_us=throttle_result.rounds.mean_us,
                    )
                )
    return outcomes


def main(
    duration_us: float = 400_000.0,
    seed: int = 0,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    timings: Optional[list[CellTiming]] = None,
) -> str:
    outcomes = run(
        duration_us=duration_us,
        seed=seed,
        workers=workers,
        cache=cache,
        timings=timings,
    )
    rows = [
        [
            outcome.app,
            outcome.throttle_size_us,
            outcome.scheduler,
            outcome.app_slowdown,
            outcome.throttle_slowdown,
        ]
        for outcome in outcomes
    ]
    table = format_table(
        ["app", "throttle size (us)", "scheduler", "app slowdown", "throttle slowdown"],
        rows,
        title="Figure 6: pairwise slowdowns vs standalone direct access "
        "(fair = both near 2.0)",
    )
    print(table)
    return table
