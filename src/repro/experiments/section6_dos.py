"""Section 6.3 — resource-exhaustion DoS attacks and their quota defenses.

Channels: a hog that opens contexts (one compute + one DMA channel each)
exhausts the device — the paper measured that after 48 contexts no other
application could use the GTX670.  The C-channels-per-task / D÷C-tasks
quota policy stops it early.

Memory: the paper's second abuse scenario — exhausting the 2 GB of
onboard RAM — is blocked by per-task memory accounting with a consumption
cap (the protection the paper sketches but leaves unexplored).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfResourcesError
from repro.experiments.runner import build_env
from repro.metrics.tables import format_table
from repro.osmodel.kernel import ChannelQuotaPolicy, MemoryQuotaPolicy
from repro.workloads.adversarial import ChannelHog, MemoryHog
from repro.workloads.throttle import Throttle


@dataclass(frozen=True)
class DosOutcome:
    quota_enabled: bool
    hog_contexts: int
    hog_channels: int
    hog_denied_reason: str
    victim_rounds: int
    victim_locked_out: bool


def run(duration_us: float = 50_000.0, seed: int = 0) -> list[DosOutcome]:
    outcomes = []
    for quota in (None, ChannelQuotaPolicy(channels_per_task=4)):
        env = build_env("direct", seed=seed, quota=quota)
        hog = ChannelHog()
        victim = Throttle(100.0, name="victim")
        hog.start(env.sim, env.kernel, env.rng)
        # Let the hog grab everything before the victim arrives.
        env.sim.run(until=duration_us / 2)
        victim.start(env.sim, env.kernel, env.rng)
        env.sim.run(until=duration_us)
        victim_rounds = len(victim.rounds)
        outcomes.append(
            DosOutcome(
                quota_enabled=quota is not None,
                hog_contexts=hog.contexts_opened,
                hog_channels=hog.channels_opened,
                hog_denied_reason=hog.denied or "-",
                victim_rounds=victim_rounds,
                victim_locked_out=victim_rounds == 0,
            )
        )
    return outcomes


@dataclass(frozen=True)
class MemoryDosOutcome:
    quota_enabled: bool
    hog_allocated_mib: float
    victim_denied: bool


def run_memory(duration_us: float = 30_000.0, seed: int = 0) -> list[MemoryDosOutcome]:
    """The memory-exhaustion variant: a hog grabs RAM, then a victim asks
    for a modest working set."""
    outcomes = []
    for quota in (None, MemoryQuotaPolicy(max_fraction=0.5)):
        env = build_env("direct", seed=seed, memory_quota=quota)
        hog = MemoryHog(chunk_mib=128.0)
        hog.start(env.sim, env.kernel, env.rng)
        env.sim.run(until=duration_us / 2)
        victim = env.kernel.create_task("victim")
        victim_context = env.kernel.open_context(victim)
        denied = False
        try:
            env.kernel.allocate_memory(victim, victim_context, 256.0)
        except OutOfResourcesError:
            denied = True
        outcomes.append(
            MemoryDosOutcome(
                quota_enabled=quota is not None,
                hog_allocated_mib=hog.allocated_mib,
                victim_denied=denied,
            )
        )
    return outcomes


def main(duration_us: float = 50_000.0, seed: int = 0) -> str:
    outcomes = run(duration_us=duration_us, seed=seed)
    table = format_table(
        [
            "quota",
            "hog contexts",
            "hog channels",
            "victim rounds",
            "victim locked out",
        ],
        [
            [
                "on" if o.quota_enabled else "off",
                o.hog_contexts,
                o.hog_channels,
                o.victim_rounds,
                o.victim_locked_out,
            ]
            for o in outcomes
        ],
        title="Section 6.3: channel-exhaustion DoS "
        "(paper: 48 contexts lock the device; quota policy prevents it)",
    )
    memory_outcomes = run_memory(seed=seed)
    memory_table = format_table(
        ["memory quota", "hog allocated (MiB)", "victim allocation denied"],
        [
            [
                "on" if o.quota_enabled else "off",
                o.hog_allocated_mib,
                o.victim_denied,
            ]
            for o in memory_outcomes
        ],
        title="Section 6.3: memory-exhaustion DoS (GTX670: 2048 MiB onboard)",
    )
    print(table)
    print()
    print(memory_table)
    return table + "\n\n" + memory_table
