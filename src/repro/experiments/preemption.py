"""Section 6.2 — hardware preemption support (what-if experiment).

The paper argues that true hardware preemption would let disengaged
schedulers "tolerate requests of arbitrary length, without sacrificing
interactivity or becoming vulnerable to infinite loops."  This experiment
runs the timeslice schedulers on a device model with preemption + runlist
masking enabled and shows:

* an infinite-loop task is *contained* to its fair share rather than
  killed — it keeps running, but cannot monopolize;
* huge (multi-slice) requests no longer induce overuse stalls for peers;
* the price is the per-preemption save/restore cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import build_env, run_workloads, solo_baseline
from repro.gpu.params import GpuParams
from repro.metrics.tables import format_table
from repro.osmodel.costs import CostParams
from repro.workloads.adversarial import InfiniteKernel
from repro.workloads.apps import make_app
from repro.workloads.throttle import Throttle

SCHEDULERS = ("timeslice", "disengaged-timeslice")


def _params(preemption: bool) -> GpuParams:
    params = GpuParams()
    params.preemption_supported = preemption
    return params


def _costs() -> CostParams:
    """Tight runaway threshold so kill decisions land within short runs."""
    costs = CostParams()
    costs.max_request_us = 60_000.0
    return costs


@dataclass(frozen=True)
class ContainmentOutcome:
    scheduler: str
    preemption: bool
    attacker_killed: bool
    attacker_share: float
    victim_slowdown: float
    preemptions: int


def run_containment(
    duration_us: float = 400_000.0,
    warmup_us: float = 80_000.0,
    seed: int = 0,
    schedulers: Sequence[str] = SCHEDULERS,
) -> list[ContainmentOutcome]:
    victim_base = solo_baseline(
        lambda: make_app("DCT", instance="victim"), duration_us, warmup_us, seed
    )
    outcomes = []
    for scheduler in schedulers:
        for preemption in (False, True):
            env = build_env(
                scheduler, seed=seed, gpu_params=_params(preemption),
                costs=_costs(),
            )
            attacker = InfiniteKernel(normal_size_us=100.0, normal_requests=10)
            victim = make_app("DCT", instance="victim")
            run_workloads(env, [attacker, victim], duration_us, warmup_us)
            total = env.device.task_usage(attacker.task) + env.device.task_usage(
                victim.task
            )
            outcomes.append(
                ContainmentOutcome(
                    scheduler=scheduler,
                    preemption=preemption,
                    attacker_killed=attacker.killed,
                    attacker_share=env.device.task_usage(attacker.task) / total,
                    victim_slowdown=victim.round_stats(warmup_us).mean_us
                    / victim_base.rounds.mean_us,
                    preemptions=env.device.main_engine.preemptions,
                )
            )
    return outcomes


@dataclass(frozen=True)
class LongRequestOutcome:
    scheduler: str
    preemption: bool
    long_task_slowdown: float
    small_task_slowdown: float
    small_task_p95_us: float


def run_long_requests(
    duration_us: float = 400_000.0,
    warmup_us: float = 80_000.0,
    seed: int = 0,
    schedulers: Sequence[str] = SCHEDULERS,
    long_request_us: float = 45_000.0,
) -> list[LongRequestOutcome]:
    """Multi-timeslice requests: without preemption the peer eats the
    overrun (overuse control repays it only on average); with preemption
    slice boundaries are enforced exactly."""
    long_base = solo_baseline(
        lambda: Throttle(long_request_us, name="long"), duration_us, warmup_us, seed
    )
    small_base = solo_baseline(
        lambda: Throttle(100.0, name="small"), duration_us, warmup_us, seed
    )
    outcomes = []
    for scheduler in schedulers:
        for preemption in (False, True):
            env = build_env(scheduler, seed=seed, gpu_params=_params(preemption))
            long_task = Throttle(long_request_us, name="long")
            small_task = Throttle(100.0, name="small")
            run_workloads(env, [long_task, small_task], duration_us, warmup_us)
            small_stats = small_task.round_stats(warmup_us)
            outcomes.append(
                LongRequestOutcome(
                    scheduler=scheduler,
                    preemption=preemption,
                    long_task_slowdown=long_task.round_stats(warmup_us).mean_us
                    / long_base.rounds.mean_us,
                    small_task_slowdown=small_stats.mean_us
                    / small_base.rounds.mean_us,
                    small_task_p95_us=small_stats.p95_us,
                )
            )
    return outcomes


def main(duration_us: float = 400_000.0, seed: int = 0) -> str:
    containment = run_containment(duration_us=duration_us, seed=seed)
    containment_table = format_table(
        ["scheduler", "preemption", "attacker killed", "attacker share",
         "victim slowdown", "preemptions"],
        [
            [
                o.scheduler,
                o.preemption,
                o.attacker_killed,
                f"{100 * o.attacker_share:.0f}%",
                o.victim_slowdown,
                o.preemptions,
            ]
            for o in containment
        ],
        title="Infinite-loop containment: kill (no preemption) vs "
        "fair-share containment (with preemption)",
    )
    long_requests = run_long_requests(duration_us=duration_us, seed=seed)
    long_table = format_table(
        ["scheduler", "preemption", "long-task x", "small-task x", "small p95 (us)"],
        [
            [
                o.scheduler,
                o.preemption,
                o.long_task_slowdown,
                o.small_task_slowdown,
                o.small_task_p95_us,
            ]
            for o in long_requests
        ],
        title="1.5-timeslice requests: preemption enforces slice boundaries exactly",
    )
    print(containment_table)
    print()
    print(long_table)
    return containment_table + "\n\n" + long_table
