"""Host-CPU load of OS-level GPU management (§5.2's single-CPU question).

The paper asserts the polling-thread frequency is "fast enough for the
average request size, but not enough to impose a noticeable load even for
single-CPU systems."  With the finite CPU pool enabled, this experiment
measures each scheduler's standalone slowdown when *all* host work —
application think time, fault handlers, polling passes — shares a single
core, and reports where the core's cycles went.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.experiments.runner import build_env, run_workloads
from repro.metrics.tables import format_table
from repro.osmodel.costs import CostParams
from repro.workloads.apps import make_app

SCHEDULERS = ("direct", "timeslice", "disengaged-timeslice", "dfq")


@dataclass(frozen=True)
class CpuContentionRow:
    scheduler: str
    uncontended_round_us: float
    single_core_round_us: float
    polling_cpu_us: float
    app_cpu_us: float

    @property
    def single_core_penalty(self) -> float:
        """Extra slowdown from sharing one host core."""
        return self.single_core_round_us / self.uncontended_round_us - 1.0


def run(
    duration_us: float = 300_000.0,
    warmup_us: float = 50_000.0,
    seed: int = 0,
    schedulers: Sequence[str] = SCHEDULERS,
    app: str = "DCT",
) -> list[CpuContentionRow]:
    rows = []
    for scheduler in schedulers:
        baseline_env = build_env(scheduler, seed=seed)
        baseline = make_app(app)
        run_workloads(baseline_env, [baseline], duration_us, warmup_us)

        costs = CostParams()
        costs.cpu_cores = 1
        contended_env = build_env(scheduler, seed=seed, costs=costs)
        contended = make_app(app)
        run_workloads(contended_env, [contended], duration_us, warmup_us)

        pool = contended_env.kernel.cpu
        rows.append(
            CpuContentionRow(
                scheduler=scheduler,
                uncontended_round_us=baseline.round_stats(warmup_us).mean_us,
                single_core_round_us=contended.round_stats(warmup_us).mean_us,
                polling_cpu_us=pool.owner_usage("polling"),
                app_cpu_us=pool.owner_usage(app),
            )
        )
    return rows


def main(duration_us: float = 300_000.0, seed: int = 0) -> str:
    rows = run(duration_us=duration_us, seed=seed)
    table = format_table(
        [
            "scheduler",
            "round uncontended (us)",
            "round 1-core (us)",
            "1-core penalty",
            "polling CPU (us)",
            "app CPU (us)",
        ],
        [
            [
                row.scheduler,
                row.uncontended_round_us,
                row.single_core_round_us,
                f"{100 * row.single_core_penalty:.1f}%",
                row.polling_cpu_us,
                row.app_cpu_us,
            ]
            for row in rows
        ],
        title="Single-core host: management load on application rounds "
        "(paper: polling imposes no noticeable load)",
    )
    print(table)
    return table
