"""Picklable experiment cells.

Every paper experiment decomposes into independent, deterministic
*cells*: one fully wired simulation (scheduler + workload mix + horizon +
seed + parameters) producing a ``dict[str, WorkloadResult]``.  A
:class:`CellSpec` is the declarative, picklable description of one such
cell, built from :class:`WorkloadSpec` entries instead of closures so it
can cross a process boundary and serve as a content-addressed cache key.

Workload specs name a *kind* from a small registry (``"app"`` →
:func:`repro.workloads.apps.make_app`, ``"throttle"`` →
:class:`repro.workloads.throttle.Throttle`; extendable via
:func:`register_workload_kind`) plus positional/keyword arguments.  An
escape hatch, :meth:`WorkloadSpec.from_callable`, wraps an arbitrary
zero-argument factory; such specs still run, but are neither cached nor
shipped to pool workers (closures do not content-address), so cells using
them always execute serially in the parent process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Callable, Optional, Sequence

from repro.faults.plan import FaultPlan
from repro.gpu.params import GpuParams
from repro.osmodel.costs import CostParams
from repro.workloads.apps import make_app
from repro.workloads.base import Workload
from repro.workloads.throttle import Throttle

WorkloadFactory = Callable[[], Workload]

#: Registry of named workload factory kinds; values are callables invoked
#: as ``factory(*args, **kwargs)`` and returning a fresh :class:`Workload`.
WORKLOAD_KINDS: dict[str, Callable[..., Workload]] = {}

#: Reserved kind naming specs that carry a raw callable (non-picklable).
CALLABLE_KIND = "__callable__"


def register_workload_kind(name: str, factory: Callable[..., Workload]) -> None:
    """Register (or replace) a named workload factory kind."""
    if name == CALLABLE_KIND:
        raise ValueError(f"kind name {CALLABLE_KIND!r} is reserved")
    WORKLOAD_KINDS[name] = factory


register_workload_kind("app", make_app)
register_workload_kind("throttle", Throttle)


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of one workload instance.

    ``kwargs`` is stored as a sorted tuple of ``(name, value)`` pairs so
    the spec stays hashable and its content key is order-insensitive.
    """

    kind: str
    args: tuple = ()
    kwargs: tuple = ()
    #: Only set for :meth:`from_callable` specs; excluded from content keys.
    factory: Optional[WorkloadFactory] = None

    @classmethod
    def of(cls, kind: str, *args: Any, **kwargs: Any) -> "WorkloadSpec":
        return cls(kind, args=tuple(args), kwargs=tuple(sorted(kwargs.items())))

    @classmethod
    def app(cls, name: str, instance: Optional[str] = None) -> "WorkloadSpec":
        """A Table 1 application by profile name."""
        if instance is None:
            return cls.of("app", name)
        return cls.of("app", name, instance=instance)

    @classmethod
    def throttle(cls, request_size_us: float, **kwargs: Any) -> "WorkloadSpec":
        """The Throttle microbenchmark at a given request size."""
        return cls.of("throttle", request_size_us, **kwargs)

    @classmethod
    def from_callable(cls, factory: WorkloadFactory) -> "WorkloadSpec":
        """Wrap an arbitrary factory (serial-only, never cached)."""
        return cls(CALLABLE_KIND, factory=factory)

    @property
    def cacheable(self) -> bool:
        return self.kind != CALLABLE_KIND

    def build(self) -> Workload:
        """Instantiate a fresh workload from this spec."""
        if self.kind == CALLABLE_KIND:
            if self.factory is None:
                raise ValueError("callable spec lost its factory")
            return self.factory()
        try:
            factory = WORKLOAD_KINDS[self.kind]
        except KeyError:
            known = ", ".join(sorted(WORKLOAD_KINDS))
            raise KeyError(
                f"unknown workload kind {self.kind!r}; known: {known}"
            ) from None
        return factory(*self.args, **dict(self.kwargs))


def _jsonable(value: Any) -> Any:
    """Normalize a spec field into deterministic JSON-encodable form."""
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": type(value).__name__,
            "fields": {
                field.name: _jsonable(getattr(value, field.name))
                for field in fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(value[key]) for key in sorted(value)}
    if hasattr(value, "name") and not isinstance(value, (str, int, float, bool)):
        # Enums (RequestKind) and similar named constants.
        return f"{type(value).__name__}.{value.name}"
    return value


@dataclass(frozen=True)
class CellSpec:
    """One experiment cell: a complete simulation, declaratively.

    Running a cell is a pure function of its fields (simulations are
    deterministic per seed), which is what makes both the process-pool
    fan-out and the content-keyed result cache sound.
    """

    scheduler: str
    workloads: tuple[WorkloadSpec, ...]
    duration_us: float
    warmup_us: float
    seed: int = 0
    costs: Optional[CostParams] = None
    gpu_params: Optional[GpuParams] = None
    #: Optional fault plan installed for the run (repro.faults).
    fault_plan: Optional[FaultPlan] = None

    @classmethod
    def solo(
        cls,
        workload: WorkloadSpec,
        duration_us: float,
        warmup_us: float,
        seed: int = 0,
        costs: Optional[CostParams] = None,
        gpu_params: Optional[GpuParams] = None,
    ) -> "CellSpec":
        """A standalone direct-access baseline run of one workload."""
        return cls(
            scheduler="direct",
            workloads=(workload,),
            duration_us=duration_us,
            warmup_us=warmup_us,
            seed=seed,
            costs=costs,
            gpu_params=gpu_params,
        )

    @property
    def cacheable(self) -> bool:
        return all(workload.cacheable for workload in self.workloads)

    def content_key(self) -> str:
        """Stable content hash identifying this cell's full configuration."""
        if not self.cacheable:
            raise ValueError("cells with callable workload specs have no key")
        payload = {
            "scheduler": self.scheduler,
            "workloads": [
                {"kind": w.kind, "args": _jsonable(w.args),
                 "kwargs": _jsonable(dict(w.kwargs))}
                for w in self.workloads
            ],
            "duration_us": self.duration_us,
            "warmup_us": self.warmup_us,
            "seed": self.seed,
            "costs": _jsonable(self.costs),
            "gpu_params": _jsonable(self.gpu_params),
        }
        if self.fault_plan is not None:
            # Only keyed when present, so every pre-existing cached result
            # keeps its key.
            payload["fault_plan"] = _jsonable(self.fault_plan)
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode("utf-8")
        )
        return digest.hexdigest()

    def label(self) -> str:
        """Short human-readable tag for wall-time reporting."""
        names = "+".join(
            w.kind if w.kind == CALLABLE_KIND else
            "-".join(str(a) for a in (w.kind,) + w.args)
            for w in self.workloads
        )
        return f"{self.scheduler}:{names}"

    def run(self):
        """Execute this cell and return its per-workload results."""
        from repro.experiments.runner import measure

        return measure(
            self.scheduler,
            [workload.build for workload in self.workloads],
            duration_us=self.duration_us,
            warmup_us=self.warmup_us,
            seed=self.seed,
            costs=self.costs,
            gpu_params=self.gpu_params,
            fault_plan=self.fault_plan,
        )


def specs_from_factories(
    factories: Sequence[WorkloadFactory],
) -> tuple[WorkloadSpec, ...]:
    """Wrap raw factories as serial-only specs (compatibility shim)."""
    return tuple(WorkloadSpec.from_callable(factory) for factory in factories)
