"""repro — Disengaged Scheduling for fair, protected accelerator access.

A full-system simulation reproduction of Menychtas, Shen & Scott,
"Disengaged Scheduling for Fair, Protected Access to Fast Computational
Accelerators" (ASPLOS 2014).  See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.

Quick start::

    from repro import build_env, run_workloads, Throttle, make_app

    env = build_env(scheduler="dfq", seed=1)
    workloads = [make_app("DCT"), Throttle(500.0)]
    results = run_workloads(env, workloads, duration_us=300_000)
    for name, result in results.items():
        print(name, result.rounds.mean_us)
"""

from repro.core import (
    CreditScheduler,
    DeficitRoundRobin,
    DirectAccess,
    DisengagedFairQueueing,
    DisengagedFairQueueingHW,
    DisengagedTimeslice,
    EngagedFairQueueing,
    SchedulerBase,
    TimeGraphReservation,
    TimesliceScheduler,
    scheduler_registry,
)
from repro.experiments.runner import (
    SimulationEnv,
    WorkloadResult,
    build_env,
    measure,
    run_workloads,
    solo_baseline,
)
from repro.faults import FaultPlan, FaultSpec, Injector
from repro.gpu import GpuDevice, GpuParams, Request, RequestKind
from repro.osmodel import (
    ChannelQuotaPolicy,
    CostParams,
    Kernel,
    MemoryQuotaPolicy,
    Task,
)
from repro.workloads import (
    APP_PROFILES,
    ChannelHog,
    GreedyBatcher,
    InfiniteKernel,
    MemoryHog,
    ProfiledApp,
    Throttle,
    Workload,
    make_app,
)

__version__ = "1.0.0"

__all__ = [
    "APP_PROFILES",
    "ChannelHog",
    "ChannelQuotaPolicy",
    "CostParams",
    "CreditScheduler",
    "DeficitRoundRobin",
    "DirectAccess",
    "DisengagedFairQueueing",
    "DisengagedFairQueueingHW",
    "DisengagedTimeslice",
    "EngagedFairQueueing",
    "FaultPlan",
    "FaultSpec",
    "GpuDevice",
    "GpuParams",
    "GreedyBatcher",
    "InfiniteKernel",
    "Injector",
    "Kernel",
    "MemoryHog",
    "MemoryQuotaPolicy",
    "ProfiledApp",
    "Request",
    "RequestKind",
    "SchedulerBase",
    "SimulationEnv",
    "Task",
    "Throttle",
    "TimeGraphReservation",
    "TimesliceScheduler",
    "Workload",
    "WorkloadResult",
    "__version__",
    "build_env",
    "make_app",
    "measure",
    "run_workloads",
    "scheduler_registry",
    "solo_baseline",
]
