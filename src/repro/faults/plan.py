"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, seed-carrying list of
:class:`FaultSpec` entries, each naming a registered injection point
(:mod:`repro.faults.registry`) plus the window, probability, and
magnitude knobs describing when and how hard it fires.  Plans are plain
data: they round-trip through JSON (:meth:`FaultPlan.to_jsonable` /
:meth:`FaultPlan.from_jsonable`, :meth:`FaultPlan.dumps` /
:meth:`FaultPlan.loads`), compose in code (:meth:`FaultPlan.compose`),
pickle across cell-farm workers, and hash into the result-cache content
key — the simulation only meets them through
:class:`~repro.faults.injector.Injector`.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, fields
from typing import Optional

from repro.faults.registry import INJECTION_POINTS


@dataclass(frozen=True)
class FaultSpec:
    """One fault: where it strikes, when, how often, and how hard."""

    #: Registered injection point (see repro.faults.registry).
    point: str
    #: Simulated-time window [start_us, end_us) the spec is live in.
    start_us: float = 0.0
    end_us: float = math.inf
    #: Chance the spec fires each time its point is reached while live.
    #: 1.0 means "always" and consumes no random draws.
    probability: float = 1.0
    #: Extra simulated time the fault costs (points with a "magnitude_us"
    #: knob).
    magnitude_us: float = 0.0
    #: Service-time multiplier (points with a "factor" knob).
    factor: float = 1.0
    #: Fire at most this many times (None = unlimited).
    count: Optional[int] = None
    #: Only fire for this task's traffic (None = any task).
    target_task: Optional[str] = None

    def validate(self) -> None:
        if self.point not in INJECTION_POINTS:
            known = ", ".join(sorted(INJECTION_POINTS))
            raise ValueError(
                f"unknown injection point {self.point!r} (known: {known})"
            )
        if math.isnan(self.start_us) or math.isnan(self.end_us):
            raise ValueError(f"{self.point}: NaN window bound")
        if self.start_us < 0 or self.end_us < self.start_us:
            raise ValueError(
                f"{self.point}: invalid window "
                f"[{self.start_us}, {self.end_us})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"{self.point}: probability {self.probability} not in [0, 1]"
            )
        if not math.isfinite(self.magnitude_us) or self.magnitude_us < 0:
            raise ValueError(
                f"{self.point}: magnitude_us {self.magnitude_us} must be "
                "finite and non-negative"
            )
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise ValueError(
                f"{self.point}: factor {self.factor} must be finite and > 0"
            )
        if self.count is not None and self.count < 1:
            raise ValueError(f"{self.point}: count {self.count} must be >= 1")

    def to_jsonable(self) -> dict:
        """Compact dict: defaults omitted, infinities spelled out."""
        out: dict = {"point": self.point}
        for field in fields(self):
            if field.name == "point":
                continue
            value = getattr(self, field.name)
            if value == field.default:
                continue
            if isinstance(value, float) and math.isinf(value):
                value = "inf"
            out[field.name] = value
        return out

    @classmethod
    def from_jsonable(cls, data: dict) -> "FaultSpec":
        allowed = {field.name for field in fields(cls)}
        unknown = set(data) - allowed
        if unknown:
            raise ValueError(f"unknown FaultSpec fields: {sorted(unknown)}")
        kwargs = dict(data)
        for key in ("start_us", "end_us", "magnitude_us", "factor"):
            if kwargs.get(key) == "inf":
                kwargs[key] = math.inf
        spec = cls(**kwargs)
        spec.validate()
        return spec


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of fault specs."""

    specs: tuple[FaultSpec, ...] = ()
    #: Seeds the injector's probability draws (streams named
    #: ``faults.<point>`` in the plan's own RngRegistry), independent of
    #: the workload seed so the same plan perturbs identically across
    #: experiment seeds.
    seed: int = 0
    name: str = ""

    def validate(self) -> None:
        for spec in self.specs:
            spec.validate()

    def points(self) -> tuple[str, ...]:
        """Distinct injection points the plan touches, sorted."""
        return tuple(sorted({spec.point for spec in self.specs}))

    @classmethod
    def compose(cls, name: str, *plans: "FaultPlan", seed: Optional[int] = None) -> "FaultPlan":
        """Concatenate plans; the first plan's seed wins unless given."""
        specs: tuple[FaultSpec, ...] = ()
        for plan in plans:
            specs += plan.specs
        chosen = seed if seed is not None else (plans[0].seed if plans else 0)
        return cls(specs=specs, seed=chosen, name=name)

    def to_jsonable(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "specs": [spec.to_jsonable() for spec in self.specs],
        }

    @classmethod
    def from_jsonable(cls, data: dict) -> "FaultPlan":
        unknown = set(data) - {"name", "seed", "specs"}
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        specs = tuple(
            FaultSpec.from_jsonable(entry) for entry in data.get("specs", ())
        )
        return cls(
            specs=specs,
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
        )

    def dumps(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "FaultPlan":
        plan = cls.from_jsonable(json.loads(text))
        plan.validate()
        return plan

    @classmethod
    def load(cls, path) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.loads(handle.read())
