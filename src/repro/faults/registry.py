"""The typed injection-point registry.

Every place the fault injector can perturb the simulated stack is a
*point* registered here, with the layer that hosts it and the
:class:`~repro.faults.plan.FaultSpec` knobs it honors.  Injection sites
reference the module-level constants (``registry.GPU_REQUEST_HANG``,
never the string ``"gpu.request_hang"``); neonlint rule NEON403 rejects
literal point names and NEON404 rejects constants this registry does not
know, so — exactly like the trace event-kind registry — the catalog
below is the single source of truth for where faults can strike.

The registry is deliberately flat and import-free so the fault-plan
validator, the docs, and the static analyzer can all read it without
touching the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InjectionPointSpec:
    """One registered injection point."""

    point: str
    #: Layer that hosts it: "gpu", "kernel", "neon", or "fleet".
    layer: str
    description: str
    #: FaultSpec knobs the site honors ("magnitude_us" and/or "factor").
    knobs: tuple[str, ...] = ()


#: point string -> spec.  Populated by :func:`register_injection_point`.
INJECTION_POINTS: dict[str, InjectionPointSpec] = {}


def register_injection_point(
    point: str, layer: str, description: str, knobs: tuple[str, ...] = ()
) -> str:
    """Register a point; returns the point string (assign it to a constant)."""
    if point in INJECTION_POINTS:
        raise ValueError(f"injection point {point!r} registered twice")
    if layer not in ("gpu", "kernel", "neon", "fleet"):
        raise ValueError(f"unknown layer {layer!r} for injection point {point!r}")
    INJECTION_POINTS[point] = InjectionPointSpec(point, layer, description, knobs)
    return point


def registered_points() -> tuple[str, ...]:
    """All registered point strings, sorted."""
    return tuple(sorted(INJECTION_POINTS))


def constant_names() -> frozenset[str]:
    """Names of the module-level constants holding registered points.

    This is what neonlint's NEON404 checks injection sites against:
    ``faults.arm(registry.GPU_REQUEST_HANG, ...)`` passes because
    ``GPU_REQUEST_HANG`` is listed here; a constant defined elsewhere
    does not.
    """
    module = globals()
    return frozenset(
        name
        for name, value in module.items()
        if name.isupper()
        and isinstance(value, str)
        and value in INJECTION_POINTS
    )


# ----------------------------------------------------------------------
# GPU engine/device (repro.gpu.engine, repro.gpu.device)
# ----------------------------------------------------------------------
GPU_REQUEST_HANG = register_injection_point(
    "gpu.request_hang", "gpu",
    "a request never completes once started (hardware hang / driver bug)",
)
GPU_REQUEST_SLOWDOWN = register_injection_point(
    "gpu.request_slowdown", "gpu",
    "a request's service time is multiplied by `factor` (thermal "
    "throttling, ECC scrubbing, pathological memory traffic)",
    ("factor",),
)
GPU_SPURIOUS_COMPLETION = register_injection_point(
    "gpu.spurious_completion", "gpu",
    "the channel's reference counter reports completion for work still "
    "in flight (counter written early / out of order)",
)
GPU_REFCOUNTER_STALL = register_injection_point(
    "gpu.refcounter_stall", "gpu",
    "the reference-counter write (and completion visibility) for a "
    "retired request lags the hardware by `magnitude_us`",
    ("magnitude_us",),
)
GPU_CONTEXT_SWITCH_SPIKE = register_injection_point(
    "gpu.context_switch_spike", "gpu",
    "one context/channel switch costs an extra `magnitude_us`",
    ("magnitude_us",),
)

# ----------------------------------------------------------------------
# Kernel / OS model (repro.osmodel.kernel, repro.osmodel.polling)
# ----------------------------------------------------------------------
KERNEL_FAULT_DELAY = register_injection_point(
    "kernel.fault_delay", "kernel",
    "a protected-page fault's delivery to the handler is delayed by "
    "`magnitude_us` (IRQ pressure, scheduling latency)",
    ("magnitude_us",),
)
KERNEL_FAULT_DROP = register_injection_point(
    "kernel.fault_drop", "kernel",
    "a trap is lost and the faulting store re-executes: an extra trap "
    "cost plus a `magnitude_us` retry delay",
    ("magnitude_us",),
)
KERNEL_POLL_STALL = register_injection_point(
    "kernel.poll_stall", "kernel",
    "one polling pass runs `magnitude_us` late (the poll thread was "
    "preempted or stuck on a lock)",
    ("magnitude_us",),
)
KERNEL_SUBMIT_LATENCY = register_injection_point(
    "kernel.submit_latency", "kernel",
    "the submission path charges an extra `magnitude_us` before the "
    "doorbell write lands",
    ("magnitude_us",),
)

# ----------------------------------------------------------------------
# NEON interception (repro.neon.interception, repro.osmodel.kernel setup)
# ----------------------------------------------------------------------
NEON_BARRIER_STALL = register_injection_point(
    "neon.barrier_stall", "neon",
    "an engagement barrier's page flips cost an extra `magnitude_us` "
    "(TLB shootdown storm)",
    ("magnitude_us",),
)
NEON_STALE_SCAN = register_injection_point(
    "neon.stale_scan", "neon",
    "a ring-buffer scan returns the previous scan's stale reference "
    "number instead of the current one",
)
NEON_DISCOVERY_CORRUPTION = register_injection_point(
    "neon.discovery_corruption", "neon",
    "channel discovery fails at setup; the kernel retries it after "
    "`magnitude_us`, leaving the channel untracked until then",
    ("magnitude_us",),
)

# ----------------------------------------------------------------------
# Fleet (repro.fleet.registry)
# ----------------------------------------------------------------------
FLEET_DEVICE_LOSS = register_injection_point(
    "fleet.device_loss", "fleet",
    "a whole device drops off the fleet: every context on it is torn "
    "down and its tenants migrate to a survivor or are escalated; "
    "`target_task` selects the device as 'device<N>'",
)
