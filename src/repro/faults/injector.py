"""The fault injector: the one object injection sites talk to.

An :class:`Injector` binds a validated :class:`~repro.faults.plan.FaultPlan`
to a running simulation.  Each instrumented site calls
:meth:`Injector.arm` with its registered point constant; the injector
answers with the matching :class:`~repro.faults.plan.FaultSpec` (the
site then applies the spec's knobs) or ``None`` (the site proceeds
untouched).  When no plan is installed the injector simply does not
exist — every site guards with ``if faults is not None``, mirroring the
``trace.enabled`` zero-cost-when-off contract.

Determinism: probability draws come from the plan's own
:class:`~repro.sim.rng.RngRegistry` seeded with ``plan.seed``, one
stream per injection point (``faults.<point>``), and specs with
``probability >= 1.0`` consume no draws at all.  Identical plan + seed
therefore reproduces an identical fault sequence regardless of how the
workload's own randomness is configured.
"""

from __future__ import annotations

from typing import Optional

from repro.faults.plan import FaultPlan, FaultSpec
from repro.obs import events
from repro.sim.rng import RngRegistry


class Injector:
    """Evaluates a fault plan at instrumented injection points."""

    def __init__(self, plan: FaultPlan, sim, trace=None, metrics=None) -> None:
        plan.validate()
        self.plan = plan
        self._sim = sim
        self._trace = trace
        self._metrics = metrics
        self._rng = RngRegistry(plan.seed)
        self._streams: dict = {}
        #: Fires remaining per spec position (None = unlimited).
        self._remaining: list[Optional[int]] = [
            spec.count for spec in plan.specs
        ]
        #: Spec positions by point, so arm() only walks relevant specs.
        self._by_point: dict[str, list[int]] = {}
        for position, spec in enumerate(plan.specs):
            self._by_point.setdefault(spec.point, []).append(position)
        self.fired = 0

    def arm(self, point: str, task: Optional[str] = None) -> Optional[FaultSpec]:
        """Return the spec firing at ``point`` right now, or ``None``.

        ``task`` is the task name whose traffic reached the point (when
        the site knows it); it scopes ``target_task`` specs and labels
        the injection counter and trace event.
        """
        positions = self._by_point.get(point)
        if not positions:
            return None
        now = self._sim.now
        for position in positions:
            spec = self.plan.specs[position]
            if not spec.start_us <= now < spec.end_us:
                continue
            if spec.target_task is not None and spec.target_task != task:
                continue
            remaining = self._remaining[position]
            if remaining is not None and remaining <= 0:
                continue
            if spec.probability < 1.0:
                stream = self._streams.get(point)
                if stream is None:
                    stream = self._rng.stream(f"faults.{point}")
                    self._streams[point] = stream
                if stream.random() >= spec.probability:
                    continue
            if remaining is not None:
                self._remaining[position] = remaining - 1
            self.fired += 1
            if self._metrics is not None:
                self._metrics.inc("faults_injected", task or "")
            if self._trace is not None and self._trace.enabled:
                self._trace.emit(
                    now, "faults", events.FAULT_INJECTED,
                    point=point, task=task,
                )
            return spec
        return None
