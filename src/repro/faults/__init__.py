"""Fault injection for the simulated driver stack.

The subsystem has three parts:

* :mod:`repro.faults.registry` — the typed catalog of injection points
  instrumented across the GPU, kernel, and NEON layers.
* :mod:`repro.faults.plan` — declarative, seeded
  :class:`FaultPlan`/:class:`FaultSpec` descriptions of which points
  misbehave, when, and how hard (JSON round-trip, composable).
* :mod:`repro.faults.injector` — the :class:`Injector` that evaluates a
  plan at each instrumented site during a run.

Install a plan with ``build_env(..., fault_plan=plan)`` /
``measure(..., fault_plan=plan)`` or a ``CellSpec(fault_plan=plan)``;
with no plan installed every injection site is a single ``is None``
check and the simulation is byte-identical to an uninstrumented run.
See docs/FAULTS.md for the full schema and hardening semantics.
"""

from repro.faults.injector import Injector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.faults.registry import (
    INJECTION_POINTS,
    InjectionPointSpec,
    registered_points,
)

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "Injector",
    "INJECTION_POINTS",
    "InjectionPointSpec",
    "registered_points",
]
