"""Shared exception types (dependency-free, importable from anywhere)."""

from __future__ import annotations


class OutOfResourcesError(RuntimeError):
    """Raised when context/channel allocation exhausts the device, or a
    quota policy refuses an allocation (Section 6.3)."""
