"""Measurement utilities: round tracking, fairness and efficiency metrics,
CDF helpers for Figure 2, and plain-text result tables."""

from repro.metrics.cdf import Cdf, log2_bin_histogram
from repro.metrics.efficiency import concurrency_efficiency
from repro.metrics.fairness import jain_index, max_slowdown_ratio
from repro.metrics.rounds import RoundLog, RoundStats
from repro.metrics.tables import format_table

__all__ = [
    "Cdf",
    "RoundLog",
    "RoundStats",
    "concurrency_efficiency",
    "format_table",
    "jain_index",
    "log2_bin_histogram",
    "max_slowdown_ratio",
]
