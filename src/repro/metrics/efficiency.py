"""The paper's concurrency-efficiency metric (Section 5.3).

Given N applications whose per-round run times are t₁…t_N alone and
t₁ᶜ…t_Nᶜ when running together, concurrency efficiency is Σᵢ tᵢ/tᵢᶜ —
the sum of effective resource shares.  Below 1.0, resources were lost to
management overhead or idling; above 1.0, the mix exhibited synergy
(e.g. DMA/compute overlap).
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple


def concurrency_efficiency(pairs: Iterable[Tuple[float, float]]) -> float:
    """Sum of alone/concurrent round-time ratios.

    ``pairs`` yields ``(t_alone, t_concurrent)`` per application.
    """
    total = 0.0
    for t_alone, t_concurrent in pairs:
        if math.isnan(t_alone) or math.isnan(t_concurrent) or t_concurrent <= 0:
            return float("nan")
        total += t_alone / t_concurrent
    return total
