"""Round-time collection.

A "round" is the paper's user-visible unit of progress (one main-loop
iteration for OpenCL applications, one frame for graphics).  Workloads
record round boundaries into a :class:`RoundLog`; experiments summarize
steady-state round times with :class:`RoundStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


class RoundLog:
    """Append-only log of (start, end) round intervals."""

    def __init__(self) -> None:
        self._starts: list[float] = []
        self._ends: list[float] = []

    def record(self, start: float, end: float) -> None:
        if end < start:
            raise ValueError("round ends before it starts")
        self._starts.append(start)
        self._ends.append(end)

    def __len__(self) -> int:
        return len(self._ends)

    def stats(
        self, warmup_us: float = 0.0, until_us: Optional[float] = None
    ) -> "RoundStats":
        """Summarize rounds that *completed* within the window."""
        durations = [
            end - start
            for start, end in zip(self._starts, self._ends)
            if end >= warmup_us and (until_us is None or end <= until_us)
        ]
        return RoundStats.from_durations(durations)


@dataclass(frozen=True)
class RoundStats:
    """Steady-state round-time summary."""

    count: int
    mean_us: float
    median_us: float
    p95_us: float

    @classmethod
    def from_durations(cls, durations: list[float]) -> "RoundStats":
        if not durations:
            return cls(0, float("nan"), float("nan"), float("nan"))
        ordered = sorted(durations)
        count = len(ordered)
        mean = sum(ordered) / count
        median = ordered[count // 2]
        p95 = ordered[min(count - 1, int(0.95 * count))]
        return cls(count, mean, median, p95)

    def slowdown_vs(self, baseline: "RoundStats") -> float:
        """Mean-round-time ratio against a solo-run baseline."""
        if self.count == 0 or baseline.count == 0:
            return float("nan")
        return self.mean_us / baseline.mean_us
