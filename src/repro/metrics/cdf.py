"""CDF utilities for Figure 2's request-timing distributions.

The paper plots CDFs over log₂-µs bins of request inter-arrival periods
and service periods.  :func:`log2_bin_histogram` reproduces that binning;
:class:`Cdf` offers exact quantiles for assertions and tables.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


class Cdf:
    """An empirical CDF over a sample of non-negative values."""

    def __init__(self, samples: Iterable[float]) -> None:
        self._sorted = sorted(float(s) for s in samples)
        if any(s < 0 for s in self._sorted):
            raise ValueError("CDF samples must be non-negative")

    def __len__(self) -> int:
        return len(self._sorted)

    def fraction_below(self, threshold: float) -> float:
        """P(X < threshold)."""
        if not self._sorted:
            return float("nan")
        # Linear scan is fine at our sample sizes; bisect would also work.
        count = sum(1 for value in self._sorted if value < threshold)
        return count / len(self._sorted)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if not self._sorted:
            return float("nan")
        index = min(len(self._sorted) - 1, int(q * len(self._sorted)))
        return self._sorted[index]

    @property
    def samples(self) -> Sequence[float]:
        return tuple(self._sorted)


def log2_bin_histogram(
    samples: Iterable[float], max_bin: int = 17
) -> list[float]:
    """Cumulative percentage of events per log₂-µs bin (Figure 2's axes).

    Bin *k* covers values in [2ᵏ, 2ᵏ⁺¹) µs; bin 0 also absorbs anything
    below 1 µs.  Returns cumulative percentages, one per bin 0..max_bin.
    """
    counts = [0] * (max_bin + 1)
    total = 0
    for sample in samples:
        total += 1
        if sample < 1.0:
            bin_index = 0
        else:
            bin_index = min(max_bin, int(math.floor(math.log2(sample))))
        counts[bin_index] += 1
    if total == 0:
        return [float("nan")] * (max_bin + 1)
    cumulative = []
    running = 0
    for count in counts:
        running += count
        cumulative.append(100.0 * running / total)
    return cumulative
