"""Fairness metrics for multiprogrammed runs."""

from __future__ import annotations

import math
from typing import Iterable


def jain_index(shares: Iterable[float]) -> float:
    """Jain's fairness index over resource shares: 1.0 is perfectly fair,
    1/n is maximally unfair."""
    values = [value for value in shares if value >= 0]
    if not values:
        return float("nan")
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return float("nan")
    return (total * total) / (len(values) * squares)


def max_slowdown_ratio(slowdowns: Iterable[float]) -> float:
    """Ratio of the worst to the best slowdown among co-runners.

    1.0 means perfectly even suffering; the paper's notion of fairness for
    N co-runners is that nobody slows down "significantly more than" N×,
    which this ratio captures relative to peers.
    """
    values = [value for value in slowdowns if not math.isnan(value)]
    if not values:
        return float("nan")
    best = min(values)
    if best <= 0:
        return float("nan")
    return max(values) / best
