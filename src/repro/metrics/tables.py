"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Any, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> str:
    """Render an aligned ASCII table (the experiments print these)."""
    text_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 100:
            return f"{cell:.0f}"
        return f"{cell:.2f}"
    return str(cell)
