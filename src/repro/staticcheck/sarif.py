"""SARIF 2.1.0 export — CI code-scanning annotations for neonlint.

Emits one run with the full rule catalog in ``tool.driver.rules`` and one
``result`` per violation.  NEON501 call chains become both a
``codeFlows`` thread (the full path, hop by hop) and ``relatedLocations``
so GitHub's annotation UI can render the laundering route inline.

The output targets the OASIS SARIF 2.1.0 schema
(https://json.schemastore.org/sarif-2.1.0.json); structural conformance
is pinned by tests/staticcheck/test_sarif.py.  URIs are emitted
repo-relative (POSIX separators) when a ``root`` is given so the GitHub
upload step can match them against the checkout.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

from repro.staticcheck.baseline import fingerprint
from repro.staticcheck.core import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

#: Informational URI advertised for every rule.
_HELP_URI = "https://github.com/repro/repro/blob/main/docs/STATIC_ANALYSIS.md"


def _relative_uri(path: str, root: Optional[Path]) -> str:
    candidate = Path(path)
    if root is not None:
        try:
            candidate = candidate.resolve().relative_to(Path(root).resolve())
        except ValueError:
            pass
    return candidate.as_posix()


def _location(path: str, line: int, col: int, root: Optional[Path]) -> dict:
    region: dict = {"startLine": max(1, line)}
    if col:
        region["startColumn"] = col + 1  # SARIF columns are 1-based
    return {
        "physicalLocation": {
            "artifactLocation": {
                "uri": _relative_uri(path, root),
                "uriBaseId": "SRCROOT",
            },
            "region": region,
        }
    }


def _result(violation: Violation, root: Optional[Path], source_cache: dict) -> dict:
    result = {
        "ruleId": violation.rule_id,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            _location(violation.path, violation.line, violation.col, root)
        ],
        "partialFingerprints": {
            "neonlintFingerprint/v1": fingerprint(violation, source_cache)
        },
    }
    if violation.chain:
        result["relatedLocations"] = [
            {
                **_location(hop_path, hop_line, 0, root),
                "message": {"text": qual},
            }
            for qual, hop_path, hop_line in violation.chain
        ]
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": {
                                    **_location(hop_path, hop_line, 0, root),
                                    "message": {"text": qual},
                                }
                            }
                            for qual, hop_path, hop_line in violation.chain
                        ]
                    }
                ]
            }
        ]
    return result


def to_sarif(
    violations: Sequence[Violation],
    rules: dict[str, str],
    root: Optional[Path] = None,
) -> dict:
    """Build the SARIF log object (JSON-able dict)."""
    source_cache: dict[str, list[str]] = {}
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "neonlint",
                        "informationUri": _HELP_URI,
                        "rules": [
                            {
                                "id": rule_id,
                                "name": rule_id,
                                "shortDescription": {"text": description},
                                "helpUri": _HELP_URI,
                                "defaultConfiguration": {"level": "error"},
                            }
                            for rule_id, description in sorted(rules.items())
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {
                        "uri": (
                            Path(root).resolve().as_uri() + "/"
                            if root is not None
                            else "file:///"
                        )
                    }
                },
                "results": [
                    _result(violation, root, source_cache)
                    for violation in violations
                ],
            }
        ],
    }


def format_sarif(
    violations: Sequence[Violation],
    rules: dict[str, str],
    root: Optional[Path] = None,
) -> str:
    return json.dumps(to_sarif(violations, rules, root), indent=2)


__all__ = ["SARIF_SCHEMA", "SARIF_VERSION", "format_sarif", "to_sarif"]
