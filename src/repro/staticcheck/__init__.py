"""neonlint — AST-based enforcement of the repro architecture contract.

The reproduction's central claim (DESIGN.md, paper Section 3) is that
schedulers act only on information observable through the interception
interface — faults, reference counters, ring-buffer scans — never on
ground-truth device state.  The code encodes that as "all device knowledge
flows through :class:`~repro.neon.interception.InterceptionManager`", and
this package machine-checks it, the way the eBPF verifier checks GPU
scheduling policies in the extensible-OS-policy line of work.

Three rule families:

* **boundary** (``NEON1xx``) — modules under ``repro.core`` may not import
  ``repro.gpu``/``repro.osmodel`` internals at runtime nor dereference
  ground-truth channel/device attributes;
* **determinism** (``NEON2xx``) — no wall clocks, no stdlib ``random``,
  no unseeded/global numpy RNG outside the seeded-stream registry, no
  iteration over unordered sets;
* **generator discipline** (``NEON3xx``) — virtual-time-consuming
  generator methods must be driven with ``yield from``; engagement flip
  counts must not be silently discarded.

Run it with ``python -m repro.staticcheck src`` or ``repro staticcheck``.
See ``docs/STATIC_ANALYSIS.md`` for the full rule catalog and the
allowlist format.
"""

from repro.staticcheck.config import Config, load_config
from repro.staticcheck.core import Violation, analyze_paths, collect_files
from repro.staticcheck.rules import RULES

__all__ = [
    "Config",
    "RULES",
    "Violation",
    "analyze_paths",
    "collect_files",
    "load_config",
]
