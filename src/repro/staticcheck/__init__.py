"""neonlint — AST-based enforcement of the repro architecture contract.

The reproduction's central claim (DESIGN.md, paper Section 3) is that
schedulers act only on information observable through the interception
interface — faults, reference counters, ring-buffer scans — never on
ground-truth device state.  The code encodes that as "all device knowledge
flows through :class:`~repro.neon.interception.InterceptionManager`", and
this package machine-checks it, the way the eBPF verifier checks GPU
scheduling policies in the extensible-OS-policy line of work.

Five rule families, in two layers:

* **boundary** (``NEON1xx``, per-file) — modules under ``repro.core`` may
  not import ``repro.gpu``/``repro.osmodel`` internals at runtime nor
  dereference ground-truth channel/device attributes;
* **determinism** (``NEON2xx``, per-file) — no wall clocks, no stdlib
  ``random``, no unseeded/global numpy RNG outside the seeded-stream
  registry, no iteration over unordered sets;
* **generator discipline** (``NEON3xx``, per-file) — virtual-time-consuming
  generator methods must be driven with ``yield from``; engagement flip
  counts must not be silently discarded;
* **typed registries** (``NEON4xx``, per-file) — trace event kinds and
  fault injection points must be registered constants, never literals;
* **whole-program** (``NEON5xx``) — over a linked module/import/call
  graph of all of ``src/``: no boundary taint laundered through helper
  modules (the finding carries the full call chain), no RNG streams
  flowing into client modules, observation clients restricted to the
  declared ``InterceptionManager`` API, no dead registry entries, no
  unused imports (re-export aware).

Run it with ``python -m repro.staticcheck src`` or ``repro staticcheck``;
``--format sarif`` exports to code scanning, ``--fix`` applies mechanical
autofixes, ``neonlint-baseline.json`` ratchets grandfathered findings.
See ``docs/STATIC_ANALYSIS.md`` for the full rule catalog, the baseline
workflow, and the whole-program-rule authoring guide.
"""

from repro.staticcheck.config import Config, load_config
from repro.staticcheck.core import Violation, analyze_paths, collect_files
from repro.staticcheck.engine import AnalysisResult, AnalysisStats, run_analysis
from repro.staticcheck.rules import RULES

__all__ = [
    "AnalysisResult",
    "AnalysisStats",
    "Config",
    "RULES",
    "Violation",
    "analyze_paths",
    "collect_files",
    "load_config",
    "run_analysis",
]
