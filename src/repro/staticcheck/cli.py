"""``python -m repro.staticcheck`` / ``repro staticcheck`` — the CLI.

Exit codes: 0 clean, 1 violations found, 2 usage error (unknown path or
unreadable config).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.staticcheck.config import load_config
from repro.staticcheck.core import analyze_paths, collect_files
from repro.staticcheck.report import format_report
from repro.staticcheck.rules import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.staticcheck",
        description=(
            "neonlint: enforce the disengagement boundary, simulation "
            "determinism, and virtual-time generator discipline "
            "(docs/STATIC_ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="TOML config overriding [tool.neonlint] discovery",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, description in sorted(RULES.items()):
            print(f"{rule_id}  {description}")
        return 0

    paths = [Path(path) for path in args.paths]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2
    try:
        config = load_config(explicit=args.config, near=paths)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: could not load config: {exc}", file=sys.stderr)
        return 2

    files_checked = len(collect_files(paths))
    violations = analyze_paths(paths, config)
    print(format_report(violations, files_checked, args.format))
    return 1 if violations else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
