"""``python -m repro.staticcheck`` / ``repro staticcheck`` — the CLI.

Modes layered on the analysis engine:

* default — full run (per-file + whole-program rules), findings matched
  against the committed baseline when one is discoverable; only *new*
  findings fail.
* ``--changed`` — pre-commit mode: report only findings anchored in
  files changed since ``git merge-base HEAD main`` (the project model
  still links everything, so whole-program rules stay sound).
* ``--fix`` — apply the mechanical autofixes (NEON401/403/505), then
  re-analyze and report what remains.
* ``--update-baseline`` — regenerate the baseline from current findings.
* ``--stats`` — print engine timing/coverage counters and append them to
  the run-record store (``repro perf`` reads the same store).

Exit codes: 0 clean (or all findings baselined), 1 new violations (or
stale baseline entries under ``--strict-baseline``), 2 usage error
(unknown path, unreadable config/baseline, git failure in --changed).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.staticcheck.baseline import (
    BASELINE_FILENAME,
    Baseline,
    BaselineResult,
    discover_baseline,
)
from repro.staticcheck.config import load_config
from repro.staticcheck.engine import run_analysis
from repro.staticcheck.fix import apply_fixes
from repro.staticcheck.report import format_report
from repro.staticcheck.rules import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.staticcheck",
        description=(
            "neonlint: enforce the disengagement boundary, simulation "
            "determinism, virtual-time generator discipline, and the "
            "whole-program isolation proofs (docs/STATIC_ANALYSIS.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--config",
        type=Path,
        default=None,
        help="TOML config overriding [tool.neonlint] discovery",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: discover {BASELINE_FILENAME} upward)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings and exit 0",
    )
    parser.add_argument(
        "--strict-baseline",
        action="store_true",
        help="fail when the baseline carries stale (unmatched) entries",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical autofixes (NEON401/403/505), then re-check",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="only report findings in files changed vs merge-base with main",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool workers for per-file rules (default: 1, serial)",
    )
    parser.add_argument(
        "--no-whole-program",
        action="store_true",
        help="skip the NEON5xx whole-program layer (per-file rules only)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print engine stats to stderr and record them in the run store",
    )
    parser.add_argument(
        "--store-dir",
        type=Path,
        default=None,
        help="run-record store directory for --stats (default: .repro/runs)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _changed_files(paths: Sequence[Path]) -> Optional[list[Path]]:
    """Files changed vs ``merge-base(HEAD, main)`` plus untracked files.

    Returns None when git is unavailable or the worktree is not a repo
    (the caller treats that as a usage error in ``--changed`` mode).
    """
    def _git(*argv: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                ["git", *argv], capture_output=True, text=True, check=False
            )
        except OSError:
            return None
        return proc.stdout if proc.returncode == 0 else None

    base = None
    for candidate in ("main", "origin/main", "master"):
        out = _git("merge-base", "HEAD", candidate)
        if out is not None:
            base = out.strip()
            break
    if base is None:
        out = _git("rev-parse", "HEAD")
        if out is None:
            return None
        base = out.strip()
    diff = _git("diff", "--name-only", base)
    untracked = _git("ls-files", "--others", "--exclude-standard")
    if diff is None or untracked is None:
        return None
    top = _git("rev-parse", "--show-toplevel")
    root = Path(top.strip()) if top else Path.cwd()
    changed: list[Path] = []
    for line in (diff + untracked).splitlines():
        line = line.strip()
        if line.endswith(".py"):
            candidate = root / line
            if candidate.is_file():
                changed.append(candidate)
    return changed


def _resolve_baseline(
    args: argparse.Namespace, paths: Sequence[Path]
) -> tuple[Optional[Baseline], Optional[Path]]:
    if args.no_baseline:
        return None, None
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = discover_baseline(paths)
    if baseline_path is None:
        return None, None
    if not Path(baseline_path).is_file():
        if args.update_baseline:
            return None, Path(baseline_path)
        raise OSError(f"baseline file not found: {baseline_path}")
    return Baseline.load(Path(baseline_path)), Path(baseline_path)


def _record_stats(args: argparse.Namespace, stats) -> None:
    from repro.obs.store import RunCollector, RunStore, build_record

    collector = RunCollector(experiment="staticcheck")
    record = build_record(
        collector,
        wall_s=stats.wall_s,
        params=stats.as_dict(),
        note="neonlint --stats",
    )
    store = RunStore(args.store_dir)
    appended = store.append(record)
    print(
        f"stats recorded: {appended['run_id']} -> {store.path}",
        file=sys.stderr,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule_id, description in sorted(RULES.items()):
            print(f"{rule_id}  {description}")
        return 0

    paths = [Path(path) for path in args.paths]
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such file or directory: {path}", file=sys.stderr)
        return 2
    try:
        config = load_config(explicit=args.config, near=paths)
    except (OSError, ValueError, TypeError) as exc:
        print(f"error: could not load config: {exc}", file=sys.stderr)
        return 2

    restrict_to: Optional[list[Path]] = None
    if args.changed:
        restrict_to = _changed_files(paths)
        if restrict_to is None:
            print(
                "error: --changed requires a git worktree "
                "(merge-base/diff failed)",
                file=sys.stderr,
            )
            return 2
        if not restrict_to:
            print("clean: no changed python files")
            return 0

    def analyze():
        return run_analysis(
            paths,
            config,
            workers=args.workers,
            whole_program=not args.no_whole_program,
            restrict_to=restrict_to,
        )

    result = analyze()

    if args.fix:
        outcome = apply_fixes(result.violations)
        if outcome.files:
            for path in outcome.files:
                print(f"fixed: {path}", file=sys.stderr)
            result = analyze()
        if outcome.skipped:
            print(
                f"{len(outcome.skipped)} fixable-family finding(s) could "
                "not be rewritten automatically",
                file=sys.stderr,
            )

    try:
        baseline, baseline_path = _resolve_baseline(args, paths)
    except (OSError, ValueError) as exc:
        print(f"error: could not load baseline: {exc}", file=sys.stderr)
        return 2

    if args.update_baseline:
        target = baseline_path or (
            Path(args.baseline)
            if args.baseline is not None
            else Path(BASELINE_FILENAME)
        )
        Baseline.from_violations(result.violations).write(target)
        print(
            f"baseline updated: {len(result.violations)} entr"
            f"{'y' if len(result.violations) == 1 else 'ies'} -> {target}"
        )
        if args.stats:
            print(result.stats.render(), file=sys.stderr)
            _record_stats(args, result.stats)
        return 0

    if baseline is not None:
        matched: BaselineResult = baseline.apply(result.violations)
        reported = matched.new
        suppressed = len(matched.suppressed)
        stale = matched.stale
    else:
        reported = result.violations
        suppressed = 0
        stale = {}

    print(
        format_report(
            reported,
            result.stats.files_checked,
            args.format,
            rules=RULES,
        )
    )
    if suppressed:
        print(
            f"{suppressed} finding(s) suppressed by baseline "
            f"({baseline_path})",
            file=sys.stderr,
        )
    exit_code = 1 if reported else 0
    if stale:
        total = sum(stale.values())
        print(
            f"warning: {total} stale baseline entr"
            f"{'y' if total == 1 else 'ies'} no longer match any finding "
            f"(regenerate with --update-baseline)",
            file=sys.stderr,
        )
        if args.strict_baseline:
            exit_code = max(exit_code, 1)

    if args.stats:
        print(result.stats.render(), file=sys.stderr)
        _record_stats(args, result.stats)
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
