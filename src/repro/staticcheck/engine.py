"""Analysis engine — parse once, fan out per-file rules, link the model.

The engine is the one place that orchestrates a full neonlint run:

1. **Parse** every file into a :class:`ModuleContext` (parse failures
   become NEON000 findings and drop out of the model).
2. **Per-file rules** (NEON1xx–4xx) run over each context — with
   ``workers > 1``, file chunks fan out to a ``ProcessPoolExecutor``
   (the experiment-cell farm pattern: deterministic result order, any
   pool failure degrades to serial re-execution in the parent).
3. **Whole-program rules** (NEON5xx) run over one shared
   :class:`~repro.staticcheck.graph.ProjectModel` linked from the same
   contexts — never per file, so their transitive guarantees hold.

Suppression (inline pragmas, config allow entries) is applied centrally
to both layers, so ``# neonlint: allow[NEON501] reason`` works exactly
like it does for the per-file families.

Timing uses :func:`repro.obs.profile.host_clock` — the audited host
wall-clock accessor — so neonlint stays clean under its own NEON201.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Sequence

from repro.obs.profile import host_clock
from repro.staticcheck.core import (
    ModuleContext,
    PARSE_ERROR_RULE,
    Violation,
    analyze_file,
    collect_files,
    module_name_for,
)
from repro.staticcheck.graph import ProjectModel
from repro.staticcheck.rules.wholeprogram import WHOLE_PROGRAM_CHECKS

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config

#: Files per pool task; coarse chunks amortize process startup.
_CHUNK_SIZE = 16


@dataclasses.dataclass
class AnalysisStats:
    """What a run cost and what it found — the ``--stats`` payload."""

    files_checked: int = 0
    modules_linked: int = 0
    functions_linked: int = 0
    workers: int = 1
    pool_used: bool = False
    wall_s: float = 0.0
    parse_wall_s: float = 0.0
    per_file_wall_s: float = 0.0
    whole_program_wall_s: float = 0.0
    #: Whole-program rule id -> wall seconds.
    rule_wall_s: dict[str, float] = dataclasses.field(default_factory=dict)
    violations_by_rule: dict[str, int] = dataclasses.field(default_factory=dict)
    suppressed: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def render(self) -> str:
        lines = [
            f"neonlint stats: {self.files_checked} file(s), "
            f"{self.modules_linked} module(s), "
            f"{self.functions_linked} call-graph node(s)",
            f"  wall {self.wall_s:.3f}s  (parse {self.parse_wall_s:.3f}s, "
            f"per-file {self.per_file_wall_s:.3f}s, "
            f"whole-program {self.whole_program_wall_s:.3f}s)",
            f"  workers {self.workers}"
            + (" (pool)" if self.pool_used else " (serial)"),
        ]
        for rule_id in sorted(self.rule_wall_s):
            lines.append(
                f"  {rule_id}: {self.rule_wall_s[rule_id] * 1000:7.1f} ms"
                f"  -> {self.violations_by_rule.get(rule_id, 0)} finding(s)"
            )
        if self.suppressed:
            lines.append(f"  {self.suppressed} finding(s) suppressed by pragma/allowlist")
        return "\n".join(lines)


@dataclasses.dataclass
class AnalysisResult:
    """Violations plus the stats of the run that produced them."""

    violations: list[Violation]
    stats: AnalysisStats
    model: Optional[ProjectModel] = None


def _analyze_chunk(paths: Sequence[str], config: "Config") -> list[Violation]:
    """Pool worker entry point: per-file rules over one chunk of files."""
    violations: list[Violation] = []
    for path in paths:
        violations.extend(analyze_file(Path(path), config))
    return violations


def _parse_contexts(
    files: Sequence[Path],
) -> tuple[list[ModuleContext], list[Violation]]:
    contexts: list[ModuleContext] = []
    failures: list[Violation] = []
    for path in files:
        try:
            source = path.read_text(encoding="utf-8")
            contexts.append(ModuleContext(path, module_name_for(path), source))
        except (OSError, SyntaxError, ValueError) as exc:
            failures.append(
                Violation(
                    path=str(path),
                    line=getattr(exc, "lineno", 0) or 0,
                    col=getattr(exc, "offset", 0) or 0,
                    rule_id=PARSE_ERROR_RULE,
                    message=f"file could not be analyzed: {exc}",
                )
            )
    return contexts, failures


def _run_per_file(
    files: Sequence[Path], config: "Config", workers: int, stats: AnalysisStats
) -> list[Violation]:
    """NEON1xx–4xx over every file; pool fan-out with serial fallback."""
    workers = max(1, int(workers))
    if workers > 1 and len(files) > 1:
        chunks = [
            [str(path) for path in files[start : start + _CHUNK_SIZE]]
            for start in range(0, len(files), _CHUNK_SIZE)
        ]
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                chunk_results = list(pool.map(_analyze_chunk, chunks,
                                              [config] * len(chunks)))
            stats.pool_used = True
            return [violation for chunk in chunk_results for violation in chunk]
        except Exception:
            # Broken pool / no fork / pickling edge case: the per-file
            # rules are pure functions of the source, so serial re-run
            # in the parent produces identical results.
            stats.pool_used = False
    return [
        violation
        for path in files
        for violation in analyze_file(path, config)
    ]


def _run_whole_program(
    contexts: Sequence[ModuleContext],
    config: "Config",
    stats: AnalysisStats,
    rules: Optional[Sequence[str]] = None,
) -> tuple[list[Violation], ProjectModel]:
    model = ProjectModel.build(contexts=contexts)
    stats.modules_linked = len(model.modules)
    stats.functions_linked = len(model.functions)
    ctx_by_path = {str(ctx.path): ctx for ctx in contexts}
    violations: list[Violation] = []
    for rule_id, check in WHOLE_PROGRAM_CHECKS.items():
        if rules is not None and rule_id not in rules:
            continue
        started = host_clock()
        found = list(check(model, config))
        stats.rule_wall_s[rule_id] = host_clock() - started
        for violation in found:
            ctx = ctx_by_path.get(violation.path)
            if ctx is not None and ctx.pragma_allows(violation.line, violation.rule_id):
                stats.suppressed += 1
                continue
            if config.allowlisted(Path(violation.path), violation.line, violation.rule_id):
                stats.suppressed += 1
                continue
            violations.append(violation)
    return violations, model


def run_analysis(
    paths: Sequence[Path],
    config: "Config",
    workers: int = 1,
    whole_program: bool = True,
    rules: Optional[Sequence[str]] = None,
    restrict_to: Optional[Sequence[Path]] = None,
) -> AnalysisResult:
    """Run the full pipeline over ``paths``; see the module docstring.

    ``rules`` optionally restricts the whole-program layer to a subset of
    NEON5xx ids (the per-file families are cheap enough to always run).

    ``restrict_to`` (the ``--changed`` mode) narrows *reporting* to a
    file subset while the project model still links everything under
    ``paths`` — whole-program rules need the full graph to be sound, but
    a pre-commit hook only wants findings anchored in touched files.
    """
    stats = AnalysisStats(workers=max(1, int(workers)))
    run_started = host_clock()

    files = collect_files(paths)
    stats.files_checked = len(files)
    report_paths: Optional[set[str]] = None
    if restrict_to is not None:
        report_paths = {str(Path(p).resolve()) for p in restrict_to}
        per_file_targets = [
            path for path in files if str(path.resolve()) in report_paths
        ]
    else:
        per_file_targets = list(files)

    parse_started = host_clock()
    contexts, parse_failures = _parse_contexts(files)
    stats.parse_wall_s = host_clock() - parse_started

    per_file_started = host_clock()
    violations = _run_per_file(per_file_targets, config, workers, stats)
    stats.per_file_wall_s = host_clock() - per_file_started

    model: Optional[ProjectModel] = None
    if whole_program:
        whole_started = host_clock()
        whole_violations, model = _run_whole_program(contexts, config, stats, rules)
        stats.whole_program_wall_s = host_clock() - whole_started
        violations.extend(whole_violations)
    violations.extend(parse_failures)

    # NEON000 can arrive from both the parse pass and analyze_file; the
    # per-path dedup keeps one.
    unique = sorted(set(violations))
    if report_paths is not None:
        unique = [
            violation
            for violation in unique
            if str(Path(violation.path).resolve()) in report_paths
        ]
    stats.wall_s = host_clock() - run_started
    for violation in unique:
        stats.violations_by_rule[violation.rule_id] = (
            stats.violations_by_rule.get(violation.rule_id, 0) + 1
        )
    return AnalysisResult(violations=unique, stats=stats, model=model)


__all__ = ["AnalysisResult", "AnalysisStats", "run_analysis"]
