"""Violation reporters — human text, machine JSON, and SARIF.

Text lines are ``path:line:col: RULE message`` (the classic compiler
shape, so editors and CI annotations parse them for free).  JSON output
is a single object with the violation list and counters, for tooling.
SARIF (``--format sarif``) feeds GitHub code scanning; see
:mod:`repro.staticcheck.sarif`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

from repro.staticcheck.core import Violation


def format_text(violations: Sequence[Violation], files_checked: int) -> str:
    lines = [violation.render() for violation in violations]
    if violations:
        by_rule: dict[str, int] = {}
        for violation in violations:
            by_rule[violation.rule_id] = by_rule.get(violation.rule_id, 0) + 1
        breakdown = ", ".join(
            f"{rule} x{count}" for rule, count in sorted(by_rule.items())
        )
        lines.append(
            f"{len(violations)} violation(s) in {files_checked} file(s) "
            f"checked ({breakdown})"
        )
    else:
        lines.append(f"clean: {files_checked} file(s) checked, 0 violations")
    return "\n".join(lines)


def format_json(violations: Sequence[Violation], files_checked: int) -> str:
    return json.dumps(
        {
            "files_checked": files_checked,
            "violation_count": len(violations),
            "violations": [violation.as_dict() for violation in violations],
        },
        indent=2,
    )


def format_report(
    violations: Sequence[Violation],
    files_checked: int,
    fmt: str,
    rules: Optional[dict[str, str]] = None,
    root: Optional[Path] = None,
) -> str:
    if fmt == "json":
        return format_json(violations, files_checked)
    if fmt == "text":
        return format_text(violations, files_checked)
    if fmt == "sarif":
        from repro.staticcheck.sarif import format_sarif

        return format_sarif(violations, rules or {}, root)
    raise ValueError(f"unknown report format: {fmt!r}")


__all__ = ["format_json", "format_report", "format_text"]
