"""Configuration and allowlist loading for neonlint.

Defaults encode the repo's own contract; a ``[tool.neonlint]`` table in
``pyproject.toml`` (auto-discovered upward from the checked paths) or an
explicit ``--config file.toml`` can override any field.  Audited
exceptions are granted per line, either with an inline pragma::

    cumulative = device.task_usage(task)  # neonlint: allow[NEON102] vendor-statistics ablation

or with an ``allow`` entry in the config file::

    allow = ["repro/core/disengaged_fq.py:472:NEON102"]

Entries are ``<path-suffix>:<line>:<RULE>``; ``*`` matches any line.
"""

from __future__ import annotations

import dataclasses
import tomllib
from pathlib import Path
from typing import Iterable, Optional

#: Channel/device attributes that constitute ground truth: queue contents,
#: in-flight request state, engine internals, and the vendor usage
#: accounting.  Reference to any of these from a boundary module means the
#: scheduler is peeking past the interception layer.
DEFAULT_GROUND_TRUTH_ATTRIBUTES = frozenset(
    {
        # Channel internals (repro.gpu.channel.Channel)
        "queue",
        "running",
        "register_page",
        "masked",
        "refcounter",
        "last_submitted_ref",
        "submitted_count",
        "completed_count",
        "kind",
        # Request ground truth (repro.gpu.request.Request)
        "size_us",
        "remaining_us",
        "never_completes",
        # Device/engine internals (repro.gpu.device, repro.gpu.engine)
        "device",
        "engines",
        "main_engine",
        "current_channel",
        "task_usage",
        "task_usage_by_kind",
        # Task-side device handles (repro.osmodel.task.Task)
        "contexts",
    }
)


@dataclasses.dataclass(frozen=True)
class Config:
    """Everything the checkers need to know about the project layout."""

    #: Module prefixes the boundary rules apply to.
    boundary_modules: tuple[str, ...] = ("repro.core",)
    #: Module prefixes boundary modules may not import at runtime.
    internal_import_prefixes: tuple[str, ...] = ("repro.gpu", "repro.osmodel")
    #: Attribute names treated as ground-truth dereferences (NEON102).
    ground_truth_attributes: frozenset[str] = DEFAULT_GROUND_TRUTH_ATTRIBUTES
    #: Modules allowed to own randomness (the seeded-stream registry).
    rng_modules: tuple[str, ...] = ("repro.sim.rng",)
    #: Host-side orchestration modules allowed to read the wall clock
    #: (NEON201 exemption).  These measure *host* execution time (worker
    #: pools, cache bookkeeping, the phase profiler); virtual time inside
    #: simulations stays deterministic.  Everything else gets host time
    #: through ``repro.obs.profile.host_clock`` so the exemption surface
    #: stays these two audited modules.
    host_clock_modules: tuple[str, ...] = (
        "repro.experiments.parallel",
        "repro.obs.profile",
    )
    #: Known cross-module virtual-time generator methods (NEON301/302).
    generator_methods: tuple[str, ...] = ("drain", "scan_channel")
    #: Bulk engagement methods whose flip count must be charged (NEON303).
    flip_methods: tuple[str, ...] = ("engage_all", "engage_task", "disengage_task")
    #: Module prefixes whose ``trace.emit`` kinds must be registered
    #: constants (NEON401/NEON402); tests and scratch code stay free.
    trace_emit_modules: tuple[str, ...] = ("repro",)
    #: Module prefixes whose ``faults.arm`` points must be registered
    #: constants (NEON403/NEON404).
    fault_arm_modules: tuple[str, ...] = ("repro",)
    #: File allowlist entries: ``path-suffix:line:RULE`` (line may be ``*``).
    allow: tuple[str, ...] = ()

    def is_boundary_module(self, module: str) -> bool:
        return _has_prefix(module, self.boundary_modules)

    def is_internal_import(self, module: str) -> bool:
        return _has_prefix(module, self.internal_import_prefixes)

    def is_rng_module(self, module: str) -> bool:
        return _has_prefix(module, self.rng_modules)

    def is_host_clock_module(self, module: str) -> bool:
        return _has_prefix(module, self.host_clock_modules)

    def is_trace_emit_module(self, module: str) -> bool:
        return _has_prefix(module, self.trace_emit_modules)

    def is_fault_arm_module(self, module: str) -> bool:
        return _has_prefix(module, self.fault_arm_modules)

    def allowlisted(self, path: Path, line: int, rule_id: str) -> bool:
        """True when a config-file allow entry covers this violation."""
        posix = path.as_posix()
        for entry in self.allow:
            try:
                suffix, entry_line, entry_rule = entry.rsplit(":", 2)
            except ValueError:
                continue
            if entry_rule != rule_id:
                continue
            if entry_line not in ("*", str(line)):
                continue
            if posix.endswith(suffix):
                return True
        return False


def _has_prefix(module: str, prefixes: Iterable[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


_TUPLE_FIELDS = (
    "boundary_modules",
    "internal_import_prefixes",
    "rng_modules",
    "host_clock_modules",
    "generator_methods",
    "flip_methods",
    "trace_emit_modules",
    "fault_arm_modules",
    "allow",
)


def _config_from_table(table: dict) -> Config:
    kwargs: dict = {}
    for field in _TUPLE_FIELDS:
        if field in table:
            kwargs[field] = tuple(str(item) for item in table[field])
    if "ground_truth_attributes" in table:
        kwargs["ground_truth_attributes"] = frozenset(
            str(item) for item in table["ground_truth_attributes"]
        )
    return Config(**kwargs)


def load_config(
    explicit: Optional[Path] = None, near: Iterable[Path] = ()
) -> Config:
    """Build the effective configuration.

    ``explicit`` names a TOML file whose top level (or ``[tool.neonlint]``
    table) overrides the defaults.  Otherwise the directories of ``near``
    are walked upward looking for a ``pyproject.toml`` with a
    ``[tool.neonlint]`` table; absent that, defaults apply.
    """
    if explicit is not None:
        data = tomllib.loads(Path(explicit).read_text())
        table = data.get("tool", {}).get("neonlint", data)
        return _config_from_table(table)
    for start in near:
        base = Path(start).resolve()
        if not base.is_dir():
            base = base.parent
        for candidate_dir in [base, *base.parents]:
            candidate = candidate_dir / "pyproject.toml"
            if not candidate.is_file():
                continue
            data = tomllib.loads(candidate.read_text())
            table = data.get("tool", {}).get("neonlint")
            if table is not None:
                return _config_from_table(table)
            return Config()
    return Config()
