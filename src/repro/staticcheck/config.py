"""Configuration and allowlist loading for neonlint.

Defaults encode the repo's own contract; a ``[tool.neonlint]`` table in
``pyproject.toml`` (auto-discovered upward from the checked paths) or an
explicit ``--config file.toml`` can override any field.  Audited
exceptions are granted per line, either with an inline pragma::

    cumulative = device.task_usage(task)  # neonlint: allow[NEON102] vendor-statistics ablation

or with an ``allow`` entry in the config file::

    allow = ["repro/core/disengaged_fq.py:472:NEON102"]

Entries are ``<path-suffix>:<line>:<RULE>``; ``*`` matches any line.
"""

from __future__ import annotations

import dataclasses
import tomllib
from pathlib import Path
from typing import Iterable, Optional

#: Channel/device attributes that constitute ground truth: queue contents,
#: in-flight request state, engine internals, and the vendor usage
#: accounting.  Reference to any of these from a boundary module means the
#: scheduler is peeking past the interception layer.
DEFAULT_GROUND_TRUTH_ATTRIBUTES = frozenset(
    {
        # Channel internals (repro.gpu.channel.Channel)
        "queue",
        "running",
        "register_page",
        "masked",
        "refcounter",
        "last_submitted_ref",
        "submitted_count",
        "completed_count",
        "kind",
        # Request ground truth (repro.gpu.request.Request)
        "size_us",
        "remaining_us",
        "never_completes",
        # Device/engine internals (repro.gpu.device, repro.gpu.engine)
        "device",
        "engines",
        "main_engine",
        "current_channel",
        "task_usage",
        "task_usage_by_kind",
        # Task-side device handles (repro.osmodel.task.Task)
        "contexts",
    }
)


@dataclasses.dataclass(frozen=True)
class Config:
    """Everything the checkers need to know about the project layout."""

    #: Module prefixes the boundary rules apply to.  The fleet's global
    #: policy layer lives on the same side of the interception boundary
    #: as the local schedulers: it may consume only per-device digests
    #: accumulated from trace events, never GPU/kernel ground truth.
    boundary_modules: tuple[str, ...] = ("repro.core", "repro.fleet.policies")
    #: Module prefixes boundary modules may not import at runtime.
    internal_import_prefixes: tuple[str, ...] = ("repro.gpu", "repro.osmodel")
    #: Attribute names treated as ground-truth dereferences (NEON102).
    ground_truth_attributes: frozenset[str] = DEFAULT_GROUND_TRUTH_ATTRIBUTES
    #: Modules allowed to own randomness (the seeded-stream registry).
    rng_modules: tuple[str, ...] = ("repro.sim.rng",)
    #: Host-side orchestration modules allowed to read the wall clock
    #: (NEON201 exemption).  These measure *host* execution time (worker
    #: pools, cache bookkeeping, the phase profiler); virtual time inside
    #: simulations stays deterministic.  Everything else gets host time
    #: through ``repro.obs.profile.host_clock`` so the exemption surface
    #: stays these two audited modules.
    host_clock_modules: tuple[str, ...] = (
        "repro.experiments.parallel",
        "repro.obs.profile",
    )
    #: Known cross-module virtual-time generator methods (NEON301/302).
    generator_methods: tuple[str, ...] = ("drain", "scan_channel")
    #: Bulk engagement methods whose flip count must be charged (NEON303).
    flip_methods: tuple[str, ...] = ("engage_all", "engage_task", "disengage_task")
    #: Module prefixes whose ``trace.emit`` kinds must be registered
    #: constants (NEON401/NEON402); tests and scratch code stay free.
    trace_emit_modules: tuple[str, ...] = ("repro",)
    #: Module prefixes whose ``faults.arm`` points must be registered
    #: constants (NEON403/NEON404).
    fault_arm_modules: tuple[str, ...] = ("repro",)
    #: Module prefixes NEON501 paths may legitimately pass through: the
    #: sanctioned observation/substrate layers.  A call chain from a
    #: boundary module is *not* followed into these — the interception
    #: layer touches device internals by design, on the scheduler's
    #: behalf, charging the paper's costs.
    sanctioned_modules: tuple[str, ...] = (
        "repro.neon",
        "repro.obs",
        "repro.sim",
    )
    #: Module prefixes whose RNG use is policed by NEON502: these may
    #: only *receive* streams (constructor/function parameters fed from
    #: the seeded registries), never construct generators themselves.
    rng_client_modules: tuple[str, ...] = ("repro.core", "repro.workloads")
    #: Fully qualified constructors that create a raw RNG stream.
    rng_constructors: tuple[str, ...] = (
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    )
    #: Module prefixes NEON503 applies to (the policy/scheduler layer,
    #: local and fleet-global alike).
    observation_client_modules: tuple[str, ...] = (
        "repro.core",
        "repro.fleet.policies",
    )
    #: The declarative interception-observable surface: the only
    #: attributes observation clients may touch on the interception
    #: manager (receivers named ``neon``).  This is the enforcement hook
    #: the ROADMAP's pluggable policy layer builds on: a policy is safe
    #: exactly when every ``neon.*`` access resolves into this list.
    #: tests/staticcheck/test_wholeprogram_rules.py pins it to the
    #: public API of repro.neon.interception.InterceptionManager.
    observation_api: frozenset[str] = frozenset(
        {
            "track",
            "untrack",
            "release_task",
            "live_channels",
            "channels_of",
            "observation",
            "engage_channel",
            "disengage_channel",
            "engage_task",
            "disengage_task",
            "engage_all",
            "flip_cost",
            "mask_channel",
            "unmask_channel",
            "scan_channel",
            "drain",
            "preemption_available",
            "preempt_task",
            "mask_task",
            "unmask_task",
            "identify_running_task",
            "mark_engagement",
            "task_quiet",
            "record_sampled_service",
            "estimated_request_size",
        }
    )
    #: Registry modules for NEON504 dead-entry detection.  The rule only
    #: runs when the registry module itself is part of the analyzed
    #: project, so partial scans never produce false "dead" findings.
    event_registry_module: str = "repro.obs.events"
    fault_registry_module: str = "repro.faults.registry"
    #: File allowlist entries: ``path-suffix:line:RULE`` (line may be ``*``).
    allow: tuple[str, ...] = ()

    def is_boundary_module(self, module: str) -> bool:
        return _has_prefix(module, self.boundary_modules)

    def is_internal_import(self, module: str) -> bool:
        return _has_prefix(module, self.internal_import_prefixes)

    def is_rng_module(self, module: str) -> bool:
        return _has_prefix(module, self.rng_modules)

    def is_host_clock_module(self, module: str) -> bool:
        return _has_prefix(module, self.host_clock_modules)

    def is_trace_emit_module(self, module: str) -> bool:
        return _has_prefix(module, self.trace_emit_modules)

    def is_fault_arm_module(self, module: str) -> bool:
        return _has_prefix(module, self.fault_arm_modules)

    def is_sanctioned_module(self, module: str) -> bool:
        return _has_prefix(module, self.sanctioned_modules)

    def is_rng_client_module(self, module: str) -> bool:
        return _has_prefix(module, self.rng_client_modules)

    def is_observation_client_module(self, module: str) -> bool:
        return _has_prefix(module, self.observation_client_modules)

    def allowlisted(self, path: Path, line: int, rule_id: str) -> bool:
        """True when a config-file allow entry covers this violation."""
        posix = path.as_posix()
        for entry in self.allow:
            try:
                suffix, entry_line, entry_rule = entry.rsplit(":", 2)
            except ValueError:
                continue
            if entry_rule != rule_id:
                continue
            if entry_line not in ("*", str(line)):
                continue
            if posix.endswith(suffix):
                return True
        return False


def _has_prefix(module: str, prefixes: Iterable[str]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


_TUPLE_FIELDS = (
    "boundary_modules",
    "internal_import_prefixes",
    "rng_modules",
    "host_clock_modules",
    "generator_methods",
    "flip_methods",
    "trace_emit_modules",
    "fault_arm_modules",
    "sanctioned_modules",
    "rng_client_modules",
    "rng_constructors",
    "observation_client_modules",
    "allow",
)


def _config_from_table(table: dict) -> Config:
    kwargs: dict = {}
    for field in _TUPLE_FIELDS:
        if field in table:
            kwargs[field] = tuple(str(item) for item in table[field])
    for field in ("ground_truth_attributes", "observation_api"):
        if field in table:
            kwargs[field] = frozenset(str(item) for item in table[field])
    for field in ("event_registry_module", "fault_registry_module"):
        if field in table:
            kwargs[field] = str(table[field])
    return Config(**kwargs)


def load_config(
    explicit: Optional[Path] = None, near: Iterable[Path] = ()
) -> Config:
    """Build the effective configuration.

    ``explicit`` names a TOML file whose top level (or ``[tool.neonlint]``
    table) overrides the defaults.  Otherwise the directories of ``near``
    are walked upward looking for a ``pyproject.toml`` with a
    ``[tool.neonlint]`` table; absent that, defaults apply.
    """
    if explicit is not None:
        data = tomllib.loads(Path(explicit).read_text())
        table = data.get("tool", {}).get("neonlint", data)
        return _config_from_table(table)
    for start in near:
        base = Path(start).resolve()
        if not base.is_dir():
            base = base.parent
        for candidate_dir in [base, *base.parents]:
            candidate = candidate_dir / "pyproject.toml"
            if not candidate.is_file():
                continue
            data = tomllib.loads(candidate.read_text())
            table = data.get("tool", {}).get("neonlint")
            if table is not None:
                return _config_from_table(table)
            return Config()
    return Config()
