"""Baseline files: fingerprint-based grandfathering of known findings.

A baseline turns neonlint into a ratchet: findings recorded in the
committed baseline are suppressed (they predate the rule that caught
them), anything *new* fails the build, and ``--update-baseline``
regenerates the file.  The committed baseline is expected to shrink over
time — CI runs with ``--strict-baseline``, which fails when the baseline
carries *stale* entries no longer matched by any finding, so paying down
a grandfathered violation forces the entry's removal in the same PR.

Fingerprints must survive unrelated edits (line drift, renames above the
finding) while still pinning the finding itself.  Each is a SHA-256 over

* the rule id,
* the file's repo-relative path suffix,
* the violation message with line/column digits normalized out (NEON501
  chains embed line numbers that drift),
* the source text of the anchored line, whitespace-stripped.

Line numbers are deliberately *not* part of the hash.  Two identical
findings on identical source lines in one file share a fingerprint; the
matcher consumes baseline entries multiset-style so N occurrences need N
entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import re
from collections import Counter
from pathlib import Path
from typing import Optional, Sequence

from repro.staticcheck.core import Violation

#: Baseline file schema version (additive changes only).
BASELINE_SCHEMA = 1

#: Default baseline filename, discovered by walking up from checked paths.
BASELINE_FILENAME = "neonlint-baseline.json"

_NUMBER_RE = re.compile(r"\b\d+\b")


def _normalize_message(message: str) -> str:
    return _NUMBER_RE.sub("N", message)


def _path_suffix(path: str, parts: int = 4) -> str:
    return "/".join(Path(path).as_posix().split("/")[-parts:])


def _anchor_line_text(violation: Violation, source_cache: dict[str, list[str]]) -> str:
    lines = source_cache.get(violation.path)
    if lines is None:
        try:
            lines = Path(violation.path).read_text(encoding="utf-8").splitlines()
        except OSError:
            lines = []
        source_cache[violation.path] = lines
    if 1 <= violation.line <= len(lines):
        return lines[violation.line - 1].strip()
    return ""


def fingerprint(
    violation: Violation, source_cache: Optional[dict[str, list[str]]] = None
) -> str:
    """Stable fingerprint for one finding; see the module docstring."""
    if source_cache is None:
        source_cache = {}
    payload = "\x1f".join(
        (
            violation.rule_id,
            _path_suffix(violation.path),
            _normalize_message(violation.message),
            _anchor_line_text(violation, source_cache),
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:20]


@dataclasses.dataclass
class BaselineResult:
    """Outcome of matching findings against a baseline."""

    #: Findings not covered by the baseline — these fail the build.
    new: list[Violation]
    #: Findings suppressed by a baseline entry.
    suppressed: list[Violation]
    #: Baseline entries (fingerprint -> unmatched count) nothing matched.
    stale: dict[str, int]


class Baseline:
    """An on-disk set of grandfathered finding fingerprints."""

    def __init__(self, entries: Optional[list[dict]] = None) -> None:
        self.entries: list[dict] = list(entries or [])

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(data, dict) or "entries" not in data:
            raise ValueError(f"{path}: not a neonlint baseline file")
        entries = data["entries"]
        if not isinstance(entries, list):
            raise ValueError(f"{path}: baseline 'entries' must be a list")
        return cls(entries)

    @classmethod
    def from_violations(
        cls, violations: Sequence[Violation]
    ) -> "Baseline":
        source_cache: dict[str, list[str]] = {}
        entries = [
            {
                "fingerprint": fingerprint(violation, source_cache),
                "rule": violation.rule_id,
                "path": _path_suffix(violation.path),
                "message": violation.message.splitlines()[0][:200],
            }
            for violation in violations
        ]
        entries.sort(key=lambda entry: (entry["rule"], entry["path"], entry["fingerprint"]))
        return cls(entries)

    def write(self, path: Path) -> None:
        payload = {
            "schema": BASELINE_SCHEMA,
            "tool": "neonlint",
            "entries": self.entries,
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def apply(self, violations: Sequence[Violation]) -> BaselineResult:
        """Split findings into new vs suppressed; count stale entries.

        Entries are consumed multiset-style: a fingerprint occurring
        twice in the baseline suppresses at most two findings.
        """
        budget = Counter(entry["fingerprint"] for entry in self.entries)
        source_cache: dict[str, list[str]] = {}
        new: list[Violation] = []
        suppressed: list[Violation] = []
        for violation in violations:
            print_ = fingerprint(violation, source_cache)
            if budget.get(print_, 0) > 0:
                budget[print_] -= 1
                suppressed.append(violation)
            else:
                new.append(violation)
        stale = {print_: count for print_, count in budget.items() if count > 0}
        return BaselineResult(new=new, suppressed=suppressed, stale=stale)


def discover_baseline(near: Sequence[Path]) -> Optional[Path]:
    """Walk upward from the checked paths looking for the baseline file."""
    for start in near:
        base = Path(start).resolve()
        if not base.is_dir():
            base = base.parent
        for candidate_dir in [base, *base.parents]:
            candidate = candidate_dir / BASELINE_FILENAME
            if candidate.is_file():
                return candidate
            # Stop at the project root: don't wander into $HOME.
            if (candidate_dir / "pyproject.toml").is_file():
                break
    return None


__all__ = [
    "BASELINE_FILENAME",
    "BASELINE_SCHEMA",
    "Baseline",
    "BaselineResult",
    "discover_baseline",
    "fingerprint",
]
