"""Autofix (``--fix``) for the mechanical rule subset.

Only rules whose fix is a pure rewrite with one obviously-correct answer
are fixable; judgment calls (boundary taint, RNG flow, API isolation)
stay human-only.

* **NEON401** — a string-literal event kind whose value matches a
  registered constant in :mod:`repro.obs.events` is rewritten to
  ``events.<CONST>``, and ``from repro.obs import events`` is added if
  the module does not already bind ``events``.
* **NEON403** — same for injection points: the literal becomes
  ``fault_points.<CONST>`` with ``from repro.faults import registry as
  fault_points``.
* **NEON406** — a string-literal span-boundary kind whose value matches
  a registered span-pair kind gets the same ``events.<CONST>`` rewrite
  as NEON401; when both rules fire on one literal the edit is applied
  once.
* **NEON505** — the unused alias is removed from its import statement;
  the whole statement goes when it was the only alias.

Fixes are applied bottom-up within each file so earlier edits never
shift later anchors, and the pass is idempotent: a second ``--fix`` run
finds nothing left to rewrite (pinned by tests/staticcheck/test_fix.py).
Literals with no registered counterpart, multi-line import statements,
and anything else ambiguous are left for the human and reported as
skipped.
"""

from __future__ import annotations

import ast
import dataclasses
import re
from pathlib import Path
from typing import Optional, Sequence

from repro.staticcheck.core import Violation

#: Rules this module knows how to rewrite.
FIXABLE_RULES = frozenset({"NEON401", "NEON403", "NEON406", "NEON505"})


def _constant_by_value(module_name: str) -> dict[str, str]:
    """value -> CONSTANT name for a registry module (events / faults)."""
    import importlib

    module = importlib.import_module(module_name)
    registered = module.constant_names()
    return {
        value: name
        for name, value in vars(module).items()
        if name in registered and isinstance(value, str)
    }


@dataclasses.dataclass(frozen=True)
class FixOutcome:
    """What one ``--fix`` pass did."""

    fixed: list[Violation]
    skipped: list[Violation]
    files: list[str]


class _FileFixer:
    """Accumulates edits for one file; applies them bottom-up."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines(keepends=True)
        self.tree = ast.parse(self.source, filename=str(path))
        #: (lineno, col_start, col_end, replacement) single-line rewrites
        self.replacements: list[tuple[int, int, int, str]] = []
        #: statement line ranges to drop entirely (1-based, inclusive)
        self.deletions: list[tuple[int, int]] = []
        #: import lines to append after the last top-level import
        self.new_imports: list[str] = []

    # -- gathering ------------------------------------------------------
    def literal_at(self, line: int, col: int) -> Optional[ast.Constant]:
        for node in ast.walk(self.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.lineno == line
                and node.col_offset == col
                and node.end_lineno == line
            ):
                return node
        return None

    def rewrite_literal(self, node: ast.Constant, replacement: str) -> None:
        entry = (node.lineno, node.col_offset, node.end_col_offset, replacement)
        # Two rules can agree on one literal (NEON401 + NEON406 both
        # rewrite a span-shaped kind); apply the edit once.
        if entry not in self.replacements:
            self.replacements.append(entry)

    def has_binding(self, local: str) -> bool:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".", 1)[0]
                    if bound == local:
                        return True
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if (alias.asname or alias.name) == local:
                        return True
        return False

    def ensure_import(self, local: str, statement: str) -> None:
        if self.has_binding(local):
            return
        if statement not in self.new_imports:
            self.new_imports.append(statement)

    def import_statement_at(self, line: int) -> Optional[ast.stmt]:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if node.lineno <= line <= (node.end_lineno or node.lineno):
                return node
        return None

    def remove_alias(self, stmt: ast.stmt, local: str) -> bool:
        """Drop one alias from an import statement; False when ambiguous."""
        if stmt.lineno != (stmt.end_lineno or stmt.lineno):
            return False  # multi-line import: leave it for the human
        keep = []
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".", 1)[0]
            if isinstance(stmt, ast.ImportFrom):
                bound = alias.asname or alias.name
            if bound != local:
                keep.append(alias)
        if len(keep) == len(stmt.names):
            return False  # alias not found — stale finding
        if not keep:
            self.deletions.append((stmt.lineno, stmt.end_lineno or stmt.lineno))
            return True
        rendered = ", ".join(
            alias.name + (f" as {alias.asname}" if alias.asname else "")
            for alias in keep
        )
        indent = self.lines[stmt.lineno - 1][: stmt.col_offset]
        if isinstance(stmt, ast.ImportFrom):
            dots = "." * stmt.level
            text = f"{indent}from {dots}{stmt.module or ''} import {rendered}"
        else:
            text = f"{indent}import {rendered}"
        self.replacements.append(
            (stmt.lineno, 0, len(self.lines[stmt.lineno - 1].rstrip("\r\n")), text)
        )
        return True

    # -- applying -------------------------------------------------------
    def apply(self) -> bool:
        if not (self.replacements or self.deletions or self.new_imports):
            return False
        lines = list(self.lines)
        edits: list[tuple[int, str, tuple]] = []
        for lineno, start, end, text in self.replacements:
            edits.append((lineno, "replace", (start, end, text)))
        for first, last in self.deletions:
            edits.append((first, "delete", (first, last)))
        for lineno, op, payload in sorted(edits, key=lambda e: -e[0]):
            if op == "replace":
                start, end, text = payload
                original = lines[lineno - 1]
                ending = original[len(original.rstrip("\r\n")):]
                body = original.rstrip("\r\n")
                lines[lineno - 1] = body[:start] + text + body[end:] + ending
            else:
                first, last = payload
                del lines[first - 1 : last]
        if self.new_imports:
            anchor = 0
            for node in self.tree.body:
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    anchor = max(anchor, node.end_lineno or node.lineno)
            # Account for deletions above the anchor.
            shift = sum(
                last - first + 1
                for first, last in self.deletions
                if last <= anchor
            )
            insert_at = max(0, anchor - shift)
            for statement in reversed(self.new_imports):
                lines.insert(insert_at, statement + "\n")
        self.path.write_text("".join(lines), encoding="utf-8")
        return True


def _fix_literal(
    fixer: _FileFixer,
    violation: Violation,
    by_value: dict[str, str],
    prefix: str,
    local: str,
    import_statement: str,
) -> bool:
    node = fixer.literal_at(violation.line, violation.col)
    if node is None:
        return False
    constant = by_value.get(node.value)
    if constant is None:
        return False  # no registered constant carries this value
    fixer.rewrite_literal(node, f"{prefix}.{constant}")
    fixer.ensure_import(local, import_statement)
    return True


def _fix_unused_import(fixer: _FileFixer, violation: Violation) -> bool:
    match = re.match(r"'([^']+)'", violation.message)
    if match is None:
        return False
    stmt = fixer.import_statement_at(violation.line)
    if stmt is None:
        return False
    return fixer.remove_alias(stmt, match.group(1))


def apply_fixes(violations: Sequence[Violation]) -> FixOutcome:
    """Rewrite every fixable finding in place; see the module docstring."""
    fixed: list[Violation] = []
    skipped: list[Violation] = []
    fixers: dict[str, _FileFixer] = {}
    event_constants = _constant_by_value("repro.obs.events")
    fault_constants = _constant_by_value("repro.faults.registry")

    for violation in sorted(violations):
        if violation.rule_id not in FIXABLE_RULES:
            continue
        fixer = fixers.get(violation.path)
        if fixer is None:
            try:
                fixer = _FileFixer(Path(violation.path))
            except (OSError, SyntaxError, ValueError):
                skipped.append(violation)
                continue
            fixers[violation.path] = fixer
        if violation.rule_id in ("NEON401", "NEON406"):
            done = _fix_literal(
                fixer, violation, event_constants, "events", "events",
                "from repro.obs import events",
            )
        elif violation.rule_id == "NEON403":
            done = _fix_literal(
                fixer, violation, fault_constants, "fault_points",
                "fault_points",
                "from repro.faults import registry as fault_points",
            )
        else:
            done = _fix_unused_import(fixer, violation)
        (fixed if done else skipped).append(violation)

    changed = [path for path, fixer in sorted(fixers.items()) if fixer.apply()]
    return FixOutcome(fixed=fixed, skipped=skipped, files=changed)


__all__ = ["FIXABLE_RULES", "FixOutcome", "apply_fixes"]
