"""Rule catalog and checker registry.

Rule ids are stable: tests, pragmas, and allowlists refer to them, so they
must never be renumbered.  New rules append within their family.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.staticcheck.rules.boundary import BoundaryChecker
from repro.staticcheck.rules.determinism import DeterminismChecker
from repro.staticcheck.rules.events import EventKindChecker
from repro.staticcheck.rules.faults import FaultPointChecker
from repro.staticcheck.rules.generators import GeneratorChecker
from repro.staticcheck.rules.spans import SpanPairChecker

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config

#: Rule id -> one-line description (the ``--list-rules`` catalog).
RULES: dict[str, str] = {
    "NEON000": "file could not be parsed/analyzed",
    "NEON101": "boundary module imports repro.gpu/repro.osmodel internals at runtime",
    "NEON102": "boundary module dereferences a ground-truth channel/device attribute",
    "NEON201": "wall-clock read (time.time/datetime.now/...) in simulation code",
    "NEON202": "stdlib random imported outside the seeded-stream registry",
    "NEON203": "unseeded or global numpy RNG outside the seeded-stream registry",
    "NEON204": "iteration over an unordered set feeds nondeterministic decisions",
    "NEON301": "virtual-time generator called but discarded (missing yield from)",
    "NEON302": "generator yielded as an object (yield instead of yield from)",
    "NEON303": "engagement flip count discarded (page-flip cost never charged)",
    "NEON401": "trace.emit called with a string-literal event kind",
    "NEON402": "trace.emit kind constant not registered in repro.obs.events",
    "NEON403": "faults.arm called with a string-literal injection point",
    "NEON404": "faults.arm point constant not registered in repro.faults.registry",
    "NEON406": "trace.emit span-boundary kind not registered as a span pair",
    "NEON501": "call chain from a boundary module reaches device-internal state",
    "NEON502": "RNG stream escapes to module scope or flows into scheduler/workload code",
    "NEON503": "observation client touches an attribute outside the declared observation API",
    "NEON504": "registry entry (event kind / fault point) never emitted/armed in the program",
    "NEON505": "import is never used (whole-program re-export aware for __init__)",
}

_CHECKERS = (
    BoundaryChecker,
    DeterminismChecker,
    EventKindChecker,
    FaultPointChecker,
    GeneratorChecker,
    SpanPairChecker,
)


def build_checkers(config: "Config"):
    """Instantiate one checker per rule family."""
    return [checker() for checker in _CHECKERS]


__all__ = ["RULES", "build_checkers"]
