"""Determinism rules (NEON2xx) — bit-reproducible trajectories.

The simulation's contract is that the same seed yields the same
trajectory, event for event (tests/integration/test_determinism.py).
That breaks the moment any component reads a wall clock, draws from an
unseeded or process-global RNG, or lets Python's unordered ``set``
decide the order in which events are scheduled or channels served.

* **NEON201** — ``time.time()``/``monotonic()``/``perf_counter()``/
  ``datetime.now()`` and friends anywhere in simulation code; bare
  references (``clock = time.perf_counter``) count too.  Host-side
  orchestration modules listed in ``host_clock_modules`` (the parallel
  cell farm, which measures *host* wall time per cell) are exempt.
* **NEON202** — ``import random``: the stdlib generator is process
  global; all randomness must come from the named, seeded streams of
  :mod:`repro.sim.rng`.
* **NEON203** — unseeded ``numpy.random.default_rng()`` or the legacy
  global samplers (``np.random.seed``, ``np.random.shuffle`` …) outside
  :mod:`repro.sim.rng`.
* **NEON204** — ``for``-loops/comprehensions iterating directly over a
  set expression; hash order varies across runs and interpreter
  versions, so anything it feeds (event scheduling, channel selection,
  kill order) becomes nondeterministic.  Wrap the set in ``sorted()``.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.staticcheck.core import ModuleContext, Violation, scope_statements

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config

#: Fully qualified callables that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Legacy numpy global-state RNG entry points (shared across components).
NUMPY_GLOBAL_RNG = frozenset(
    {
        "seed",
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "uniform",
        "exponential",
        "poisson",
        "RandomState",
    }
)


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``np.random.default_rng`` → ``"np.random.default_rng"``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _ImportAliases(ast.NodeVisitor):
    """Map local names to the fully qualified names they import."""

    def __init__(self) -> None:
        self.aliases: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            target = alias.name if alias.asname else alias.name.split(".", 1)[0]
            self.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or not node.module:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"


def _is_setlike(node: ast.expr, local_sets: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        return _is_setlike(node.left, local_sets) or _is_setlike(
            node.right, local_sets
        )
    if isinstance(node, ast.Name):
        return node.id in local_sets
    return False


class DeterminismChecker:
    """NEON201–NEON204."""

    rule_ids = ("NEON201", "NEON202", "NEON203", "NEON204")

    def check(self, ctx: ModuleContext, config: "Config") -> Iterator[Violation]:
        aliases = _ImportAliases()
        aliases.visit(ctx.tree)
        rng_module = config.is_rng_module(ctx.module)
        host_clock = config.is_host_clock_module(ctx.module)
        call_funcs = {
            id(node.func)
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
        }
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)) and not rng_module:
                yield from self._check_random_import(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(
                    ctx, node, aliases.aliases, rng_module, host_clock
                )
            elif (
                isinstance(node, (ast.Attribute, ast.Name))
                and id(node) not in call_funcs
                and not host_clock
            ):
                # A bare reference (``clock = time.perf_counter``) is as
                # much of a wall-clock read as the direct call — the alias
                # just delays it past AST call matching.
                yield from self._check_clock_reference(ctx, node, aliases.aliases)
        yield from self._check_set_iteration(ctx)

    def _check_clock_reference(
        self, ctx: ModuleContext, node: ast.expr, aliases: dict[str, str]
    ) -> Iterator[Violation]:
        resolved = self._resolve(node, aliases)
        if resolved in WALL_CLOCK_CALLS:
            yield Violation(
                path=str(ctx.path),
                line=node.lineno,
                col=node.col_offset,
                rule_id="NEON201",
                message=(
                    f"reference to wall-clock '{resolved}' aliases "
                    "nondeterministic time into simulation code; use "
                    "virtual time (sim.now)"
                ),
            )

    # ------------------------------------------------------------------
    # NEON201 / NEON202 / NEON203
    # ------------------------------------------------------------------
    def _check_random_import(
        self, ctx: ModuleContext, node: ast.stmt
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Import):
            modules = [alias.name for alias in node.names]
        else:
            modules = [node.module or ""]
        for module in modules:
            if module == "random" or module.startswith("random."):
                yield Violation(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id="NEON202",
                    message=(
                        "stdlib random is process-global state; draw from a "
                        "named seeded stream (repro.sim.rng.RngRegistry) instead"
                    ),
                )

    def _resolve(self, node: ast.expr, aliases: dict[str, str]) -> Optional[str]:
        dotted = _dotted_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        head = aliases.get(head, head)
        return f"{head}.{rest}" if rest else head

    def _check_call(
        self,
        ctx: ModuleContext,
        node: ast.Call,
        aliases: dict[str, str],
        rng_module: bool,
        host_clock: bool = False,
    ) -> Iterator[Violation]:
        resolved = self._resolve(node.func, aliases)
        if resolved is None:
            return
        if resolved in WALL_CLOCK_CALLS:
            if host_clock:
                return
            yield Violation(
                path=str(ctx.path),
                line=node.lineno,
                col=node.col_offset,
                rule_id="NEON201",
                message=(
                    f"'{resolved}()' reads the wall clock; simulation code "
                    "must use virtual time (sim.now)"
                ),
            )
            return
        if rng_module:
            return
        if resolved == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                yield Violation(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id="NEON203",
                    message=(
                        "unseeded numpy.random.default_rng(); derive streams "
                        "from repro.sim.rng.RngRegistry so runs are reproducible"
                    ),
                )
        elif resolved.startswith("numpy.random."):
            tail = resolved.rsplit(".", 1)[1]
            if tail in NUMPY_GLOBAL_RNG:
                yield Violation(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id="NEON203",
                    message=(
                        f"numpy global RNG '{resolved}' is shared mutable "
                        "state; use a named stream from repro.sim.rng"
                    ),
                )

    # ------------------------------------------------------------------
    # NEON204
    # ------------------------------------------------------------------
    def _check_set_iteration(self, ctx: ModuleContext) -> Iterator[Violation]:
        scopes: list[ast.AST] = [ctx.tree]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node)
        for scope in scopes:
            local_sets: set[str] = set()
            for node in scope_statements(scope):
                if isinstance(node, ast.Assign) and _is_setlike(
                    node.value, local_sets
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            local_sets.add(target.id)
            for node in scope_statements(scope):
                iters: list[ast.expr] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(
                    node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    iters.extend(comp.iter for comp in node.generators)
                for iter_expr in iters:
                    if _is_setlike(iter_expr, local_sets):
                        yield Violation(
                            path=str(ctx.path),
                            line=iter_expr.lineno,
                            col=iter_expr.col_offset,
                            rule_id="NEON204",
                            message=(
                                "iterating a set directly: hash order is "
                                "nondeterministic; iterate sorted(...) so "
                                "scheduling decisions are reproducible"
                            ),
                        )
