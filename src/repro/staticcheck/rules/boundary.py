"""Boundary rules (NEON1xx) — the disengagement boundary.

Schedulers may act only on information observable through the
interception interface (paper Section 3: faults, reference counters,
ring-buffer scans).  Concretely, modules under ``repro.core``:

* **NEON101** — may not import ``repro.gpu`` or ``repro.osmodel``
  internals at runtime.  Imports inside ``if TYPE_CHECKING:`` blocks are
  fine: annotations are free, ground truth is not.
* **NEON102** — may not dereference ground-truth channel/device
  attributes (``channel.queue``, ``channel.refcounter``,
  ``kernel.device`` …).  Observation goes through ``self.neon`` — the
  :class:`~repro.neon.interception.InterceptionManager` — which charges
  the paper's costs for every read that is not free in the prototype.

Audited exceptions (the ``dfq-hw`` vendor-statistics ablation) carry
inline ``# neonlint: allow[NEON102]`` pragmas.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.staticcheck.core import ModuleContext, Violation

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


class BoundaryChecker:
    """NEON101 (runtime imports) and NEON102 (ground-truth attributes)."""

    rule_ids = ("NEON101", "NEON102")

    def check(self, ctx: ModuleContext, config: "Config") -> Iterator[Violation]:
        if not config.is_boundary_module(ctx.module):
            return
        yield from self._walk(ctx, config, ctx.tree)

    def _walk(
        self, ctx: ModuleContext, config: "Config", node: ast.AST
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If) and _is_type_checking_test(child.test):
                # The body is annotation-only by construction; the else
                # branch (if any) is runtime code.
                for stmt in child.orelse:
                    yield from self._walk(ctx, config, stmt)
                    yield from self._check_node(ctx, config, stmt)
                continue
            yield from self._check_node(ctx, config, child)
            yield from self._walk(ctx, config, child)

    def _check_node(
        self, ctx: ModuleContext, config: "Config", node: ast.AST
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if config.is_internal_import(alias.name):
                    yield self._import_violation(ctx, node, alias.name)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and config.is_internal_import(module):
                yield self._import_violation(ctx, node, module)
        elif isinstance(node, ast.Attribute):
            if node.attr in config.ground_truth_attributes:
                yield Violation(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id="NEON102",
                    message=(
                        f"ground-truth attribute '.{node.attr}' dereferenced past "
                        "the interception layer; observe through "
                        "self.neon/InterceptionManager instead"
                    ),
                )

    def _import_violation(
        self, ctx: ModuleContext, node: ast.stmt, module: str
    ) -> Violation:
        return Violation(
            path=str(ctx.path),
            line=node.lineno,
            col=node.col_offset,
            rule_id="NEON101",
            message=(
                f"runtime import of '{module}' crosses the disengagement "
                "boundary; move it under TYPE_CHECKING or re-export an "
                "observation-level equivalent from repro.neon"
            ),
        )
