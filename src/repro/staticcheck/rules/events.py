"""Trace-event rules (NEON4xx) — the typed event-kind registry.

Every ``trace.emit(...)`` call site in simulation code must name its event
kind through a constant registered in :mod:`repro.obs.events`; the
registry is the single source of truth for what a trace can contain, so
analysis tooling (``repro trace``, the overhead reconstruction) never
meets a kind it does not know.

* **NEON401** — the kind argument is a string literal
  (``trace.emit(now, src, "fault")``).  Literals drift: a typo records
  an orphan kind that every consumer silently ignores.
* **NEON402** — the kind argument is an identifier, but not one of the
  registered constants exported by ``repro.obs.events``
  (``events.FAULT`` passes; a constant defined elsewhere does not).

Only receivers named ``trace`` are checked (``self.trace.emit``,
``self.kernel.trace.emit``, a local ``trace = ...`` alias), and only in
modules under ``trace_emit_modules`` — test doubles and out-of-tree
recorders stay free.  Conditional kinds (``A if aborted else B``) are
checked on both branches.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.obs.events import constant_names
from repro.staticcheck.core import ModuleContext, Violation

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config

#: Receiver terminal name that marks a trace-recorder emit call.
_RECEIVER = "trace"
#: Position of the kind argument in ``emit(time, source, kind, ...)``.
_KIND_ARG_INDEX = 2


def _receiver_name(func: ast.expr) -> Optional[str]:
    """Terminal name of an ``emit`` call's receiver, if any.

    ``trace.emit`` → ``trace``; ``self.kernel.trace.emit`` → ``trace``.
    """
    if not isinstance(func, ast.Attribute) or func.attr != "emit":
        return None
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id
    if isinstance(receiver, ast.Attribute):
        return receiver.attr
    return None


def _kind_argument(call: ast.Call) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == "kind":
            return keyword.value
    if len(call.args) > _KIND_ARG_INDEX:
        arg = call.args[_KIND_ARG_INDEX]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    return None


class EventKindChecker:
    """NEON401 (literal kinds) and NEON402 (unregistered constants)."""

    rule_ids = ("NEON401", "NEON402")

    def __init__(self) -> None:
        self._registered = constant_names()

    def check(self, ctx: ModuleContext, config: "Config") -> Iterator[Violation]:
        if not config.is_trace_emit_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _receiver_name(node.func) != _RECEIVER:
                continue
            kind = _kind_argument(node)
            if kind is None:
                continue
            yield from self._check_kind(ctx, kind)

    def _check_kind(
        self, ctx: ModuleContext, kind: ast.expr
    ) -> Iterator[Violation]:
        if isinstance(kind, ast.IfExp):
            yield from self._check_kind(ctx, kind.body)
            yield from self._check_kind(ctx, kind.orelse)
            return
        if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
            yield Violation(
                path=str(ctx.path),
                line=kind.lineno,
                col=kind.col_offset,
                rule_id="NEON401",
                message=(
                    f"string-literal event kind {kind.value!r}; use a "
                    "registered constant from repro.obs.events instead"
                ),
            )
            return
        name: Optional[str] = None
        if isinstance(kind, ast.Name):
            name = kind.id
        elif isinstance(kind, ast.Attribute):
            name = kind.attr
        if name is not None and name not in self._registered:
            yield Violation(
                path=str(ctx.path),
                line=kind.lineno,
                col=kind.col_offset,
                rule_id="NEON402",
                message=(
                    f"event kind constant '{name}' is not registered in "
                    "repro.obs.events; register it with register_event_kind"
                ),
            )
