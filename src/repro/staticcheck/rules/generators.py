"""Generator-discipline rules (NEON3xx) — no silently dropped time.

Methods that consume virtual time — :meth:`InterceptionManager.drain`,
:meth:`InterceptionManager.scan_channel`, and every scheduler-internal
``yield``-driven helper — are generators meant to be driven from a
scheduler process via ``yield from``.  Calling one and discarding the
result creates a generator object and throws it away: no time passes, no
drain happens, and nothing fails loudly.  This silent no-op bug class is
endemic to generator-driven discrete-event simulators.

* **NEON301** — a call to a known or locally defined generator appears as
  a bare expression statement: its result is discarded.
* **NEON302** — a generator call is ``yield``-ed (handing the simulator a
  generator object it cannot wait on) instead of ``yield from``-ed.
* **NEON303** — the flip count returned by a bulk engagement method
  (``engage_all``/``engage_task``/``disengage_task``) is discarded, so
  the page-flip cost of the barrier can never be charged to virtual time.

Known cross-module generator names come from the config
(``generator_methods``); locally defined generators are detected from the
AST (any function whose own scope contains ``yield``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.staticcheck.core import ModuleContext, Violation, scope_statements

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config


def _is_generator_def(node: ast.AST) -> bool:
    return any(
        isinstance(child, (ast.Yield, ast.YieldFrom))
        for child in scope_statements(node)
    )


def _call_name(node: ast.Call) -> str | None:
    """The bare or attribute name a call targets (``self.neon.drain`` → ``drain``)."""
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


class GeneratorChecker:
    """NEON301–NEON303."""

    rule_ids = ("NEON301", "NEON302", "NEON303")

    def check(self, ctx: ModuleContext, config: "Config") -> Iterator[Violation]:
        generator_names = set(config.generator_methods)
        for node in ast.walk(ctx.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and _is_generator_def(node):
                generator_names.add(node.name)
        flip_names = set(config.flip_methods)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                name = _call_name(node.value)
                if name in generator_names:
                    yield Violation(
                        path=str(ctx.path),
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id="NEON301",
                        message=(
                            f"result of virtual-time generator '{name}()' is "
                            "discarded — a silent no-op; drive it with "
                            "'yield from'"
                        ),
                    )
                elif name in flip_names:
                    yield Violation(
                        path=str(ctx.path),
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id="NEON303",
                        message=(
                            f"flip count returned by '{name}()' is discarded; "
                            "charge it via neon.flip_cost(flips) so the "
                            "barrier's page-table cost reaches virtual time"
                        ),
                    )
            elif isinstance(node, ast.Yield) and isinstance(node.value, ast.Call):
                name = _call_name(node.value)
                if name in generator_names:
                    yield Violation(
                        path=str(ctx.path),
                        line=node.value.lineno,
                        col=node.value.col_offset,
                        rule_id="NEON302",
                        message=(
                            f"'yield {name}(...)' hands the simulator a "
                            "generator object it cannot wait on; use "
                            "'yield from'"
                        ),
                    )
