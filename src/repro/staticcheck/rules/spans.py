"""Span-pair rule (NEON406) — paired begin/end trace kinds.

The causal span layer (:mod:`repro.obs.spans`) reconstructs lifecycle
spans purely from the trace stream, so every span-boundary emit must use
a kind the span-pair registry knows: an unregistered ``*_BEGIN`` opens a
span nothing ever closes, and a literal ``"foo.begin"`` drifts out from
under the builder exactly like NEON401 literals drift out of the event
registry.

* **NEON406** — ``trace.emit(...)`` names a span-boundary kind — a
  string literal shaped like one (``"...begin"``/``"...end"``) or a
  constant named ``*_BEGIN``/``*_END`` — that is not part of a pairing
  registered with :func:`repro.obs.spans.register_span_pair`.

Receiver/argument discovery is shared with the NEON401/402 checker:
only receivers named ``trace``, only modules under
``trace_emit_modules``, and conditional kinds are checked on both
branches.  Literals whose value matches a registered span kind are
autofixed to the ``events.<CONST>`` spelling (same rewrite as NEON401;
the two rules firing on one literal produce a single edit).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.obs.spans import span_constant_names
from repro.staticcheck.core import ModuleContext, Violation
from repro.staticcheck.rules.events import (
    _kind_argument,
    _receiver_name,
    _RECEIVER,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config

#: Literal values with these suffixes are span-shaped ("barrier.begin",
#: "sched.wait_end", ...).
_VALUE_SUFFIXES = (".begin", ".end", "_begin", "_end")
#: Constant names with these suffixes claim to bound a span.
_NAME_SUFFIXES = ("_BEGIN", "_END")


class SpanPairChecker:
    """NEON406: span-boundary kinds must come from the span registry."""

    rule_ids = ("NEON406",)

    def __init__(self) -> None:
        self._registered = span_constant_names()

    def check(self, ctx: ModuleContext, config: "Config") -> Iterator[Violation]:
        if not config.is_trace_emit_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _receiver_name(node.func) != _RECEIVER:
                continue
            kind = _kind_argument(node)
            if kind is None:
                continue
            yield from self._check_kind(ctx, kind)

    def _check_kind(
        self, ctx: ModuleContext, kind: ast.expr
    ) -> Iterator[Violation]:
        if isinstance(kind, ast.IfExp):
            yield from self._check_kind(ctx, kind.body)
            yield from self._check_kind(ctx, kind.orelse)
            return
        if isinstance(kind, ast.Constant) and isinstance(kind.value, str):
            if kind.value.endswith(_VALUE_SUFFIXES):
                yield Violation(
                    path=str(ctx.path),
                    line=kind.lineno,
                    col=kind.col_offset,
                    rule_id="NEON406",
                    message=(
                        f"string-literal span-boundary kind {kind.value!r}; "
                        "use the paired constant registered with "
                        "repro.obs.spans.register_span_pair"
                    ),
                )
            return
        name: Optional[str] = None
        if isinstance(kind, ast.Name):
            name = kind.id
        elif isinstance(kind, ast.Attribute):
            name = kind.attr
        if (
            name is not None
            and name.endswith(_NAME_SUFFIXES)
            and name not in self._registered
        ):
            yield Violation(
                path=str(ctx.path),
                line=kind.lineno,
                col=kind.col_offset,
                rule_id="NEON406",
                message=(
                    f"span-boundary constant '{name}' is not part of a "
                    "registered span pair; register it with "
                    "repro.obs.spans.register_span_pair"
                ),
            )
