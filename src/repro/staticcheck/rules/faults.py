"""Fault-injection rules (NEON40x, continued) — the injection-point registry.

Every ``faults.arm(...)`` site in simulation code must name its injection
point through a constant registered in :mod:`repro.faults.registry`; the
registry is the single source of truth for where faults can strike, so
fault plans, the chaos matrix, and the docs never meet a point the
simulation does not implement.

* **NEON403** — the point argument is a string literal
  (``faults.arm("gpu.request_hang")``).  Literals drift: a typo arms an
  orphan point that no plan can ever reference.
* **NEON404** — the point argument is an identifier, but not one of the
  registered constants exported by ``repro.faults.registry``
  (``fault_points.GPU_REQUEST_HANG`` passes; a constant defined
  elsewhere does not).

Only receivers named ``faults`` are checked (``self.faults.arm``,
``device.faults.arm``, a local ``faults = ...`` alias), and only in
modules under ``fault_arm_modules`` — test doubles stay free.
Conditional points (``A if graphics else B``) are checked on both
branches.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional

from repro.faults.registry import constant_names
from repro.staticcheck.core import ModuleContext, Violation

if TYPE_CHECKING:  # pragma: no cover
    from repro.staticcheck.config import Config

#: Receiver terminal name that marks an injector arm call.
_RECEIVER = "faults"
#: Position of the point argument in ``arm(point, task=None)``.
_POINT_ARG_INDEX = 0


def _receiver_name(func: ast.expr) -> Optional[str]:
    """Terminal name of an ``arm`` call's receiver, if any.

    ``faults.arm`` → ``faults``; ``self.device.faults.arm`` → ``faults``.
    """
    if not isinstance(func, ast.Attribute) or func.attr != "arm":
        return None
    receiver = func.value
    if isinstance(receiver, ast.Name):
        return receiver.id
    if isinstance(receiver, ast.Attribute):
        return receiver.attr
    return None


def _point_argument(call: ast.Call) -> Optional[ast.expr]:
    for keyword in call.keywords:
        if keyword.arg == "point":
            return keyword.value
    if len(call.args) > _POINT_ARG_INDEX:
        arg = call.args[_POINT_ARG_INDEX]
        if isinstance(arg, ast.Starred):
            return None
        return arg
    return None


class FaultPointChecker:
    """NEON403 (literal points) and NEON404 (unregistered constants)."""

    rule_ids = ("NEON403", "NEON404")

    def __init__(self) -> None:
        self._registered = constant_names()

    def check(self, ctx: ModuleContext, config: "Config") -> Iterator[Violation]:
        if not config.is_fault_arm_module(ctx.module):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _receiver_name(node.func) != _RECEIVER:
                continue
            point = _point_argument(node)
            if point is None:
                continue
            yield from self._check_point(ctx, point)

    def _check_point(
        self, ctx: ModuleContext, point: ast.expr
    ) -> Iterator[Violation]:
        if isinstance(point, ast.IfExp):
            yield from self._check_point(ctx, point.body)
            yield from self._check_point(ctx, point.orelse)
            return
        if isinstance(point, ast.Constant) and isinstance(point.value, str):
            yield Violation(
                path=str(ctx.path),
                line=point.lineno,
                col=point.col_offset,
                rule_id="NEON403",
                message=(
                    f"string-literal injection point {point.value!r}; use a "
                    "registered constant from repro.faults.registry instead"
                ),
            )
            return
        name: Optional[str] = None
        if isinstance(point, ast.Name):
            name = point.id
        elif isinstance(point, ast.Attribute):
            name = point.attr
        if name is not None and name not in self._registered:
            yield Violation(
                path=str(ctx.path),
                line=point.lineno,
                col=point.col_offset,
                rule_id="NEON404",
                message=(
                    f"injection point constant '{name}' is not registered "
                    "in repro.faults.registry; register it with "
                    "register_injection_point"
                ),
            )
